//! Quickstart: assemble a tiny multicore program, simulate it, and read
//! the report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use coyote::{SimConfig, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Each hart sums its slice of an array and stores the result;
    // `mhartid` partitions the work, exactly like the paper's baremetal
    // kernels.
    let program = coyote_asm::assemble(
        ".equ N, 256
         .data
         input:   .zero 2048        # N dwords, filled below
         partial: .zero 64          # one dword per hart
         .text
         _start:
             csrr s0, mhartid
             li s1, 8               # harts
             li s2, N
             la s3, input
             la s4, partial
             li t0, 0               # accumulator
             mv t1, s0              # index = hartid
         loop:
             bge t1, s2, store
             slli t2, t1, 3
             add t2, s3, t2
             ld t3, 0(t2)
             add t0, t0, t3
             add t1, t1, s1         # index += harts
             j loop
         store:
             slli t2, s0, 3
             add t2, s4, t2
             sd t0, 0(t2)
             li a0, 0
             li a7, 93
             ecall",
    )?;

    let config = SimConfig::builder().cores(8).build()?;
    let mut sim = Simulation::new(config, &program)?;

    // Fill the input array (1..=256) before the run starts.
    let input = program.symbol("input").expect("input symbol");
    for i in 0..256u64 {
        sim.memory_mut().write_u64(input + i * 8, i + 1);
    }

    let report = sim.run()?;
    println!("{report}");

    // Gather the per-hart partial sums.
    let partial = program.symbol("partial").expect("partial symbol");
    let total: u64 = (0..8).map(|h| sim.memory().read_u64(partial + h * 8)).sum();
    println!("sum(1..=256) computed on 8 simulated cores = {total}");
    assert_eq!(total, 256 * 257 / 2);
    Ok(())
}
