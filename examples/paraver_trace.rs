//! Generates a Paraver-compatible L1-miss trace from the vector stencil
//! kernel, the analysis flow the paper describes ("this trace can be
//! analyzed using the Paraver Visualization Tools").
//!
//! ```text
//! cargo run --release --example paraver_trace
//! ```
//!
//! Writes `target/stencil.prv` and `target/stencil.pcf`.

use std::fs::File;

use coyote::SimConfig;
use coyote_iss::MissKind;
use coyote_kernels::workload::run_workload;
use coyote_kernels::StencilVector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = StencilVector::new(34, 34, 3, 99);
    let config = SimConfig::builder().cores(8).trace(true).build()?;
    let (report, sim) = run_workload(&workload, config)?;

    let trace = sim.trace().expect("tracing enabled");
    std::fs::create_dir_all("target")?;
    trace.write_prv(File::create("target/stencil.prv")?)?;
    trace.write_pcf(File::create("target/stencil.pcf")?)?;

    println!("{report}");
    println!(
        "recorded {} L1-miss events over {} cycles",
        trace.len(),
        report.cycles
    );

    // A taste of the analysis Paraver would do: miss counts per kind.
    for (kind, label) in [
        (MissKind::Ifetch, "instruction fetch"),
        (MissKind::Load, "data load"),
        (MissKind::Store, "data store"),
        (MissKind::Writeback, "writeback"),
    ] {
        let count = trace.events().iter().filter(|e| e.kind == kind).count();
        println!("  {label:<18} {count}");
    }
    println!("trace written to target/stencil.prv (+ .pcf)");
    Ok(())
}
