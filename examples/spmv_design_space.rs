//! Design-space exploration on sparse matrix–vector multiplication —
//! the workflow the paper motivates: compare L2 sharing modes and
//! data-mapping policies for an irregular HPC workload within seconds.
//!
//! ```text
//! cargo run --release --example spmv_design_space
//! ```

use coyote::{L2Sharing, MappingPolicy, SimConfig};
use coyote_kernels::workload::run_workload;
use coyote_kernels::SpmvVectorCsr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = SpmvVectorCsr::new(256, 256, 0.05, 7);
    println!(
        "SpMV (gather kernel): 256x256, {} nonzeros, 32 cores / 4 tiles\n",
        workload.matrix().nnz()
    );
    println!(
        "{:<10} {:<16} {:>12} {:>10} {:>14}",
        "L2", "mapping", "sim cycles", "L2 miss%", "NoC traversals"
    );

    for (sharing, sharing_name) in [
        (L2Sharing::Shared, "shared"),
        (L2Sharing::Private, "private"),
    ] {
        for mapping in [MappingPolicy::page_to_bank(), MappingPolicy::SetInterleave] {
            let config = SimConfig::builder()
                .cores(32)
                .cores_per_tile(8)
                .sharing(sharing)
                .mapping(mapping)
                .build()?;
            let (report, _) = run_workload(&workload, config)?;
            println!(
                "{:<10} {:<16} {:>12} {:>9.2}% {:>14}",
                sharing_name,
                mapping.name(),
                report.cycles,
                report.hierarchy.l2_miss_rate() * 100.0,
                report.hierarchy.noc.traversals,
            );
        }
    }

    println!("\nEvery configuration verified the kernel's numerical output.");
    Ok(())
}
