//! Scalar vs. vector kernels: the data-movement advantage the RISC-V V
//! extension buys — the reason the paper requires vector support from
//! an HPC simulator.
//!
//! ```text
//! cargo run --release --example vector_speedup
//! ```

use coyote::SimConfig;
use coyote_kernels::workload::{run_workload, Workload};
use coyote_kernels::{MatmulScalar, MatmulVector, SpmvScalar, SpmvVectorCsr};

fn measure(
    workload: &dyn Workload,
    cores: usize,
) -> Result<(u64, u64), Box<dyn std::error::Error>> {
    let config = SimConfig::builder().cores(cores).build()?;
    let (report, _) = run_workload(workload, config)?;
    Ok((report.total_retired(), report.cycles))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = 8;
    let matmul_scalar = MatmulScalar::new(32, 42);
    let matmul_vector = MatmulVector::new(32, 42);
    let spmv_scalar = SpmvScalar::new(192, 192, 0.05, 43);
    let spmv_vector = SpmvVectorCsr::new(192, 192, 0.05, 43);

    println!(
        "{:<14} {:>14} {:>14} {:>10} {:>10}",
        "kernel", "instructions", "sim cycles", "inst red.", "speedup"
    );
    for (name, scalar, vector) in [
        (
            "matmul 32x32",
            &matmul_scalar as &dyn Workload,
            &matmul_vector as &dyn Workload,
        ),
        ("spmv 192x192", &spmv_scalar, &spmv_vector),
    ] {
        let (si, sc) = measure(scalar, cores)?;
        let (vi, vc) = measure(vector, cores)?;
        println!("{name:<14} {si:>14} {sc:>14} {:>10} {:>10}", "", "");
        println!(
            "{:<14} {vi:>14} {vc:>14} {:>9.1}x {:>9.2}x",
            "  (vector)",
            si as f64 / vi as f64,
            sc as f64 / vc as f64
        );
    }
    println!("\nBoth versions of each kernel verified identical numerical output.");
    Ok(())
}
