# Vector dot product for coyote-sim: each hart reduces its slice of two
# 64-element arrays with vfmacc/vfredusum, then atomically accumulates
# the per-hart partial into a shared result (fixed-point via integer
# amoadd is avoided by writing per-hart slots and letting hart 0 sum).
    .equ N, 64
    .data
a:      .zero 512          # N doubles, initialized by startup loop
b:      .zero 512
partials: .zero 64         # up to 8 harts
barrier:  .dword 0
result:   .double 0.0
    .text
_start:
    csrr s0, mhartid
    li s10, 8              # harts (run with --cores 8)
    li s11, N

    # hart 0 initializes a[i] = i, b[i] = 2 (everyone else waits)
    bnez s0, wait_init
    la t0, a
    la t1, b
    li t2, 0
    li t4, 2
    fcvt.d.l fa1, t4
init:
    fcvt.d.l fa0, t2
    slli t3, t2, 3
    add t5, t0, t3
    fsd fa0, 0(t5)
    add t5, t1, t3
    fsd fa1, 0(t5)
    addi t2, t2, 1
    blt t2, s11, init
wait_init:
    la t6, barrier
    li t0, 1
    amoadd.d t1, t0, (t6)
spin0:
    ld t1, 0(t6)
    blt t1, s10, spin0

    # each hart: slice = [hart*8, hart*8+8)
    li t0, 8
    mul t1, s0, t0          # start index
    la t2, a
    la t3, b
    slli t4, t1, 3
    add t2, t2, t4
    add t3, t3, t4
    vsetvli t5, t0, e64,m1,ta,ma
    vle64.v v1, (t2)
    vle64.v v2, (t3)
    vmv.v.i v3, 0
    vfmacc.vv v3, v1, v2
    vmv.v.i v4, 0
    vfredusum.vs v4, v3, v4
    vfmv.f.s fa0, v4
    la t6, partials
    slli t4, s0, 3
    add t6, t6, t4
    fsd fa0, 0(t6)

    # second barrier, then hart 0 sums partials
    la t6, barrier
    li t0, 1
    amoadd.d t1, t0, (t6)
    slli t2, s10, 1         # target = 2 * harts
spin1:
    ld t1, 0(t6)
    blt t1, t2, spin1
    bnez s0, finish
    la t0, partials
    fmv.d.x fa0, zero
    li t1, 0
sum:
    slli t2, t1, 3
    add t3, t0, t2
    fld fa1, 0(t3)
    fadd.d fa0, fa0, fa1
    addi t1, t1, 1
    blt t1, s10, sum
    la t4, result
    fsd fa0, 0(t4)
    # print 'O','K' then exit; dot(0..63, 2) = 2*2016 = 4032
    fcvt.l.d t5, fa0
    li t6, 4032
    bne t5, t6, fail
    li a0, 79
    li a7, 64
    ecall
    li a0, 75
    ecall
    li a0, 10
    ecall
finish:
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
