# Paper-scale scalar matmul for coyote-sim: C = A x B for 96x96
# row-major f64 matrices, output rows striped across up to 128 harts
# by mhartid (the DATE'21 Figure-3 workload shape). Each hart owns row
# `mhartid` outright, so the per-hart write footprints are statically
# disjoint and `coyote-check` / `--certify` grant the disjointness
# certificate. Run with any --cores up to 128; surplus harts exit
# immediately, and with fewer than 96 cores the uncovered rows simply
# stay zero (the matrices are zero-filled — this kernel exists for
# timing and analysis, not numerics).
    .equ N, 96
    .equ HARTS, 128
    .data
a:  .zero 73728            # N*N doubles
b:  .zero 73728
c:  .zero 73728
    .text
_start:
    csrr s0, mhartid
    li s11, N
    li s9, N               # row bound
    li s10, HARTS          # row stride across harts
    li t1, 768             # row bytes (8*N)
outer:
    bge s0, s9, done
    la s1, a
    la s2, b
    la s3, c
    mul t2, s0, t1
    add s1, s1, t2         # &a[i][0]
    add s3, s3, t2         # &c[i][0]
    li s4, 0               # j
col:
    fmv.d.x fa0, zero
    mv t3, s1
    slli t4, s4, 3
    add t4, s2, t4         # &b[0][j]
    li s5, 0               # k
inner:
    fld fa1, 0(t3)
    fld fa2, 0(t4)
    fmadd.d fa0, fa1, fa2, fa0
    addi t3, t3, 8
    add t4, t4, t1
    addi s5, s5, 1
    blt s5, s11, inner
    slli t6, s4, 3
    add t6, s3, t6
    fsd fa0, 0(t6)
    addi s4, s4, 1
    blt s4, s11, col
    add s0, s0, s10
    j outer
done:
    li a0, 0
    li a7, 93
    ecall
