# Hello-world for coyote-sim: each hart prints one letter via the
# write ecall, then exits with its hart id.
    .data
letters:
    .dword 72, 101, 108, 108, 111, 33, 10, 10   # "Hello!\n\n"
    .text
_start:
    csrr t0, mhartid
    la t1, letters
    slli t2, t0, 3
    add t1, t1, t2
    ld a0, 0(t1)
    li a7, 64
    ecall               # putchar
    csrr a0, mhartid
    li a7, 93
    ecall               # exit(hartid)
