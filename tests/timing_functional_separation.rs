//! Property test of Coyote's core architectural split: the *functional*
//! result of a program must be independent of the *timing*
//! configuration (caches, NoC, MCs, mapping, sharing). Only cycle
//! counts may change.
//!
//! Random straight-line programs (arithmetic + memory traffic over a
//! scratch buffer + a result store) run under two very different
//! hierarchy configurations and must leave identical memory.

use coyote::{
    CacheConfig, L2Config, L2Sharing, MappingPolicy, McConfig, NocModel, SimConfig, Simulation,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Addi(i64),
    Mul(u8),
    Xor(u8),
    StoreLoad(u16),
    Amo(u16, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-2048i64..=2047).prop_map(Op::Addi),
        (0u8..4).prop_map(Op::Mul),
        (0u8..4).prop_map(Op::Xor),
        (0u16..256).prop_map(Op::StoreLoad),
        ((0u16..64), -100i64..100).prop_map(|(s, v)| Op::Amo(s, v)),
    ]
}

/// Renders a random op sequence into a program over registers t0..t3
/// and a 2 KiB scratch buffer, finishing with a store of the combined
/// state.
fn render(ops: &[Op]) -> String {
    // Each hart gets a private 2 KiB scratch slice: shared-memory races
    // (e.g. concurrent amoadd to one slot) are *legitimately*
    // timing-dependent, so the property only quantifies over race-free
    // programs.
    let mut body = String::from(
        ".data
         scratch: .zero 8192
         result: .dword 0
         .text
         _start:
            csrr s0, mhartid
            la s1, scratch
            slli t6, s0, 11
            add s1, s1, t6
            li t0, 1
            li t1, 2
            li t2, 3
            li t3, 4
        ",
    );
    for op in ops {
        match op {
            Op::Addi(v) => body.push_str(&format!("addi t0, t0, {v}\n")),
            Op::Mul(r) => body.push_str(&format!("mul t1, t1, t{}\n", r % 4)),
            Op::Xor(r) => body.push_str(&format!("xor t2, t2, t{}\n", r % 4)),
            Op::StoreLoad(slot) => {
                let offset = (slot % 255) * 8;
                body.push_str(&format!(
                    "sd t0, {offset}(s1)\n ld t3, {offset}(s1)\n add t0, t0, t3\n"
                ));
            }
            Op::Amo(slot, v) => {
                let offset = (slot % 63) * 8;
                body.push_str(&format!(
                    "li t4, {v}\n addi t5, s1, {offset}\n amoadd.d t6, t4, (t5)\n xor t2, t2, t6\n"
                ));
            }
        }
    }
    body.push_str(
        "xor t0, t0, t1
         xor t0, t0, t2
         la t5, result
         slli t6, s0, 3
         add t5, t5, t6
         sd t0, 0(t5)
         li a0, 0
         li a7, 93
         ecall",
    );
    body
}

fn run_with(config: SimConfig, src: &str) -> (Vec<u64>, u64) {
    let program = coyote_asm::assemble(src).expect("valid generated program");
    let mut sim = Simulation::new(config, &program).expect("valid config");
    let report = sim.run().expect("program halts");
    assert_eq!(
        report.exit_codes().map(|c| c.iter().all(|&x| x == 0)),
        Some(true)
    );
    let result = program.symbol("result").unwrap();
    let values = (0..config.cores as u64)
        .map(|h| sim.memory().read_u64(result + h * 8))
        .collect();
    (values, report.cycles)
}

fn fast_config(cores: usize) -> SimConfig {
    // Every property run co-simulates the lockstep oracle: any timing
    // artefact leaking into architectural state fails with a precise
    // divergence report instead of a bare result mismatch.
    SimConfig::builder()
        .cores(cores)
        .oracle(true)
        .build()
        .unwrap()
}

fn adversarial_config(cores: usize) -> SimConfig {
    SimConfig::builder()
        .cores(cores)
        .oracle(true)
        .cores_per_tile(2)
        .banks_per_tile(1)
        .l1d(CacheConfig {
            size_bytes: 512, // pathologically tiny: constant misses
            ways: 1,
            line_bytes: 64,
        })
        .l1i(CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        })
        .l2(L2Config {
            bank_size_bytes: 8 * 1024,
            ways: 1,
            line_bytes: 64,
            mshrs: 1, // heavy back-pressure
            hit_latency: 30,
            miss_latency: 11,
        })
        .sharing(L2Sharing::Private)
        .mapping(MappingPolicy::page_to_bank())
        .noc(NocModel::Mesh {
            width: 4,
            height: 4,
            hop_latency: 7,
            base_latency: 3,
        })
        .mc(McConfig {
            count: 1,
            channels_per_mc: 1,
            access_latency: 333,
            cycles_per_line: 17,
            ..McConfig::default()
        })
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn timing_config_never_changes_results(
        ops in prop::collection::vec(op_strategy(), 1..40),
        cores in 1usize..4,
    ) {
        let src = render(&ops);
        let (fast_result, fast_cycles) = run_with(fast_config(cores), &src);
        let (slow_result, slow_cycles) = run_with(adversarial_config(cores), &src);
        prop_assert_eq!(&fast_result, &slow_result, "functional result diverged");
        // The adversarial machine is never faster.
        prop_assert!(slow_cycles >= fast_cycles);
    }

    /// AMO-heavy multicore traffic over race-free per-hart slices: the
    /// regression class this suite pinned (an AMO's old-value read
    /// racing an in-flight store to the same line) only shows up when
    /// atomics and stores hammer adjacent slots under back-pressure, so
    /// quantify over exactly that shape.
    #[test]
    fn amo_heavy_traffic_is_oracle_clean(
        amos in prop::collection::vec(((0u16..8), -100i64..100), 4..24),
        cores in 2usize..4,
    ) {
        // Interleave each AMO with a store/load to a nearby slot:
        // Op::Amo(s, v) touches slot s % 63, Op::StoreLoad(s) slot
        // s % 255 — keeping both in the same few lines maximises
        // same-line store/AMO overlap while staying hart-private.
        let ops: Vec<Op> = amos
            .iter()
            .flat_map(|&(slot, value)| [Op::StoreLoad(slot), Op::Amo(slot, value)])
            .collect();
        let src = render(&ops);
        let (fast_result, _) = run_with(fast_config(cores), &src);
        let (slow_result, _) = run_with(adversarial_config(cores), &src);
        prop_assert_eq!(&fast_result, &slow_result, "functional result diverged");
    }
}

/// The exact shrunk case recorded in
/// `timing_functional_separation.proptest-regressions`, pinned as a
/// plain unit test so it replays regardless of the proptest
/// generator's seed mapping: three AMO-adjacent store/load slots under
/// the 1-MSHR adversarial hierarchy used to diverge from the ideal
/// hierarchy (a timing-model completion delivered out of order
/// corrupted the architectural result).
#[test]
fn pinned_regression_amo_after_store_miss() {
    let ops = vec![
        Op::Addi(0),
        Op::Addi(0),
        Op::Addi(0),
        Op::StoreLoad(0),
        Op::Addi(0),
        Op::StoreLoad(8),
        Op::Amo(54, 94),
    ];
    let src = render(&ops);
    let (fast_result, fast_cycles) = run_with(fast_config(3), &src);
    let (slow_result, slow_cycles) = run_with(adversarial_config(3), &src);
    assert_eq!(fast_result, slow_result, "functional result diverged");
    assert!(slow_cycles >= fast_cycles);
}

#[test]
fn single_core_matches_multicore_per_hart_results() {
    // Hart-partitioned single-writer results must not depend on how
    // many other harts run beside a hart.
    let ops = vec![Op::Addi(7), Op::StoreLoad(3), Op::Mul(1), Op::Amo(5, 9)];
    let src = render(&ops);
    let (single, _) = run_with(fast_config(1), &src);
    let (multi, _) = run_with(fast_config(4), &src);
    // Hart 0's register-only result would match; the scratch buffer is
    // shared though, so just assert all four harts produced *some*
    // result and hart counts line up.
    assert_eq!(single.len(), 1);
    assert_eq!(multi.len(), 4);
    assert!(multi.iter().all(|&v| v != 0));
}
