//! Workspace integration tests: full simulations spanning every crate
//! (assembler → ISS → hierarchy → orchestrator → kernels), checking
//! numerical results, statistics invariants and determinism.

use coyote::{L2Sharing, MappingPolicy, NocModel, Report, SimConfig, Simulation};
use coyote_kernels::workload::{run_workload, Workload};
use coyote_kernels::{
    FftRadix2, MatmulScalar, MatmulVector, MlpInference, SpmvScalar, SpmvVectorAdaptive,
    SpmvVectorCsr, SpmvVectorEll, StencilVector, ThresholdFilter,
};

fn all_kernels() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(MatmulScalar::new(12, 100)),
        Box::new(MatmulVector::new(12, 101)),
        Box::new(SpmvScalar::new(48, 48, 0.1, 102)),
        Box::new(SpmvVectorCsr::new(48, 48, 0.1, 103)),
        Box::new(SpmvVectorEll::new(48, 48, 0.1, 104)),
        Box::new(SpmvVectorAdaptive::new(48, 64, 0.25, 105)),
        Box::new(StencilVector::new(10, 12, 2, 106)),
        Box::new(MlpInference::new(20, 12, 6, 107)),
        Box::new(FftRadix2::new(32, 108)),
        Box::new(ThresholdFilter::new(96, 0.1, 109)),
    ]
}

/// Statistics invariants that must hold for every finished run.
fn check_invariants(report: &Report) {
    // Cache accounting: hits + misses = accesses for every cache.
    for core in &report.cores {
        assert_eq!(
            core.l1d.accesses(),
            core.l1d.hits + core.l1d.misses,
            "L1D accounting"
        );
        assert_eq!(core.l1i.accesses(), core.l1i.hits + core.l1i.misses);
        // Every attempted instruction either retired or stalled; cycles
        // can never be undercounted.
        assert!(core.stats.retired > 0, "every hart runs its epilogue");
    }
    // The hierarchy serviced every response-requiring request.
    let h = &report.hierarchy;
    assert!(h.completed <= h.submitted);
    // L2 lookups can only be triggered by L1 misses or L2-internal
    // traffic; there must be at least one per submitted request group.
    assert!(h.l2_hits() + h.l2_misses() > 0 || h.submitted == 0);
    // Simulated time moved.
    assert!(report.cycles > 0);
    assert!(report.total_retired() > 0);
}

#[test]
fn every_kernel_verifies_on_every_topology() {
    let topologies = [
        (1usize, 8usize), // single core
        (4, 2),           // 2 tiles of 2
        (8, 8),           // one full VAS-like tile
    ];
    for kernel in all_kernels() {
        for &(cores, per_tile) in &topologies {
            let config = SimConfig::builder()
                .cores(cores)
                .cores_per_tile(per_tile)
                .build()
                .unwrap();
            let (report, _) = run_workload(kernel.as_ref(), config)
                .unwrap_or_else(|e| panic!("{} on {cores} cores: {e}", kernel.name()));
            check_invariants(&report);
        }
    }
}

#[test]
fn kernels_verify_under_every_hierarchy_variant() {
    let kernel = SpmvVectorCsr::new(64, 64, 0.1, 200);
    for sharing in [L2Sharing::Shared, L2Sharing::Private] {
        for mapping in [MappingPolicy::page_to_bank(), MappingPolicy::SetInterleave] {
            for noc in [
                NocModel::IdealCrossbar {
                    request_latency: 4,
                    response_latency: 4,
                },
                NocModel::Mesh {
                    width: 4,
                    height: 4,
                    hop_latency: 2,
                    base_latency: 1,
                },
            ] {
                let config = SimConfig::builder()
                    .cores(16)
                    .cores_per_tile(8)
                    .sharing(sharing)
                    .mapping(mapping)
                    .noc(noc)
                    .build()
                    .unwrap();
                let (report, _) = run_workload(&kernel, config)
                    .unwrap_or_else(|e| panic!("{sharing:?}/{mapping:?}/{noc:?}: {e}"));
                check_invariants(&report);
            }
        }
    }
}

#[test]
fn full_kernel_runs_are_deterministic() {
    let kernel = MatmulVector::new(16, 300);
    let run = || {
        let config = SimConfig::builder().cores(4).build().unwrap();
        let (report, _) = run_workload(&kernel, config).unwrap();
        (
            report.cycles,
            report.total_retired(),
            format!("{:?}", report.hierarchy),
            report
                .cores
                .iter()
                .map(|c| format!("{:?}", c.stats))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn parallel_speedup_on_matmul() {
    // More cores must reduce simulated execution time for an
    // embarrassingly parallel kernel (the DSE signal Coyote exists to
    // measure).
    let kernel = MatmulScalar::new(32, 301);
    let cycles_at = |cores: usize| {
        let config = SimConfig::builder().cores(cores).build().unwrap();
        let (report, _) = run_workload(&kernel, config).unwrap();
        report.cycles
    };
    let c1 = cycles_at(1);
    let c4 = cycles_at(4);
    let c8 = cycles_at(8);
    assert!(c4 * 2 < c1, "4 cores should be >2x faster: {c1} vs {c4}");
    assert!(c8 < c4, "8 cores should beat 4: {c4} vs {c8}");
}

#[test]
fn slower_memory_costs_simulated_cycles() {
    use coyote::McConfig;
    let kernel = SpmvScalar::new(64, 64, 0.1, 302);
    let cycles_with_latency = |access_latency: u64| {
        let config = SimConfig::builder()
            .cores(4)
            .mc(McConfig {
                access_latency,
                ..McConfig::default()
            })
            .build()
            .unwrap();
        let (report, _) = run_workload(&kernel, config).unwrap();
        report.cycles
    };
    let fast = cycles_with_latency(20);
    let slow = cycles_with_latency(400);
    assert!(
        slow > fast,
        "higher memory latency must cost cycles: {fast} vs {slow}"
    );
}

#[test]
fn noc_latency_is_monotone_in_simulated_time() {
    let kernel = SpmvVectorCsr::new(64, 64, 0.1, 303);
    let cycles_with_noc = |latency: u64| {
        let config = SimConfig::builder()
            .cores(16)
            .cores_per_tile(8)
            .noc(NocModel::IdealCrossbar {
                request_latency: latency,
                response_latency: latency,
            })
            .build()
            .unwrap();
        let (report, _) = run_workload(&kernel, config).unwrap();
        report.cycles
    };
    let c1 = cycles_with_noc(1);
    let c16 = cycles_with_noc(16);
    let c64 = cycles_with_noc(64);
    assert!(c1 <= c16 && c16 <= c64, "{c1} <= {c16} <= {c64} violated");
    assert!(c64 > c1, "64-cycle NoC must be visibly slower");
}

#[test]
fn bigger_l1_reduces_miss_rate() {
    use coyote::CacheConfig;
    let kernel = MatmulScalar::new(24, 304);
    let miss_rate_with_l1d = |size: u64| {
        let config = SimConfig::builder()
            .cores(1)
            .l1d(CacheConfig {
                size_bytes: size,
                ways: 8,
                line_bytes: 64,
            })
            .build()
            .unwrap();
        let (report, _) = run_workload(&kernel, config).unwrap();
        report.l1d_miss_rate()
    };
    let small = miss_rate_with_l1d(4 * 1024);
    let large = miss_rate_with_l1d(64 * 1024);
    assert!(
        large < small,
        "64 KiB L1D should miss less than 4 KiB: {small} vs {large}"
    );
}

#[test]
fn raw_simulation_api_reads_results() {
    // The README's "library usage" path: assemble by hand, poke data,
    // run, read memory.
    let program = coyote_asm::assemble(
        ".data
         x: .dword 0
         y: .dword 0
         .text
         _start:
            la t0, x
            ld t1, 0(t0)
            slli t1, t1, 1
            la t2, y
            sd t1, 0(t2)
            li a0, 0
            li a7, 93
            ecall",
    )
    .unwrap();
    let config = SimConfig::builder().cores(1).build().unwrap();
    let mut sim = Simulation::new(config, &program).unwrap();
    sim.memory_mut().write_u64(program.symbol("x").unwrap(), 21);
    let report = sim.run().unwrap();
    assert_eq!(report.exit_codes(), Some(vec![0]));
    assert_eq!(sim.memory().read_u64(program.symbol("y").unwrap()), 42);
}

#[test]
fn prefetching_helps_streaming_kernels() {
    let kernel = MatmulVector::new(32, 400);
    let cycles_with_degree = |degree: usize| {
        let config = SimConfig::builder()
            .cores(8)
            .prefetch_degree(degree)
            .build()
            .unwrap();
        let (report, _) = run_workload(&kernel, config).unwrap();
        (report.cycles, report.hierarchy.l2_miss_rate())
    };
    let (base_cycles, base_miss) = cycles_with_degree(0);
    let (pf_cycles, pf_miss) = cycles_with_degree(4);
    assert!(
        pf_cycles < base_cycles,
        "next-line prefetch should speed up a streaming kernel: {base_cycles} vs {pf_cycles}"
    );
    assert!(pf_miss < base_miss, "{base_miss} vs {pf_miss}");
}

#[test]
fn row_interleaved_open_page_beats_line_interleaved() {
    use coyote::McConfig;
    let kernel = MatmulVector::new(32, 401);
    let cycles_with_mc = |mc: McConfig| {
        let config = SimConfig::builder().cores(8).mc(mc).build().unwrap();
        let (report, _) = run_workload(&kernel, config).unwrap();
        report.cycles
    };
    let open_page = McConfig {
        row_bytes: 2048,
        row_hit_latency: 60,
        row_miss_latency: 160,
        ..McConfig::default()
    };
    let line_interleaved = cycles_with_mc(open_page);
    let row_interleaved = cycles_with_mc(McConfig {
        interleave_bytes: 2048,
        ..open_page
    });
    assert!(
        row_interleaved < line_interleaved,
        "row-granular interleave preserves locality: {row_interleaved} vs {line_interleaved}"
    );
}

#[test]
fn kernels_are_vector_length_agnostic() {
    // RVV's core promise: strip-mined code works unchanged at any VLEN.
    // Run vector kernels at 256/512/1024-bit VLEN (4/8/16 lanes) and
    // verify numerical output every time.
    use coyote::CoreConfig;
    let matmul = MatmulVector::new(20, 500);
    let spmv = SpmvVectorCsr::new(48, 48, 0.15, 501);
    let fft = FftRadix2::new(64, 502);
    let kernels: [&dyn Workload; 3] = [&matmul, &spmv, &fft];
    for vlen_bits in [256u64, 512, 1024] {
        for kernel in kernels {
            let config = SimConfig::builder()
                .cores(4)
                .core(CoreConfig {
                    vlen_bits,
                    ..CoreConfig::default()
                })
                .build()
                .unwrap();
            run_workload(kernel, config)
                .unwrap_or_else(|e| panic!("{} @ VLEN={vlen_bits}: {e}", kernel.name()));
        }
    }
}

#[test]
fn narrower_vlen_needs_more_instructions() {
    use coyote::CoreConfig;
    let kernel = MatmulVector::new(32, 503);
    let retired_at = |vlen_bits: u64| {
        let config = SimConfig::builder()
            .cores(1)
            .core(CoreConfig {
                vlen_bits,
                ..CoreConfig::default()
            })
            .build()
            .unwrap();
        let (report, _) = run_workload(&kernel, config).unwrap();
        report.total_retired()
    };
    let narrow = retired_at(256);
    let wide = retired_at(1024);
    assert!(
        narrow > wide,
        "4-lane machine must retire more instructions than 16-lane: {narrow} vs {wide}"
    );
}

#[test]
fn illegal_instruction_is_reported_not_panicked() {
    // Jumping into the data section executes zeros, which must surface
    // as a clean RunError::Core, not a panic or hang.
    let program = coyote_asm::assemble(
        ".data
         pool: .dword 0
         .text
         _start:
            la t0, pool
            jr t0",
    )
    .unwrap();
    let config = SimConfig::builder().cores(1).build().unwrap();
    let mut sim = Simulation::new(config, &program).unwrap();
    match sim.run() {
        Err(coyote::RunError::Core { core: 0, source }) => {
            assert!(source.to_string().contains("illegal instruction"));
        }
        other => panic!("expected a core fault, got {other:?}"),
    }
}
