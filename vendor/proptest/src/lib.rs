//! Offline vendored subset of the `proptest` 1.x API.
//!
//! This workspace builds in containers with no crates.io access, so the
//! property-testing surface the test suites actually use is
//! reimplemented here: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`/`prop_filter`/`boxed`, integer-range and
//! tuple strategies, [`Just`], `any::<T>()`, `prop::collection::vec`,
//! `prop::bool::ANY`, a printable-string strategy for `&str` patterns,
//! and the `proptest!`/`prop_oneof!`/`prop_compose!`/`prop_assert*!`
//! macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** On failure the full generated input is printed
//!   with its seed; the seed is appended to the sibling
//!   `*.proptest-regressions` file so the exact case replays first on
//!   every subsequent run.
//! * **Deterministic scheduling.** Case seeds are derived from the test
//!   name and case index, so runs are reproducible without an
//!   environment variable. Seeds stored in a regression file (including
//!   files written by upstream proptest) are folded into a 64-bit seed
//!   and replayed before the fresh cases.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical fuzzing strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draws an unconstrained value of `Self`.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    /// Strategy yielding unconstrained values of `T` (edge-biased for
    /// integers: boundary values appear more often than uniform draws
    /// would give them).
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> $t {
                    // 1-in-8 draws yield a boundary value.
                    if rng.below(8) == 0 {
                        const EDGES: [i128; 5] = [0, 1, -1, 2, 7];
                        match rng.below(EDGES.len() as u64 + 2) {
                            0 => <$t>::MIN,
                            1 => <$t>::MAX,
                            n => EDGES[(n - 2) as usize] as $t,
                        }
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary_with(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_with(rng: &mut TestRng) -> f64 {
            if rng.below(8) == 0 {
                [
                    0.0,
                    -0.0,
                    1.0,
                    -1.0,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    f64::NAN,
                ][rng.below(7) as usize]
            } else {
                f64::from_bits(rng.next_u64())
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted element-count specifications for [`vec`]: an exact
    /// count, a half-open range, or an inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Uniform boolean strategy, mirroring `proptest::bool::ANY`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The `prop::` namespace re-exported by the prelude.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_compose, prop_oneof, proptest};
}

/// Boxes each arm and picks one uniformly per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Composes named sub-strategies into a derived strategy function.
/// Supports the `fn name(args)(binding in strategy, ...) -> T { .. }`
/// form used by this workspace.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)
     ($($binding:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            use $crate::strategy::Strategy as _;
            ($($strat,)+).prop_map(move |($($binding,)+)| $body)
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                "assumption failed".into(),
            ));
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` body
/// runs once per case with freshly generated inputs; bodies may
/// `return Ok(())` early and use `prop_assert*!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config = $config;
            let strat = ($($strat,)+);
            $crate::test_runner::run_proptest(
                concat!(module_path!(), "::", stringify!($name)),
                file!(),
                &config,
                &strat,
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::<(), $crate::test_runner::TestCaseError>::Ok(())
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat =
            (0u8..32, -16i8..=15, any::<bool>()).prop_map(|(a, b, c)| (a as i32 + b as i32, c));
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            let (v, _) = strat.generate(&mut rng);
            assert!((-16..47).contains(&v));
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let strat = prop_oneof![Just(0u8), Just(1u8), 2u8..4];
        let mut rng = TestRng::from_seed(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn vec_respects_size_spec() {
        let exact = prop::collection::vec(0u64..10, 7usize);
        let ranged = prop::collection::vec(prop::bool::ANY, 1..5);
        let mut rng = TestRng::from_seed(11);
        for _ in 0..100 {
            assert_eq!(exact.generate(&mut rng).len(), 7);
            let len = ranged.generate(&mut rng).len();
            assert!((1..5).contains(&len));
        }
    }

    #[test]
    fn flat_map_threads_the_intermediate_value() {
        let strat = (1usize..5)
            .prop_flat_map(|n| prop::collection::vec(0u32..100, n).prop_map(move |v| (n, v)));
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn filter_retries_until_accepted() {
        let strat = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn string_pattern_honours_count_suffix() {
        let strat: &'static str = "\\PC{0,40}";
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(s.chars().count() <= 40);
            assert!(!s.chars().any(char::is_control));
        }
    }

    prop_compose! {
        fn doubled()(raw in -100i32..=100) -> i32 { raw * 2 }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn the_macro_machinery_works(
            v in prop::collection::vec(doubled(), 0..8),
            flag in any::<bool>(),
        ) {
            if flag && v.is_empty() {
                return Ok(());
            }
            for x in &v {
                prop_assert_eq!(x % 2, 0, "doubled values are even, got {}", x);
            }
        }
    }
}
