//! Deterministic case scheduling, failure persistence, and the RNG.

use crate::strategy::Strategy;
use std::fmt::Debug;
use std::io::Write as _;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Runner knobs; only `cases` is meaningful in this vendored subset.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of fresh cases generated per property (stored regression
    /// seeds replay in addition to these).
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` fresh cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Non-panic outcomes a property body can signal.
#[derive(Debug)]
pub enum TestCaseError {
    /// The input should not count as a case (e.g. `prop_assume!`).
    Reject(String),
    /// The property failed for this input.
    Fail(String),
}

/// xoshiro256** seeded via SplitMix64; deterministic per seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds a generator fully determined by `seed`.
    #[must_use]
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)` (Lemire multiply-shift).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Where failing seeds for one source file are stored: a sibling of the
/// test source with the `.proptest-regressions` extension (the same
/// layout upstream proptest's source-sibling persistence uses, so
/// files recorded by upstream replay here).
struct RegressionFile {
    path: PathBuf,
}

impl RegressionFile {
    /// `file` is the `file!()` of the test, which rustc records
    /// relative to the directory cargo invoked it from (the workspace
    /// root), while the test binary's working directory is the
    /// *package* root. Try the path as given and with leading
    /// components stripped, in the cwd and its ancestors.
    fn locate(file: &str) -> RegressionFile {
        let given = Path::new(file);
        let mut sources = vec![given.to_path_buf()];
        let mut stripped = given;
        while let Ok(rest) = stripped.strip_prefix(
            stripped
                .components()
                .next()
                .map_or_else(PathBuf::new, |c| PathBuf::from(c.as_os_str())),
        ) {
            if rest.as_os_str().is_empty() {
                break;
            }
            sources.push(rest.to_path_buf());
            stripped = rest;
        }
        for up in 0..4 {
            for source in &sources {
                let mut candidate = PathBuf::new();
                for _ in 0..up {
                    candidate.push("..");
                }
                candidate.push(source);
                if candidate.is_file() {
                    return RegressionFile {
                        path: candidate.with_extension("proptest-regressions"),
                    };
                }
            }
        }
        RegressionFile {
            path: given.with_extension("proptest-regressions"),
        }
    }

    /// Seeds recorded by earlier failing runs. Each `cc <hex>` line's
    /// leading 16 hex digits fold into the replay seed; upstream's
    /// 256-bit blobs thus still map to one deterministic case.
    fn stored_seeds(&self) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let hex = line.trim().strip_prefix("cc ")?;
                let digits: String = hex.chars().take_while(char::is_ascii_hexdigit).collect();
                if digits.len() < 16 {
                    return None;
                }
                u64::from_str_radix(&digits[..16], 16).ok()
            })
            .collect()
    }

    /// Best-effort append of a failing seed with its input for humans.
    fn persist(&self, seed: u64, repr: &str) {
        let mut tail = seed;
        let mut line = format!("cc {seed:016x}");
        for _ in 0..3 {
            line.push_str(&format!("{:016x}", splitmix64(&mut tail)));
        }
        // Upstream writes the shrunk input after '#'; we record the
        // full generated input (no shrinking here).
        let one_line = repr.replace('\n', " ");
        line.push_str(&format!(" # shrinks to {one_line}\n"));
        let _ = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
    }
}

/// Drives one property: replays stored regression seeds, then runs
/// `config.cases` fresh deterministic cases. Called by the `proptest!`
/// macro expansion; not part of the public upstream API.
pub fn run_proptest<S, F>(name: &str, file: &str, config: &ProptestConfig, strat: &S, run: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let regression = RegressionFile::locate(file);
    let mut schedule: Vec<(bool, u64)> = regression
        .stored_seeds()
        .into_iter()
        .map(|seed| (true, seed))
        .collect();
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        base = (base ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    schedule.extend((0..config.cases).map(|case| {
        let mut sm = base ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (false, splitmix64(&mut sm))
    }));

    for (stored, seed) in schedule {
        let mut rng = TestRng::from_seed(seed);
        let value = strat.generate(&mut rng);
        let repr = format!("{value:?}");
        let outcome = catch_unwind(AssertUnwindSafe(|| run(value)));
        let provenance = if stored {
            "stored regression seed"
        } else {
            "fresh case"
        };
        match outcome {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(message))) => {
                if !stored {
                    regression.persist(seed, &repr);
                }
                panic!(
                    "proptest {name}: case failed ({provenance}, seed {seed:#018x}): \
                     {message}\ninput: {repr}"
                );
            }
            Err(panic) => {
                if !stored {
                    regression.persist(seed, &repr);
                }
                eprintln!(
                    "proptest {name}: case panicked ({provenance}, seed {seed:#018x})\n\
                     input: {repr}"
                );
                resume_unwind(panic);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_suffix_seed_roundtrip() {
        // The checked-in regression format folds to a stable seed.
        let dir = std::env::temp_dir().join("proptest-stub-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("sample.proptest-regressions");
        std::fs::write(
            &path,
            "# comment\ncc cf3970eb7a4069de83990854312fa9d18302d0a8b563e801a026b0f63c2f58ce # shrinks to x\n",
        )
        .unwrap();
        let file = RegressionFile { path: path.clone() };
        assert_eq!(file.stored_seeds(), vec![0xcf3970eb7a4069de]);
        file.persist(0x1234, "Input { a: 1 }");
        let seeds = file.stored_seeds();
        assert_eq!(seeds, vec![0xcf3970eb7a4069de, 0x1234]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(99);
        let mut b = TestRng::from_seed(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
            assert_eq!(a.below(17), b.below(17));
        }
    }
}
