//! The [`Strategy`] trait and the combinators the workspace uses.
//!
//! A strategy here is just a deterministic function from an RNG state
//! to a value — no value trees, no shrinking (see the crate docs for
//! why that trade was made).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Discards generated values failing `pred`, retrying with fresh
    /// draws.
    ///
    /// # Panics
    ///
    /// Panics if 10 000 consecutive draws are rejected.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Type-erases the strategy so heterogeneous strategies with one
    /// value type can share a collection (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    base: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.base.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive draws",
            self.whence
        );
    }
}

trait ErasedStrategy<T> {
    fn generate_erased(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_erased(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` patterns act as printable-string strategies. Only the
/// trailing `{min,max}` repetition count of the pattern is honoured;
/// the character class itself is approximated by "any non-control
/// char", which covers the fuzzing patterns this workspace uses
/// (e.g. `"\\PC{0,400}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_count_suffix(self).unwrap_or((0, 64));
        let span = (max - min) as u64 + 1;
        let len = min + rng.below(span) as usize;
        (0..len)
            .map(|_| {
                match rng.below(8) {
                    // Mostly printable ASCII; some whitespace and
                    // non-ASCII to keep parsers honest.
                    0 => ' ',
                    1 => ['é', 'λ', '\u{2028}', '🦀', 'ß'][rng.below(5) as usize],
                    _ => (0x21 + rng.below(0x7e - 0x21) as u8) as char,
                }
            })
            .collect()
    }
}

fn parse_count_suffix(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let open = body.rfind('{')?;
    let counts = &body[open + 1..];
    match counts.split_once(',') {
        Some((min, max)) => Some((min.trim().parse().ok()?, max.trim().parse().ok()?)),
        None => {
            let n = counts.trim().parse().ok()?;
            Some((n, n))
        }
    }
}

macro_rules! tuple_strategies {
    ($(($($S:ident $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11)
}

/// `PhantomData` strategies are never generated from; this impl exists
/// only so derived containers stay object-safe in user code.
impl<T: Debug> Strategy for PhantomData<T> {
    type Value = ();
    fn generate(&self, _rng: &mut TestRng) {}
}
