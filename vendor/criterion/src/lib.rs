//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! The workspace's bench targets (`harness = false`) need the
//! `Criterion`/`BenchmarkGroup`/`Bencher` surface and the
//! `criterion_group!`/`criterion_main!` macros. This stand-in measures
//! wall-clock means over a fixed, small iteration budget and prints
//! one line per benchmark — enough to compare configurations by eye
//! and to keep `cargo bench` working without the real crate's
//! statistics machinery (no outlier analysis, no HTML reports).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; one per bench binary.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(1500),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Parses CLI arguments. This subset recognizes `--test` (run each
    /// benchmark once with a tiny time budget, as a smoke test — what
    /// `cargo bench -- --test` means in real criterion) and accepts
    /// and ignores everything else (cargo passes `--bench`).
    #[must_use]
    pub fn configure_from_args(mut self) -> Criterion {
        if std::env::args().any(|a| a == "--test") {
            self.test_mode = true;
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let (sample_size, measurement_time) =
            effective(self.sample_size, self.measurement_time, self.test_mode);
        run_one(&name.into(), sample_size, measurement_time, f);
    }
}

/// Sampling settings after applying `--test` mode (one sample, tiny
/// time budget) over the configured values.
fn effective(sample_size: usize, measurement_time: Duration, test_mode: bool) -> (usize, Duration) {
    if test_mode {
        (1, Duration::from_millis(1))
    } else {
        (sample_size, measurement_time)
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this subset always runs one
    /// untimed warm-up iteration instead of a timed warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the total time spent sampling one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted and ignored (throughput annotations only affect the
    /// real crate's reporting).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs `f` as the benchmark identified by `id`.
    // By-value `id` mirrors the real criterion signature.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        let (sample_size, measurement_time) =
            effective(self.sample_size, self.measurement_time, self.test_mode);
        run_one(&label, sample_size, measurement_time, |b| f(b, input));
        self
    }

    /// Runs `f` as the benchmark named `name`.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        let (sample_size, measurement_time) =
            effective(self.sample_size, self.measurement_time, self.test_mode);
        run_one(&label, sample_size, measurement_time, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Throughput annotation (ignored by this subset's reporting).
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to benchmark closures; routines register via [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured sample count, stopping
    /// early if the measurement-time budget runs out.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up, untimed
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// Identity function opaque to the optimizer.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn run_one(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        measurement_time,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<48} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("id", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }
}
