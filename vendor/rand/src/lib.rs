//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in containers without network access to
//! crates.io, so the handful of `rand` entry points the workspace
//! actually uses ([`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`rngs::StdRng`]) are reimplemented here on top of a SplitMix64 →
//! xoshiro256** generator. Distribution quality matches what seeded
//! test-data generation needs: deterministic, well-mixed, uniform.

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, deterministic across runs and platforms.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Generates a random boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Rejection-free-enough uniform integer draw over `[0, bound)` using
/// Lemire's multiply-shift with a single rejection loop.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        (*self.start()..*self.end()).sample_from(rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (the xoshiro authors' recommended seeding).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..10).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let diff: Vec<u64> = (0..10).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_is_supported() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }
}
