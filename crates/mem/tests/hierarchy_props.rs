//! Property tests over the memory hierarchy: every response-requiring
//! request completes exactly once, the system drains to idle, and the
//! whole timeline is deterministic — for arbitrary request streams and
//! arbitrary (valid) configurations.

use coyote_mem::hierarchy::{Hierarchy, HierarchyConfig, L2Sharing, Request};
use coyote_mem::l2::L2Config;
use coyote_mem::mapping::MappingPolicy;
use coyote_mem::mc::McConfig;
use coyote_mem::noc::NocModel;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Workload {
    config: HierarchyConfig,
    /// (submit_cycle_delta, line_index, tile, needs_response)
    requests: Vec<(u64, u64, usize, bool)>,
}

fn config_strategy() -> impl Strategy<Value = HierarchyConfig> {
    (
        1usize..4,                                    // tiles
        1usize..4,                                    // banks per tile
        prop_oneof![Just(1u64), Just(2), Just(4)],    // ways
        prop_oneof![Just(4usize), Just(1), Just(64)], // mshrs
        prop_oneof![
            Just(MappingPolicy::SetInterleave),
            Just(MappingPolicy::page_to_bank())
        ],
        prop_oneof![Just(L2Sharing::Shared), Just(L2Sharing::Private)],
        prop_oneof![
            Just(NocModel::IdealCrossbar {
                request_latency: 4,
                response_latency: 4
            }),
            Just(NocModel::Mesh {
                width: 4,
                height: 4,
                hop_latency: 2,
                base_latency: 1
            })
        ],
        1usize..3, // mcs
        0usize..4, // prefetch degree
    )
        .prop_map(
            |(tiles, banks_per_tile, ways, mshrs, mapping, sharing, noc, mcs, prefetch)| {
                HierarchyConfig {
                    tiles,
                    banks_per_tile,
                    l2: L2Config {
                        bank_size_bytes: 16 * 1024 * ways / ways * ways, // keep divisible
                        ways,
                        line_bytes: 64,
                        mshrs,
                        hit_latency: 10,
                        miss_latency: 4,
                    },
                    sharing,
                    mapping,
                    noc,
                    mc: McConfig {
                        count: mcs,
                        channels_per_mc: 2,
                        access_latency: 50,
                        cycles_per_line: 4,
                        ..McConfig::default()
                    },
                    prefetch_degree: prefetch,
                    perturb_seed: 0,
                }
            },
        )
        .prop_filter("valid config", |c| c.validate().is_ok())
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        config_strategy(),
        prop::collection::vec((0u64..3, 0u64..512, 0usize..4, prop::bool::ANY), 1..200),
    )
        .prop_map(|(config, requests)| Workload { config, requests })
}

fn run(workload: &Workload) -> (u64, Vec<(u64, u64)>, String) {
    let mut h = Hierarchy::new(workload.config).expect("valid config");
    let mut completions = Vec::new();
    let mut out = Vec::new();
    let mut now = 0u64;
    let mut expected_responses = 0u64;
    for &(delta, line, tile, needs_response) in &workload.requests {
        now += delta;
        h.advance(now, &mut completions);
        let tile = tile % workload.config.tiles;
        h.submit(
            now,
            Request {
                line_addr: line * 64,
                tile,
                needs_response,
                tag: line,
                pc: 0,
            },
        );
        expected_responses += u64::from(needs_response);
    }
    let mut guard = 0;
    while !h.is_idle() {
        now += 1;
        h.advance(now, &mut completions);
        guard += 1;
        assert!(guard < 5_000_000, "hierarchy failed to drain");
    }
    out.extend(completions.iter().map(|c| (c.tag, c.line_addr)));
    assert_eq!(
        out.len() as u64,
        expected_responses,
        "every response-requiring request completes exactly once"
    );
    (now, out, format!("{:?}", h.stats()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn drains_and_conserves(workload in workload_strategy()) {
        let _ = run(&workload);
    }

    #[test]
    fn deterministic(workload in workload_strategy()) {
        let a = run(&workload);
        let b = run(&workload);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }
}
