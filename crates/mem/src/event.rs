//! Deterministic discrete-event kernel.
//!
//! The Sparta framework's essential service to Coyote is a cycle-ordered
//! event queue driving modular components. [`EventQueue`] reproduces
//! that: events fire in (time, insertion-sequence) order, so identical
//! inputs always produce identical simulations — a property the
//! simulator's tests assert end-to-end.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: u64,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    key: Key,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic time-ordered event queue.
///
/// # Examples
///
/// ```
/// use coyote_mem::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5, "later");
/// q.schedule(2, "sooner");
/// q.schedule(2, "sooner-but-second");
/// assert_eq!(q.pop_due(2), Some("sooner"));
/// assert_eq!(q.pop_due(2), Some("sooner-but-second"));
/// assert_eq!(q.pop_due(2), None); // "later" is not due yet
/// assert_eq!(q.next_time(), Some(5));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute `time`. Events scheduled
    /// for the same time fire in scheduling order.
    pub fn schedule(&mut self, time: u64, payload: T) {
        let key = Key {
            time,
            seq: self.seq,
        };
        self.seq += 1;
        self.heap.push(Reverse(Entry { key, payload }));
    }

    /// Pops the next event whose time is `<= now`, if any.
    pub fn pop_due(&mut self, now: u64) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.0.key.time <= now) {
            Some(self.heap.pop().expect("peeked").0.payload)
        } else {
            None
        }
    }

    /// Pops the next event together with its scheduled time, regardless
    /// of the current cycle (used for fast-forwarding an idle system).
    pub fn pop_next(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|e| (e.0.key.time, e.0.payload))
    }

    /// The time of the earliest scheduled event.
    #[must_use]
    pub fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.0.key.time)
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(10, 'c');
        q.schedule(1, 'a');
        q.schedule(5, 'b');
        assert_eq!(q.pop_due(10), Some('a'));
        assert_eq!(q.pop_due(10), Some('b'));
        assert_eq!(q.pop_due(10), Some('c'));
        assert_eq!(q.pop_due(10), None);
    }

    #[test]
    fn same_time_fires_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop_due(7), Some(i));
        }
    }

    #[test]
    fn not_due_events_stay() {
        let mut q = EventQueue::new();
        q.schedule(5, ());
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop_due(5), Some(()));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_next_fast_forwards() {
        let mut q = EventQueue::new();
        q.schedule(100, "far");
        assert_eq!(q.next_time(), Some(100));
        assert_eq!(q.pop_next(), Some((100, "far")));
        assert_eq!(q.pop_next(), None);
    }
}
