//! Deterministic discrete-event kernel with auditable tie arbitration.
//!
//! The Sparta framework's essential service to Coyote is a cycle-ordered
//! event queue driving modular components. [`EventQueue`] reproduces
//! that, with one addition motivated by the determinism audit
//! (`coyote-audit --race`): same-cycle ties are not broken by incidental
//! insertion order but by an explicit arbitration contract.
//!
//! Every event scheduled through [`EventQueue::schedule_arb`] carries
//!
//! * a [`Domain`] — the component whose state the handler will touch
//!   (an L2 bank, a memory controller, a tile's response port), and
//! * a `rank` — a canonical value derived from the *content* of the
//!   request (miss kind, line address, tag), independent of the order
//!   in which the scheduling handlers happened to run.
//!
//! Events due on the same cycle fire ordered by `(domain group, rank)`.
//! Within a domain this makes arbitration (MSHR grants, LRU stamping,
//! channel assignment) a deterministic function of the colliding
//! requests themselves. Across *different* domains the order is
//! irrelevant by design — handlers of distinct domains must touch
//! disjoint state — and the schedule-race detector enforces exactly
//! that: under a nonzero perturbation seed the cross-domain group order
//! is permuted (a legal reordering), and any observable difference
//! versus the unperturbed run is a latent event-ordering race.
//!
//! [`EventQueue::schedule`] (no domain) keeps the historical contract:
//! same-time events fire in insertion order, unaffected by perturbation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The component state an event handler is allowed to mutate.
///
/// Two same-cycle events in the same domain are ordered by their
/// canonical rank (arbitration is content-deterministic). Two
/// same-cycle events in different domains may fire in either order —
/// the perturbation seed exercises both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// An L2 bank (tag array, MSHR file, waiting queue, merge table).
    Bank(usize),
    /// A memory controller (channels, open rows, queue accounting).
    Mc(usize),
    /// A tile's completion/response port.
    Tile(usize),
    /// Touches no arbitrated component state (e.g. a pure NoC hop whose
    /// only side effects are commutative counters).
    Free,
}

impl Domain {
    /// Stable encoding used for ordering and seed mixing.
    #[must_use]
    fn code(self) -> u64 {
        match self {
            Domain::Free => 0,
            Domain::Bank(i) => (1 << 32) | i as u64,
            Domain::Mc(i) => (2 << 32) | i as u64,
            Domain::Tile(i) => (3 << 32) | i as u64,
        }
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer used to
/// derive canonical ranks and to permute domain groups under a seed.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Canonical event rank from request content. The inputs must be
/// derivable from the request itself (never from scheduling order or
/// internal ids, which differ between perturbed runs).
#[must_use]
pub fn content_rank(kind: u64, line_addr: u64, tag: u64) -> u64 {
    mix64(kind ^ mix64(line_addr) ^ mix64(tag.wrapping_mul(0x2545_f491_4f6c_dd1d)))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: u64,
    /// Domain group order within a cycle: the domain code, or its
    /// seed-mixed permutation under perturbation.
    group: u64,
    /// Canonical content rank within the domain group.
    rank: u64,
    /// Insertion sequence, the final tiebreak (and the whole tiebreak
    /// for plain `schedule`).
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    key: Key,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic time-ordered event queue.
///
/// # Examples
///
/// ```
/// use coyote_mem::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5, "later");
/// q.schedule(2, "sooner");
/// q.schedule(2, "sooner-but-second");
/// assert_eq!(q.pop_due(2), Some("sooner"));
/// assert_eq!(q.pop_due(2), Some("sooner-but-second"));
/// assert_eq!(q.pop_due(2), None); // "later" is not due yet
/// assert_eq!(q.next_time(), Some(5));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
    /// 0 = canonical order; nonzero permutes cross-domain group order.
    perturb_seed: u64,
    /// Events ever popped (drained). A deterministic function of the
    /// simulated schedule; the host profiler exports it as the
    /// event-queue drain volume.
    pops: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with canonical (unperturbed) ordering.
    #[must_use]
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            perturb_seed: 0,
            pops: 0,
        }
    }

    /// Creates an empty queue whose same-cycle cross-domain order is
    /// permuted by `seed` (0 means canonical order). Used by the
    /// schedule-race detector; all permutations are legal orderings
    /// under the [`Domain`] contract.
    #[must_use]
    pub fn with_perturbation(seed: u64) -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            perturb_seed: seed,
            pops: 0,
        }
    }

    /// The perturbation seed (0 when running canonically).
    #[must_use]
    pub fn perturb_seed(&self) -> u64 {
        self.perturb_seed
    }

    /// Schedules `payload` to fire at absolute `time`. Events scheduled
    /// for the same time fire in scheduling order, regardless of any
    /// perturbation seed.
    pub fn schedule(&mut self, time: u64, payload: T) {
        let key = Key {
            time,
            group: 0,
            rank: 0,
            seq: self.seq,
        };
        self.seq += 1;
        self.heap.push(Reverse(Entry { key, payload }));
    }

    /// Schedules `payload` at `time` under the arbitration contract:
    /// same-cycle ties fire ordered by domain group, then by the
    /// canonical `rank` (see [`content_rank`]). The handler must touch
    /// only the state of `domain` (plus commutative counters).
    pub fn schedule_arb(&mut self, time: u64, domain: Domain, rank: u64, payload: T) {
        let code = domain.code();
        let group = if self.perturb_seed == 0 {
            code
        } else {
            mix64(self.perturb_seed ^ code)
        };
        let key = Key {
            time,
            group,
            rank,
            seq: self.seq,
        };
        self.seq += 1;
        self.heap.push(Reverse(Entry { key, payload }));
    }

    /// Pops the next event whose time is `<= now`, if any.
    pub fn pop_due(&mut self, now: u64) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.0.key.time <= now) {
            self.pops += 1;
            self.heap.pop().map(|e| e.0.payload)
        } else {
            None
        }
    }

    /// Pops the next event together with its scheduled time, regardless
    /// of the current cycle (used for fast-forwarding an idle system).
    pub fn pop_next(&mut self) -> Option<(u64, T)> {
        let popped = self.heap.pop().map(|e| (e.0.key.time, e.0.payload));
        self.pops += u64::from(popped.is_some());
        popped
    }

    /// Total events ever popped from this queue.
    #[must_use]
    pub fn pop_count(&self) -> u64 {
        self.pops
    }

    /// The time of the earliest scheduled event.
    #[must_use]
    pub fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.0.key.time)
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(10, 'c');
        q.schedule(1, 'a');
        q.schedule(5, 'b');
        assert_eq!(q.pop_due(10), Some('a'));
        assert_eq!(q.pop_due(10), Some('b'));
        assert_eq!(q.pop_due(10), Some('c'));
        assert_eq!(q.pop_due(10), None);
    }

    #[test]
    fn same_time_fires_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop_due(7), Some(i));
        }
    }

    #[test]
    fn not_due_events_stay() {
        let mut q = EventQueue::new();
        q.schedule(5, ());
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop_due(5), Some(()));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_next_fast_forwards() {
        let mut q = EventQueue::new();
        q.schedule(100, "far");
        assert_eq!(q.next_time(), Some(100));
        assert_eq!(q.pop_next(), Some((100, "far")));
        assert_eq!(q.pop_next(), None);
    }

    #[test]
    fn arb_ties_order_by_rank_not_insertion() {
        let mut q = EventQueue::new();
        q.schedule_arb(3, Domain::Bank(0), 9, "high-rank");
        q.schedule_arb(3, Domain::Bank(0), 1, "low-rank");
        assert_eq!(q.pop_due(3), Some("low-rank"));
        assert_eq!(q.pop_due(3), Some("high-rank"));
    }

    #[test]
    fn same_domain_order_survives_perturbation() {
        for seed in [0u64, 1, 0xdead_beef, u64::MAX] {
            let mut q = EventQueue::with_perturbation(seed);
            q.schedule_arb(2, Domain::Mc(1), 40, 'b');
            q.schedule_arb(2, Domain::Mc(1), 30, 'a');
            q.schedule_arb(2, Domain::Mc(1), 50, 'c');
            assert_eq!(q.pop_due(2), Some('a'), "seed {seed}");
            assert_eq!(q.pop_due(2), Some('b'), "seed {seed}");
            assert_eq!(q.pop_due(2), Some('c'), "seed {seed}");
        }
    }

    #[test]
    fn perturbation_permutes_cross_domain_group_order() {
        let drain = |seed: u64| {
            let mut q = EventQueue::with_perturbation(seed);
            for bank in 0..8usize {
                q.schedule_arb(1, Domain::Bank(bank), 0, bank);
            }
            let mut order = Vec::new();
            while let Some(b) = q.pop_due(1) {
                order.push(b);
            }
            order
        };
        let canonical = drain(0);
        assert_eq!(canonical, (0..8).collect::<Vec<_>>());
        // At least one seed must produce a different cross-domain order
        // (with 8 groups, all 16 seeds agreeing is impossible in
        // practice and would mean the perturbation is inert).
        assert!(
            (1..=16u64).any(|seed| drain(seed) != canonical),
            "perturbation never changed cross-domain order"
        );
    }

    #[test]
    fn perturbation_never_reorders_across_time() {
        let mut q = EventQueue::with_perturbation(42);
        q.schedule_arb(5, Domain::Bank(0), 0, "later");
        q.schedule_arb(2, Domain::Mc(3), u64::MAX, "sooner");
        assert_eq!(q.pop_next(), Some((2, "sooner")));
        assert_eq!(q.pop_next(), Some((5, "later")));
    }

    #[test]
    fn content_rank_is_stable_and_spread() {
        let a = content_rank(1, 0x4000, 7);
        assert_eq!(a, content_rank(1, 0x4000, 7));
        assert_ne!(a, content_rank(2, 0x4000, 7));
        assert_ne!(a, content_rank(1, 0x4040, 7));
        assert_ne!(a, content_rank(1, 0x4000, 8));
    }
}
