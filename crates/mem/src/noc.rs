//! Network-on-chip latency models.
//!
//! The paper models the NoC "as a highly idealized crossbar, that uses
//! fixed, configurable latencies", and names a more realistic model as
//! work in progress. Both are provided here: [`NocModel::IdealCrossbar`]
//! reproduces the paper's model; [`NocModel::Mesh`] is the "more
//! realistic modelling" extension — a 2D mesh with per-hop latency and
//! XY dimension-ordered routing distance.

/// A node attached to the NoC: a compute tile or a memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NocNode {
    /// Compute tile `index`.
    Tile(usize),
    /// Memory controller `index`.
    Mc(usize),
}

/// NoC timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocModel {
    /// The paper's idealized crossbar: every traversal costs a fixed
    /// latency (requests and responses may differ).
    IdealCrossbar {
        /// Cycles for a request traversal.
        request_latency: u64,
        /// Cycles for a response traversal.
        response_latency: u64,
    },
    /// 2D mesh with XY routing. Tiles fill the grid row-major; memory
    /// controllers sit on the west and east edges, alternating.
    Mesh {
        /// Grid width in tiles.
        width: usize,
        /// Grid height in tiles.
        height: usize,
        /// Cycles per hop.
        hop_latency: u64,
        /// Fixed injection/ejection overhead per traversal.
        base_latency: u64,
    },
}

impl Default for NocModel {
    fn default() -> Self {
        NocModel::IdealCrossbar {
            request_latency: 8,
            response_latency: 8,
        }
    }
}

/// Traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Traversals carried.
    pub traversals: u64,
    /// Total latency cycles accumulated over all traversals.
    pub total_latency: u64,
    /// Total hop count (mesh only; crossbar counts one hop each).
    pub total_hops: u64,
}

impl NocStats {
    /// Mean traversal latency.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.traversals == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.traversals as f64
        }
    }
}

/// The NoC component: computes traversal latencies and keeps stats.
#[derive(Debug, Clone)]
pub struct Noc {
    model: NocModel,
    tiles: usize,
    mcs: usize,
    stats: NocStats,
}

impl Noc {
    /// Creates a NoC connecting `tiles` tiles and `mcs` memory
    /// controllers.
    ///
    /// # Panics
    ///
    /// Panics if a mesh model's grid cannot hold `tiles` tiles.
    #[must_use]
    pub fn new(model: NocModel, tiles: usize, mcs: usize) -> Noc {
        if let NocModel::Mesh { width, height, .. } = model {
            assert!(
                width * height >= tiles,
                "mesh {width}x{height} too small for {tiles} tiles"
            );
        }
        Noc {
            model,
            tiles,
            mcs,
            stats: NocStats::default(),
        }
    }

    /// The model in use.
    #[must_use]
    pub fn model(&self) -> NocModel {
        self.model
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Latency of a request traversal from `from` to `to`, recording
    /// stats. Same-node traversals are free (tile-local L2 banks).
    pub fn traverse_request(&mut self, from: NocNode, to: NocNode) -> u64 {
        let latency = self.latency(from, to, true);
        self.record(from, to, latency);
        latency
    }

    /// Latency of a response traversal, recording stats.
    pub fn traverse_response(&mut self, from: NocNode, to: NocNode) -> u64 {
        let latency = self.latency(from, to, false);
        self.record(from, to, latency);
        latency
    }

    fn record(&mut self, from: NocNode, to: NocNode, latency: u64) {
        if from == to {
            return;
        }
        self.stats.traversals += 1;
        self.stats.total_latency += latency;
        self.stats.total_hops += self.hops(from, to);
    }

    /// Pure latency computation (no stats).
    #[must_use]
    pub fn latency(&self, from: NocNode, to: NocNode, request: bool) -> u64 {
        if from == to {
            return 0;
        }
        match self.model {
            NocModel::IdealCrossbar {
                request_latency,
                response_latency,
            } => {
                if request {
                    request_latency
                } else {
                    response_latency
                }
            }
            NocModel::Mesh {
                hop_latency,
                base_latency,
                ..
            } => base_latency + hop_latency * self.hops(from, to),
        }
    }

    /// Manhattan hop distance between two nodes (1 for the crossbar).
    #[must_use]
    pub fn hops(&self, from: NocNode, to: NocNode) -> u64 {
        if from == to {
            return 0;
        }
        match self.model {
            NocModel::IdealCrossbar { .. } => 1,
            NocModel::Mesh { width, height, .. } => {
                let (fx, fy) = self.position(from, width, height);
                let (tx, ty) = self.position(to, width, height);
                fx.abs_diff(tx) + fy.abs_diff(ty)
            }
        }
    }

    /// Grid position of a node. Tiles are row-major inside the grid;
    /// MCs sit just outside the west (even index) and east (odd index)
    /// edges, spread over the rows.
    fn position(&self, node: NocNode, width: usize, height: usize) -> (u64, u64) {
        match node {
            NocNode::Tile(i) => {
                assert!(i < self.tiles, "tile {i} out of range");
                ((i % width) as u64, (i / width) as u64)
            }
            NocNode::Mc(i) => {
                assert!(i < self.mcs, "mc {i} out of range");
                let side_count = self.mcs.div_ceil(2);
                let row_step = height.max(1) / side_count.max(1);
                let row = ((i / 2) * row_step.max(1)).min(height.saturating_sub(1));
                if i % 2 == 0 {
                    (0, row as u64) // west edge, column 0
                } else {
                    ((width.saturating_sub(1)) as u64, row as u64) // east edge
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_is_distance_independent() {
        let mut noc = Noc::new(
            NocModel::IdealCrossbar {
                request_latency: 5,
                response_latency: 7,
            },
            16,
            2,
        );
        assert_eq!(noc.traverse_request(NocNode::Tile(0), NocNode::Tile(15)), 5);
        assert_eq!(noc.traverse_request(NocNode::Tile(0), NocNode::Tile(1)), 5);
        assert_eq!(noc.traverse_response(NocNode::Mc(1), NocNode::Tile(3)), 7);
        assert_eq!(noc.stats().traversals, 3);
        assert_eq!(noc.stats().total_latency, 17);
    }

    #[test]
    fn same_node_is_free() {
        let mut noc = Noc::new(NocModel::default(), 4, 1);
        assert_eq!(noc.traverse_request(NocNode::Tile(2), NocNode::Tile(2)), 0);
        assert_eq!(noc.stats().traversals, 0);
    }

    #[test]
    fn mesh_latency_scales_with_distance() {
        let noc = Noc::new(
            NocModel::Mesh {
                width: 4,
                height: 4,
                hop_latency: 2,
                base_latency: 3,
            },
            16,
            4,
        );
        // Tile 0 is (0,0); tile 15 is (3,3): 6 hops.
        assert_eq!(noc.hops(NocNode::Tile(0), NocNode::Tile(15)), 6);
        assert_eq!(noc.latency(NocNode::Tile(0), NocNode::Tile(15), true), 15);
        // Adjacent tiles: 1 hop.
        assert_eq!(noc.latency(NocNode::Tile(0), NocNode::Tile(1), true), 5);
    }

    #[test]
    fn mesh_mcs_sit_on_edges() {
        let noc = Noc::new(
            NocModel::Mesh {
                width: 4,
                height: 4,
                hop_latency: 1,
                base_latency: 0,
            },
            16,
            4,
        );
        // MC 0 on the west edge near row 0: close to tile 0.
        let near = noc.hops(NocNode::Mc(0), NocNode::Tile(0));
        let far = noc.hops(NocNode::Mc(0), NocNode::Tile(15));
        assert!(near < far);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn mesh_must_fit_tiles() {
        let _ = Noc::new(
            NocModel::Mesh {
                width: 2,
                height: 2,
                hop_latency: 1,
                base_latency: 0,
            },
            16,
            2,
        );
    }

    #[test]
    fn mean_latency_math() {
        let mut noc = Noc::new(NocModel::default(), 4, 1);
        assert_eq!(noc.stats().mean_latency(), 0.0);
        noc.traverse_request(NocNode::Tile(0), NocNode::Mc(0));
        noc.traverse_response(NocNode::Mc(0), NocNode::Tile(0));
        assert_eq!(noc.stats().mean_latency(), 8.0);
    }
}
