//! Banked L2 cache model with MSHR-limited outstanding misses.
//!
//! Each bank is an independent component (the paper highlights that "the
//! functionality of each element (e.g. an L2 Bank) is encapsulated as an
//! independent component"). A bank owns a set-associative tag array over
//! its *bank-local* line index space (see [`crate::mapping`]) and a
//! bounded miss-status holding register (MSHR) file: when the MSHRs are
//! exhausted, incoming misses queue at the bank — the back-pressure the
//! paper's "maximum number of in-flight misses" knob controls.

use std::collections::VecDeque;

/// Geometry and timing of every L2 bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Capacity **per bank** in bytes.
    pub bank_size_bytes: u64,
    /// Associativity.
    pub ways: u64,
    /// Line size in bytes (must match the L1s).
    pub line_bytes: u64,
    /// Maximum in-flight misses per bank.
    pub mshrs: usize,
    /// Tag-lookup latency paid by every access (the "hit latency").
    pub hit_latency: u64,
    /// Additional latency from lookup to the miss request leaving the
    /// bank (the "miss latency").
    pub miss_latency: u64,
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config {
            bank_size_bytes: 256 * 1024,
            ways: 16,
            line_bytes: 64,
            mshrs: 16,
            hit_latency: 12,
            miss_latency: 4,
        }
    }
}

impl L2Config {
    /// Sets per bank.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.bank_size_bytes / (self.ways * self.line_bytes)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() || self.line_bytes < 8 {
            return Err(format!("L2 line size {} invalid", self.line_bytes));
        }
        if self.ways == 0 || self.mshrs == 0 {
            return Err("L2 ways and mshrs must be positive".to_owned());
        }
        let denom = self.ways * self.line_bytes;
        if self.bank_size_bytes == 0 || !self.bank_size_bytes.is_multiple_of(denom) {
            return Err(format!(
                "L2 bank size {} not divisible by ways*line",
                self.bank_size_bytes
            ));
        }
        let sets = self.bank_size_bytes / denom;
        if !sets.is_power_of_two() {
            return Err(format!("L2 set count {sets} must be a power of two"));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TagLine {
    line_addr: u64,
    valid: bool,
    dirty: bool,
    /// Installed by a prefetch and not yet demanded.
    prefetched: bool,
    lru: u64,
}

/// Per-bank counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty victims evicted toward memory.
    pub writebacks: u64,
    /// Requests that found all MSHRs busy and had to queue.
    pub mshr_stalls: u64,
    /// Peak depth of the MSHR-full waiting queue.
    pub max_queue_depth: usize,
    /// Prefetch fills installed.
    pub prefetch_fills: u64,
    /// Prefetched lines later hit by a demand access.
    pub prefetch_useful: u64,
}

impl BankStats {
    /// Total lookups.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Result of a bank lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present.
    Hit,
    /// Line absent; fill required. Carries the dirty victim (if any)
    /// that the later fill will evict.
    Miss,
}

/// One L2 bank: tag array + MSHR accounting.
#[derive(Debug, Clone)]
pub struct L2Bank {
    config: L2Config,
    lines: Vec<TagLine>,
    set_mask: u64,
    counter: u64,
    in_flight: usize,
    /// Requests queued because MSHRs were exhausted; drained by the
    /// hierarchy when an MSHR frees.
    waiting: VecDeque<u64>,
    stats: BankStats,
}

impl L2Bank {
    /// Builds a bank.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation (checked at hierarchy
    /// construction).
    #[must_use]
    pub fn new(config: L2Config) -> L2Bank {
        config.validate().expect("invalid L2 config");
        let sets = config.sets();
        L2Bank {
            config,
            lines: vec![TagLine::default(); (sets * config.ways) as usize],
            set_mask: sets - 1,
            counter: 0,
            in_flight: 0,
            waiting: VecDeque::new(),
            stats: BankStats::default(),
        }
    }

    /// Bank configuration.
    #[must_use]
    pub fn config(&self) -> L2Config {
        self.config
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Probes the tag array for `line_addr` whose bank-local index is
    /// `local_idx` (from the mapping policy). `write` marks a hit line
    /// dirty (write-backs arriving from the L1s).
    pub fn lookup(&mut self, line_addr: u64, local_idx: u64, write: bool) -> Lookup {
        self.counter += 1;
        let set = (local_idx & self.set_mask) as usize;
        let ways = self.config.ways as usize;
        let set_lines = &mut self.lines[set * ways..(set + 1) * ways];
        if let Some(line) = set_lines
            .iter_mut()
            .find(|l| l.valid && l.line_addr == line_addr)
        {
            line.lru = self.counter;
            line.dirty |= write;
            if line.prefetched {
                line.prefetched = false;
                self.stats.prefetch_useful += 1;
            }
            self.stats.hits += 1;
            Lookup::Hit
        } else {
            self.stats.misses += 1;
            Lookup::Miss
        }
    }

    /// Whether `line_addr` is resident, without touching LRU state or
    /// statistics — used to filter prefetch candidates.
    #[must_use]
    pub fn probe_quiet(&self, line_addr: u64, local_idx: u64) -> bool {
        let set = (local_idx & self.set_mask) as usize;
        let ways = self.config.ways as usize;
        self.lines[set * ways..(set + 1) * ways]
            .iter()
            .any(|l| l.valid && l.line_addr == line_addr)
    }

    /// Installs `line_addr` after a fill returns from memory; returns
    /// the dirty victim's address if one must be written back.
    /// `prefetched` marks speculative installs for usefulness tracking.
    pub fn fill(
        &mut self,
        line_addr: u64,
        local_idx: u64,
        dirty: bool,
        prefetched: bool,
    ) -> Option<u64> {
        self.counter += 1;
        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        let set = (local_idx & self.set_mask) as usize;
        let ways = self.config.ways as usize;
        let set_lines = &mut self.lines[set * ways..(set + 1) * ways];
        if let Some(line) = set_lines
            .iter_mut()
            .find(|l| l.valid && l.line_addr == line_addr)
        {
            // Already present (e.g. a racing fill); just refresh.
            line.lru = self.counter;
            line.dirty |= dirty;
            return None;
        }
        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("at least one way");
        let writeback = (victim.valid && victim.dirty).then_some(victim.line_addr);
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        *victim = TagLine {
            line_addr,
            valid: true,
            dirty,
            prefetched,
            lru: self.counter,
        };
        writeback
    }

    /// Whether an MSHR is available.
    #[must_use]
    pub fn mshr_available(&self) -> bool {
        self.in_flight < self.config.mshrs
    }

    /// Claims an MSHR for an outgoing miss.
    ///
    /// # Panics
    ///
    /// Panics if none is free (callers must check
    /// [`L2Bank::mshr_available`] first).
    pub fn mshr_acquire(&mut self) {
        assert!(self.mshr_available(), "MSHR overflow");
        self.in_flight += 1;
    }

    /// Releases an MSHR when a fill completes.
    pub fn mshr_release(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Currently outstanding misses.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Queues a request id while the MSHRs are full.
    pub fn enqueue_waiting(&mut self, request_id: u64) {
        self.stats.mshr_stalls += 1;
        self.waiting.push_back(request_id);
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.waiting.len());
    }

    /// Pops the oldest waiting request id, if any.
    pub fn pop_waiting(&mut self) -> Option<u64> {
        self.waiting.pop_front()
    }

    /// Depth of the waiting queue.
    #[must_use]
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> L2Bank {
        L2Bank::new(L2Config {
            bank_size_bytes: 8 * 1024,
            ways: 2,
            line_bytes: 64,
            mshrs: 2,
            hit_latency: 10,
            miss_latency: 4,
        })
    }

    #[test]
    fn config_validation() {
        assert!(L2Config::default().validate().is_ok());
        assert!(L2Config {
            bank_size_bytes: 1000,
            ..L2Config::default()
        }
        .validate()
        .is_err());
        assert!(L2Config {
            mshrs: 0,
            ..L2Config::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut b = bank();
        assert_eq!(b.lookup(0x4000, 0x100, false), Lookup::Miss);
        assert_eq!(b.fill(0x4000, 0x100, false, false), None);
        assert_eq!(b.lookup(0x4000, 0x100, false), Lookup::Hit);
        assert_eq!(b.stats().hits, 1);
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn dirty_fill_evicts_with_writeback() {
        let mut b = bank();
        // 64 sets, 2 ways: local indices congruent mod 64 share a set.
        b.fill(0x0001_0000, 0, true, false);
        b.fill(0x0002_0000, 1, false, false); // different set, no conflict
        b.fill(0x0003_0000, 64, false, false); // set 0: second way
                                               // Third line in set 0 evicts the dirty first line.
        let wb = b.fill(0x0004_0000, 128, false, false); // set 0 again
        assert_eq!(wb, Some(0x0001_0000));
        assert_eq!(b.stats().writebacks, 1);
    }

    #[test]
    fn mshr_accounting_and_queueing() {
        let mut b = bank();
        assert!(b.mshr_available());
        b.mshr_acquire();
        b.mshr_acquire();
        assert!(!b.mshr_available());
        b.enqueue_waiting(42);
        b.enqueue_waiting(43);
        assert_eq!(b.stats().mshr_stalls, 2);
        assert_eq!(b.stats().max_queue_depth, 2);
        b.mshr_release();
        assert!(b.mshr_available());
        assert_eq!(b.pop_waiting(), Some(42));
        assert_eq!(b.pop_waiting(), Some(43));
        assert_eq!(b.pop_waiting(), None);
    }

    #[test]
    #[should_panic(expected = "MSHR overflow")]
    fn mshr_overflow_panics() {
        let mut b = bank();
        b.mshr_acquire();
        b.mshr_acquire();
        b.mshr_acquire();
    }

    #[test]
    fn prefetch_usefulness_tracking() {
        let mut b = bank();
        b.fill(0x9000, 7, false, true);
        assert_eq!(b.stats().prefetch_fills, 1);
        assert!(b.probe_quiet(0x9000, 7));
        assert_eq!(b.stats().hits, 0, "probe_quiet is stat-free");
        // First demand hit consumes the prefetched flag.
        assert_eq!(b.lookup(0x9000, 7, false), Lookup::Hit);
        assert_eq!(b.stats().prefetch_useful, 1);
        // Second demand hit does not double-count.
        assert_eq!(b.lookup(0x9000, 7, false), Lookup::Hit);
        assert_eq!(b.stats().prefetch_useful, 1);
    }

    #[test]
    fn redundant_fill_is_benign() {
        let mut b = bank();
        b.fill(0x1000, 0, false, false);
        assert_eq!(b.fill(0x1000, 0, true, false), None);
        assert_eq!(b.lookup(0x1000, 0, false), Lookup::Hit);
    }
}
