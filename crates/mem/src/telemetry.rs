//! Request-lifecycle telemetry for the hierarchy.
//!
//! When enabled (see [`crate::hierarchy::Hierarchy::enable_telemetry`]),
//! the event pipeline stamps each response-bearing request at every
//! stage boundary. On completion the stamps collapse into per-stage
//! latencies folded into log2 histograms — aggregate per
//! [`Stage`], per bank (the `Bank` stage, which includes queueing and
//! MSHR wait), and per memory controller (the `Mc` stage) — and,
//! optionally, into bounded [`RequestSlice`] records for Chrome-trace
//! export.
//!
//! Only requests with `needs_response` are tracked: prefetches and
//! writebacks never complete, so the end-to-end histogram count equals
//! the hierarchy's `completed` counter by construction.

use coyote_telemetry::{Blame, Histogram, RequestCause, Stage};

use crate::fastmap::FastMap;

/// Per-request stage timestamps (cycles). `None` fields belong to
/// stages the request skipped (hits and MSHR-merged requests never
/// visit the memory controller).
#[derive(Debug, Clone, Copy, Default)]
struct Stamps {
    submit: u64,
    bank_arrive: Option<u64>,
    mc_send: Option<u64>,
    mc_respond: Option<u64>,
    bank_fill: Option<u64>,
    respond: Option<u64>,
    mshr_grant: Option<u64>,
    merged: bool,
    bank: usize,
    mc: Option<usize>,
    tile: usize,
    line_addr: u64,
    tag: u64,
    pc: u64,
}

/// One completed request's lifecycle, retained for Chrome-trace export.
#[derive(Debug, Clone, Copy)]
pub struct RequestSlice {
    /// Line-aligned address.
    pub line_addr: u64,
    /// Caller tag from the originating request.
    pub tag: u64,
    /// Program counter of the issuing instruction (0 for synthetic
    /// requests such as prefetches and L2 victim writebacks).
    pub pc: u64,
    /// Issuing tile.
    pub tile: usize,
    /// Serving bank (global index).
    pub bank: usize,
    /// Serving memory controller, for miss owners.
    pub mc: Option<usize>,
    /// Submission cycle.
    pub submit: u64,
    /// Arrival at the bank.
    pub bank_arrive: Option<u64>,
    /// Departure toward the memory controller (miss owners).
    pub mc_send: Option<u64>,
    /// Memory-controller response (miss owners).
    pub mc_respond: Option<u64>,
    /// Line installed at the bank (miss owners).
    pub bank_fill: Option<u64>,
    /// Response departure toward the requesting tile.
    pub respond: Option<u64>,
    /// Completion cycle.
    pub complete: u64,
}

/// Lifecycle stamping state and the histograms it feeds.
#[derive(Debug, Clone)]
pub struct MemTelemetry {
    stamps: FastMap<Stamps>,
    stages: [Histogram; Stage::ALL.len()],
    per_bank: Vec<Histogram>,
    per_mc: Vec<Histogram>,
    slices: Vec<RequestSlice>,
    collect_slices: bool,
    dropped_slices: u64,
    stamp_errors: u64,
}

/// Cap on retained [`RequestSlice`]s: enough for a detailed Perfetto
/// view without unbounded memory on long runs. Overflow increments
/// [`MemTelemetry::dropped_slices`] instead of allocating.
pub const SLICE_CAP: usize = 100_000;

impl MemTelemetry {
    /// Telemetry for a hierarchy with the given bank/controller counts.
    /// `collect_slices` additionally retains up to [`SLICE_CAP`]
    /// completed lifecycles for Chrome-trace export.
    #[must_use]
    pub fn new(banks: usize, mcs: usize, collect_slices: bool) -> MemTelemetry {
        MemTelemetry {
            stamps: FastMap::default(),
            stages: std::array::from_fn(|_| Histogram::new()),
            per_bank: vec![Histogram::new(); banks],
            per_mc: vec![Histogram::new(); mcs],
            slices: Vec::new(),
            collect_slices,
            dropped_slices: 0,
            stamp_errors: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_submit(
        &mut self,
        id: u64,
        now: u64,
        line_addr: u64,
        tile: usize,
        bank: usize,
        tag: u64,
        pc: u64,
    ) {
        self.stamps.insert(
            id,
            Stamps {
                submit: now,
                line_addr,
                tile,
                bank,
                tag,
                pc,
                ..Stamps::default()
            },
        );
    }

    pub(crate) fn on_bank_arrive(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.bank_arrive = Some(now);
        }
    }

    pub(crate) fn on_mc_send(&mut self, id: u64, now: u64, mc: usize) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.mc_send = Some(now);
            s.mc = Some(mc);
        }
    }

    pub(crate) fn on_mc_respond(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.mc_respond = Some(now);
        }
    }

    pub(crate) fn on_bank_fill(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.bank_fill = Some(now);
        }
    }

    pub(crate) fn on_respond(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.respond = Some(now);
        }
    }

    /// Marks the request as MSHR-merged into another in-flight miss to
    /// the same line: it never owns an MC round-trip, and its residency
    /// at the bank counts as miss wait, not hit service.
    pub(crate) fn on_merge(&mut self, id: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.merged = true;
        }
    }

    /// Marks the cycle an MSHR was finally acquired for (or a merge
    /// slot granted to) a request that had been parked in the bank's
    /// waiting queue; `bank_arrive → mshr_grant` is MSHR-full
    /// back-pressure.
    pub(crate) fn on_mshr_grant(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.mshr_grant = Some(now);
        }
    }

    /// A stage delta from an ordered stamp pair. A pair stamped out of
    /// order is an event-pipeline bug: rather than underflowing (and
    /// poisoning a histogram with a near-`u64::MAX` sample), it
    /// increments [`MemTelemetry::stamp_errors`] and records nothing.
    fn stage_delta(&mut self, later: u64, earlier: u64) -> Option<u64> {
        match later.checked_sub(earlier) {
            Some(delta) => Some(delta),
            None => {
                self.stamp_errors += 1;
                None
            }
        }
    }

    /// Folds the request's stamps into the stage histograms and returns
    /// its causal record: the issuing PC plus the request's end-to-end
    /// latency split across [`Blame`] categories. The split partitions
    /// `complete - submit` exactly (misordered stamp pairs drop their
    /// stage and are counted in [`MemTelemetry::stamp_errors`]):
    ///
    /// - `Noc`: request hop, fill hop (miss owners), and response hop;
    /// - `Mshr`: `bank_arrive → mshr_grant` back-pressure wait;
    /// - `L2Hit`: bank residency of a plain hit;
    /// - `L2Miss`: bank residency of a miss owner up to the MC send, or
    ///   of a merged waiter up to its response;
    /// - `Mc`: the owner's DRAM round-trip.
    pub(crate) fn on_complete(&mut self, id: u64, now: u64) -> Option<RequestCause> {
        let s = self.stamps.remove(&id)?;
        let mut blame = [0u64; Blame::ALL.len()];
        if let Some(arrive) = s.bank_arrive {
            if let Some(hop) = self.stage_delta(arrive, s.submit) {
                blame[Blame::Noc as usize] += hop;
            }
            let bank_start = s.mshr_grant.unwrap_or(arrive);
            if let Some(grant) = s.mshr_grant {
                if let Some(wait) = self.stage_delta(grant, arrive) {
                    blame[Blame::Mshr as usize] += wait;
                }
            }
            if let Some(send) = s.mc_send {
                // Miss owner: bank residency ends at the MC send.
                if let Some(lookup) = self.stage_delta(send, bank_start) {
                    blame[Blame::L2Miss as usize] += lookup;
                }
            } else if let Some(respond) = s.respond {
                let residency = self.stage_delta(respond, bank_start);
                if let Some(residency) = residency {
                    // Merged waiters spent their residency waiting on
                    // someone else's miss; plain hits on bank service.
                    let kind = if s.merged {
                        Blame::L2Miss
                    } else {
                        Blame::L2Hit
                    };
                    blame[kind as usize] += residency;
                }
            }
        }
        if let (Some(send), Some(resp)) = (s.mc_send, s.mc_respond) {
            if let Some(dram) = self.stage_delta(resp, send) {
                blame[Blame::Mc as usize] += dram;
            }
        }
        if let (Some(resp), Some(fill)) = (s.mc_respond, s.bank_fill) {
            if let Some(hop) = self.stage_delta(fill, resp) {
                blame[Blame::Noc as usize] += hop;
            }
        }
        if let Some(respond) = s.respond {
            // Miss owners are responded the cycle they fill, so the
            // fill → respond gap is zero and this hop completes the
            // partition for every request shape.
            if let Some(hop) = self.stage_delta(now, respond) {
                blame[Blame::Noc as usize] += hop;
            }
        }
        let cause = RequestCause {
            pc: s.pc,
            submit: s.submit,
            blame,
        };
        if let Some(e2e) = self.stage_delta(now, s.submit) {
            self.stages[Stage::EndToEnd as usize].record(e2e);
        }
        if let Some(arrive) = s.bank_arrive {
            if let Some(noc) = self.stage_delta(arrive, s.submit) {
                self.stages[Stage::NocRequest as usize].record(noc);
            }
            // The bank stage ends when the request leaves toward the MC
            // (miss owners) or toward the response path (hits and
            // merged requests, whose MSHR wait is bank time).
            if let Some(bank_done) = s.mc_send.or(s.respond) {
                if let Some(bank_latency) = self.stage_delta(bank_done, arrive) {
                    self.stages[Stage::Bank as usize].record(bank_latency);
                    if let Some(h) = self.per_bank.get_mut(s.bank) {
                        h.record(bank_latency);
                    }
                }
            }
        }
        if let (Some(send), Some(resp)) = (s.mc_send, s.mc_respond) {
            if let Some(mc_latency) = self.stage_delta(resp, send) {
                self.stages[Stage::Mc as usize].record(mc_latency);
                if let Some(h) = s.mc.and_then(|m| self.per_mc.get_mut(m)) {
                    h.record(mc_latency);
                }
            }
        }
        if let (Some(resp), Some(fill)) = (s.mc_respond, s.bank_fill) {
            if let Some(fill_latency) = self.stage_delta(fill, resp) {
                self.stages[Stage::NocFill as usize].record(fill_latency);
            }
        }
        if let Some(respond) = s.respond {
            if let Some(deliver) = self.stage_delta(now, respond) {
                self.stages[Stage::Deliver as usize].record(deliver);
            }
        }
        if self.collect_slices {
            if self.slices.len() < SLICE_CAP {
                self.slices.push(RequestSlice {
                    line_addr: s.line_addr,
                    tag: s.tag,
                    pc: s.pc,
                    tile: s.tile,
                    bank: s.bank,
                    mc: s.mc,
                    submit: s.submit,
                    bank_arrive: s.bank_arrive,
                    mc_send: s.mc_send,
                    mc_respond: s.mc_respond,
                    bank_fill: s.bank_fill,
                    respond: s.respond,
                    complete: now,
                });
            } else {
                self.dropped_slices += 1;
            }
        }
        Some(cause)
    }

    /// Aggregate histogram for a lifecycle stage.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    /// Per-bank histograms of the `Bank` stage (queueing + lookup +
    /// MSHR wait), indexed by global bank.
    #[must_use]
    pub fn per_bank(&self) -> &[Histogram] {
        &self.per_bank
    }

    /// Per-controller histograms of the `Mc` stage.
    #[must_use]
    pub fn per_mc(&self) -> &[Histogram] {
        &self.per_mc
    }

    /// Completed lifecycles retained for trace export (empty unless
    /// slice collection was enabled).
    #[must_use]
    pub fn slices(&self) -> &[RequestSlice] {
        &self.slices
    }

    /// Lifecycles discarded after [`SLICE_CAP`] was reached.
    #[must_use]
    pub fn dropped_slices(&self) -> u64 {
        self.dropped_slices
    }

    /// Stamp pairs observed out of order on completion (always 0 on a
    /// healthy event pipeline; a nonzero value means a lifecycle event
    /// fired before one of its predecessors).
    #[must_use]
    pub fn stamp_errors(&self) -> u64 {
        self.stamp_errors
    }

    /// Requests currently holding stamps (in flight).
    #[must_use]
    pub fn tracked_in_flight(&self) -> usize {
        self.stamps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_stamps_record_without_errors() {
        let mut t = MemTelemetry::new(1, 1, false);
        t.on_submit(7, 100, 0x40, 0, 0, 4, 0x8000);
        t.on_bank_arrive(7, 110);
        t.on_respond(7, 130);
        let cause = t.on_complete(7, 140).expect("tracked request");
        assert_eq!(t.stamp_errors(), 0);
        assert_eq!(t.stage(Stage::EndToEnd).count(), 1);
        assert_eq!(t.stage(Stage::EndToEnd).sum(), 40);
        assert_eq!(t.stage(Stage::Bank).sum(), 20);
        // Hit shape: 10 request hop + 20 bank + 10 response hop.
        assert_eq!(cause.pc, 0x8000);
        assert_eq!(cause.blame[Blame::Noc as usize], 20);
        assert_eq!(cause.blame[Blame::L2Hit as usize], 20);
        assert_eq!(cause.total(), 40);
        assert_eq!(cause.dominant(), Blame::Noc);
    }

    #[test]
    fn miss_owner_blame_partitions_end_to_end() {
        let mut t = MemTelemetry::new(1, 1, false);
        t.on_submit(3, 100, 0x40, 0, 0, 4, 0x9000);
        t.on_bank_arrive(3, 110);
        t.on_mc_send(3, 114, 0);
        t.on_mc_respond(3, 164);
        t.on_bank_fill(3, 174);
        t.on_respond(3, 174);
        let cause = t.on_complete(3, 184).expect("tracked request");
        assert_eq!(t.stamp_errors(), 0);
        assert_eq!(cause.blame[Blame::Noc as usize], 30); // 10 + 10 + 10
        assert_eq!(cause.blame[Blame::L2Miss as usize], 4);
        assert_eq!(cause.blame[Blame::Mc as usize], 50);
        assert_eq!(cause.blame[Blame::Mshr as usize], 0);
        assert_eq!(cause.total(), 84);
        assert_eq!(cause.dominant(), Blame::Mc);
    }

    #[test]
    fn queued_then_merged_waiter_blames_mshr_and_miss_wait() {
        let mut t = MemTelemetry::new(1, 1, false);
        t.on_submit(5, 100, 0x40, 0, 0, 4, 0xa000);
        t.on_bank_arrive(5, 110);
        t.on_mshr_grant(5, 150); // parked 40 cycles behind full MSHRs
        t.on_merge(5); // then merged into an in-flight miss
        t.on_respond(5, 180);
        let cause = t.on_complete(5, 190).expect("tracked request");
        assert_eq!(t.stamp_errors(), 0);
        assert_eq!(cause.blame[Blame::Mshr as usize], 40);
        assert_eq!(cause.blame[Blame::L2Miss as usize], 30);
        assert_eq!(cause.blame[Blame::L2Hit as usize], 0);
        assert_eq!(cause.blame[Blame::Noc as usize], 20);
        assert_eq!(cause.total(), 90);
    }

    #[test]
    fn misordered_stamp_pair_reports_error_instead_of_underflowing() {
        let mut t = MemTelemetry::new(1, 1, false);
        // Completion stamped *before* submission: an event-pipeline bug
        // that must surface as a counted error, not a ~u64::MAX sample.
        t.on_submit(9, 200, 0x80, 0, 0, 4, 0);
        t.on_complete(9, 150);
        assert_eq!(t.stamp_errors(), 1);
        assert_eq!(t.stage(Stage::EndToEnd).count(), 0);

        // A misordered interior pair only skips its own stage — once in
        // the blame split and once in the histogram fold.
        let mut t = MemTelemetry::new(1, 1, false);
        t.on_submit(10, 100, 0xc0, 0, 0, 4, 0);
        t.on_bank_arrive(10, 110);
        t.on_respond(10, 105); // before bank_arrive: bank stage invalid
        t.on_complete(10, 140);
        assert_eq!(t.stamp_errors(), 2);
        assert_eq!(t.stage(Stage::EndToEnd).count(), 1);
        assert_eq!(t.stage(Stage::Bank).count(), 0);
    }
}
