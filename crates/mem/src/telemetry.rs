//! Request-lifecycle telemetry for the hierarchy.
//!
//! When enabled (see [`crate::hierarchy::Hierarchy::enable_telemetry`]),
//! the event pipeline stamps each response-bearing request at every
//! stage boundary. On completion the stamps collapse into per-stage
//! latencies folded into log2 histograms — aggregate per
//! [`Stage`], per bank (the `Bank` stage, which includes queueing and
//! MSHR wait), and per memory controller (the `Mc` stage) — and,
//! optionally, into bounded [`RequestSlice`] records for Chrome-trace
//! export.
//!
//! Only requests with `needs_response` are tracked: prefetches and
//! writebacks never complete, so the end-to-end histogram count equals
//! the hierarchy's `completed` counter by construction.

use coyote_telemetry::{Histogram, Stage};

use crate::fastmap::FastMap;

/// Per-request stage timestamps (cycles). `None` fields belong to
/// stages the request skipped (hits and MSHR-merged requests never
/// visit the memory controller).
#[derive(Debug, Clone, Copy, Default)]
struct Stamps {
    submit: u64,
    bank_arrive: Option<u64>,
    mc_send: Option<u64>,
    mc_respond: Option<u64>,
    bank_fill: Option<u64>,
    respond: Option<u64>,
    bank: usize,
    mc: Option<usize>,
    tile: usize,
    line_addr: u64,
    tag: u64,
}

/// One completed request's lifecycle, retained for Chrome-trace export.
#[derive(Debug, Clone, Copy)]
pub struct RequestSlice {
    /// Line-aligned address.
    pub line_addr: u64,
    /// Caller tag from the originating request.
    pub tag: u64,
    /// Issuing tile.
    pub tile: usize,
    /// Serving bank (global index).
    pub bank: usize,
    /// Serving memory controller, for miss owners.
    pub mc: Option<usize>,
    /// Submission cycle.
    pub submit: u64,
    /// Arrival at the bank.
    pub bank_arrive: Option<u64>,
    /// Departure toward the memory controller (miss owners).
    pub mc_send: Option<u64>,
    /// Memory-controller response (miss owners).
    pub mc_respond: Option<u64>,
    /// Line installed at the bank (miss owners).
    pub bank_fill: Option<u64>,
    /// Response departure toward the requesting tile.
    pub respond: Option<u64>,
    /// Completion cycle.
    pub complete: u64,
}

/// Lifecycle stamping state and the histograms it feeds.
#[derive(Debug, Clone)]
pub struct MemTelemetry {
    stamps: FastMap<Stamps>,
    stages: [Histogram; Stage::ALL.len()],
    per_bank: Vec<Histogram>,
    per_mc: Vec<Histogram>,
    slices: Vec<RequestSlice>,
    collect_slices: bool,
    dropped_slices: u64,
    stamp_errors: u64,
}

/// Cap on retained [`RequestSlice`]s: enough for a detailed Perfetto
/// view without unbounded memory on long runs. Overflow increments
/// [`MemTelemetry::dropped_slices`] instead of allocating.
pub const SLICE_CAP: usize = 100_000;

impl MemTelemetry {
    /// Telemetry for a hierarchy with the given bank/controller counts.
    /// `collect_slices` additionally retains up to [`SLICE_CAP`]
    /// completed lifecycles for Chrome-trace export.
    #[must_use]
    pub fn new(banks: usize, mcs: usize, collect_slices: bool) -> MemTelemetry {
        MemTelemetry {
            stamps: FastMap::default(),
            stages: std::array::from_fn(|_| Histogram::new()),
            per_bank: vec![Histogram::new(); banks],
            per_mc: vec![Histogram::new(); mcs],
            slices: Vec::new(),
            collect_slices,
            dropped_slices: 0,
            stamp_errors: 0,
        }
    }

    pub(crate) fn on_submit(
        &mut self,
        id: u64,
        now: u64,
        line_addr: u64,
        tile: usize,
        bank: usize,
        tag: u64,
    ) {
        self.stamps.insert(
            id,
            Stamps {
                submit: now,
                line_addr,
                tile,
                bank,
                tag,
                ..Stamps::default()
            },
        );
    }

    pub(crate) fn on_bank_arrive(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.bank_arrive = Some(now);
        }
    }

    pub(crate) fn on_mc_send(&mut self, id: u64, now: u64, mc: usize) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.mc_send = Some(now);
            s.mc = Some(mc);
        }
    }

    pub(crate) fn on_mc_respond(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.mc_respond = Some(now);
        }
    }

    pub(crate) fn on_bank_fill(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.bank_fill = Some(now);
        }
    }

    pub(crate) fn on_respond(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.respond = Some(now);
        }
    }

    /// A stage delta from an ordered stamp pair. A pair stamped out of
    /// order is an event-pipeline bug: rather than underflowing (and
    /// poisoning a histogram with a near-`u64::MAX` sample), it
    /// increments [`MemTelemetry::stamp_errors`] and records nothing.
    fn stage_delta(&mut self, later: u64, earlier: u64) -> Option<u64> {
        match later.checked_sub(earlier) {
            Some(delta) => Some(delta),
            None => {
                self.stamp_errors += 1;
                None
            }
        }
    }

    pub(crate) fn on_complete(&mut self, id: u64, now: u64) {
        let Some(s) = self.stamps.remove(&id) else {
            return;
        };
        if let Some(e2e) = self.stage_delta(now, s.submit) {
            self.stages[Stage::EndToEnd as usize].record(e2e);
        }
        if let Some(arrive) = s.bank_arrive {
            if let Some(noc) = self.stage_delta(arrive, s.submit) {
                self.stages[Stage::NocRequest as usize].record(noc);
            }
            // The bank stage ends when the request leaves toward the MC
            // (miss owners) or toward the response path (hits and
            // merged requests, whose MSHR wait is bank time).
            if let Some(bank_done) = s.mc_send.or(s.respond) {
                if let Some(bank_latency) = self.stage_delta(bank_done, arrive) {
                    self.stages[Stage::Bank as usize].record(bank_latency);
                    if let Some(h) = self.per_bank.get_mut(s.bank) {
                        h.record(bank_latency);
                    }
                }
            }
        }
        if let (Some(send), Some(resp)) = (s.mc_send, s.mc_respond) {
            if let Some(mc_latency) = self.stage_delta(resp, send) {
                self.stages[Stage::Mc as usize].record(mc_latency);
                if let Some(h) = s.mc.and_then(|m| self.per_mc.get_mut(m)) {
                    h.record(mc_latency);
                }
            }
        }
        if let (Some(resp), Some(fill)) = (s.mc_respond, s.bank_fill) {
            if let Some(fill_latency) = self.stage_delta(fill, resp) {
                self.stages[Stage::NocFill as usize].record(fill_latency);
            }
        }
        if let Some(respond) = s.respond {
            if let Some(deliver) = self.stage_delta(now, respond) {
                self.stages[Stage::Deliver as usize].record(deliver);
            }
        }
        if self.collect_slices {
            if self.slices.len() < SLICE_CAP {
                self.slices.push(RequestSlice {
                    line_addr: s.line_addr,
                    tag: s.tag,
                    tile: s.tile,
                    bank: s.bank,
                    mc: s.mc,
                    submit: s.submit,
                    bank_arrive: s.bank_arrive,
                    mc_send: s.mc_send,
                    mc_respond: s.mc_respond,
                    bank_fill: s.bank_fill,
                    respond: s.respond,
                    complete: now,
                });
            } else {
                self.dropped_slices += 1;
            }
        }
    }

    /// Aggregate histogram for a lifecycle stage.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    /// Per-bank histograms of the `Bank` stage (queueing + lookup +
    /// MSHR wait), indexed by global bank.
    #[must_use]
    pub fn per_bank(&self) -> &[Histogram] {
        &self.per_bank
    }

    /// Per-controller histograms of the `Mc` stage.
    #[must_use]
    pub fn per_mc(&self) -> &[Histogram] {
        &self.per_mc
    }

    /// Completed lifecycles retained for trace export (empty unless
    /// slice collection was enabled).
    #[must_use]
    pub fn slices(&self) -> &[RequestSlice] {
        &self.slices
    }

    /// Lifecycles discarded after [`SLICE_CAP`] was reached.
    #[must_use]
    pub fn dropped_slices(&self) -> u64 {
        self.dropped_slices
    }

    /// Stamp pairs observed out of order on completion (always 0 on a
    /// healthy event pipeline; a nonzero value means a lifecycle event
    /// fired before one of its predecessors).
    #[must_use]
    pub fn stamp_errors(&self) -> u64 {
        self.stamp_errors
    }

    /// Requests currently holding stamps (in flight).
    #[must_use]
    pub fn tracked_in_flight(&self) -> usize {
        self.stamps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_stamps_record_without_errors() {
        let mut t = MemTelemetry::new(1, 1, false);
        t.on_submit(7, 100, 0x40, 0, 0, 4);
        t.on_bank_arrive(7, 110);
        t.on_respond(7, 130);
        t.on_complete(7, 140);
        assert_eq!(t.stamp_errors(), 0);
        assert_eq!(t.stage(Stage::EndToEnd).count(), 1);
        assert_eq!(t.stage(Stage::EndToEnd).sum(), 40);
        assert_eq!(t.stage(Stage::Bank).sum(), 20);
    }

    #[test]
    fn misordered_stamp_pair_reports_error_instead_of_underflowing() {
        let mut t = MemTelemetry::new(1, 1, false);
        // Completion stamped *before* submission: an event-pipeline bug
        // that must surface as a counted error, not a ~u64::MAX sample.
        t.on_submit(9, 200, 0x80, 0, 0, 4);
        t.on_complete(9, 150);
        assert_eq!(t.stamp_errors(), 1);
        assert_eq!(t.stage(Stage::EndToEnd).count(), 0);

        // A misordered interior pair only skips its own stage.
        let mut t = MemTelemetry::new(1, 1, false);
        t.on_submit(10, 100, 0xc0, 0, 0, 4);
        t.on_bank_arrive(10, 110);
        t.on_respond(10, 105); // before bank_arrive: bank stage invalid
        t.on_complete(10, 140);
        assert_eq!(t.stamp_errors(), 1);
        assert_eq!(t.stage(Stage::EndToEnd).count(), 1);
        assert_eq!(t.stage(Stage::Bank).count(), 0);
    }
}
