//! Request-lifecycle telemetry for the hierarchy.
//!
//! When enabled (see [`crate::hierarchy::Hierarchy::enable_telemetry`]),
//! the event pipeline stamps each response-bearing request at every
//! stage boundary. On completion the stamps collapse into per-stage
//! latencies folded into log2 histograms — aggregate per
//! [`Stage`], per bank (the `Bank` stage, which includes queueing and
//! MSHR wait), and per memory controller (the `Mc` stage) — and,
//! optionally, into bounded [`RequestSlice`] records for Chrome-trace
//! export.
//!
//! Only requests with `needs_response` are tracked: prefetches and
//! writebacks never complete, so the end-to-end histogram count equals
//! the hierarchy's `completed` counter by construction.

use coyote_telemetry::{Histogram, Stage};

use crate::fastmap::FastMap;

/// Per-request stage timestamps (cycles). `None` fields belong to
/// stages the request skipped (hits and MSHR-merged requests never
/// visit the memory controller).
#[derive(Debug, Clone, Copy, Default)]
struct Stamps {
    submit: u64,
    bank_arrive: Option<u64>,
    mc_send: Option<u64>,
    mc_respond: Option<u64>,
    bank_fill: Option<u64>,
    respond: Option<u64>,
    bank: usize,
    mc: Option<usize>,
    tile: usize,
    line_addr: u64,
    tag: u64,
}

/// One completed request's lifecycle, retained for Chrome-trace export.
#[derive(Debug, Clone, Copy)]
pub struct RequestSlice {
    /// Line-aligned address.
    pub line_addr: u64,
    /// Caller tag from the originating request.
    pub tag: u64,
    /// Issuing tile.
    pub tile: usize,
    /// Serving bank (global index).
    pub bank: usize,
    /// Serving memory controller, for miss owners.
    pub mc: Option<usize>,
    /// Submission cycle.
    pub submit: u64,
    /// Arrival at the bank.
    pub bank_arrive: Option<u64>,
    /// Departure toward the memory controller (miss owners).
    pub mc_send: Option<u64>,
    /// Memory-controller response (miss owners).
    pub mc_respond: Option<u64>,
    /// Line installed at the bank (miss owners).
    pub bank_fill: Option<u64>,
    /// Response departure toward the requesting tile.
    pub respond: Option<u64>,
    /// Completion cycle.
    pub complete: u64,
}

/// Lifecycle stamping state and the histograms it feeds.
#[derive(Debug, Clone)]
pub struct MemTelemetry {
    stamps: FastMap<Stamps>,
    stages: [Histogram; Stage::ALL.len()],
    per_bank: Vec<Histogram>,
    per_mc: Vec<Histogram>,
    slices: Vec<RequestSlice>,
    collect_slices: bool,
    dropped_slices: u64,
}

/// Cap on retained [`RequestSlice`]s: enough for a detailed Perfetto
/// view without unbounded memory on long runs. Overflow increments
/// [`MemTelemetry::dropped_slices`] instead of allocating.
pub const SLICE_CAP: usize = 100_000;

impl MemTelemetry {
    /// Telemetry for a hierarchy with the given bank/controller counts.
    /// `collect_slices` additionally retains up to [`SLICE_CAP`]
    /// completed lifecycles for Chrome-trace export.
    #[must_use]
    pub fn new(banks: usize, mcs: usize, collect_slices: bool) -> MemTelemetry {
        MemTelemetry {
            stamps: FastMap::default(),
            stages: std::array::from_fn(|_| Histogram::new()),
            per_bank: vec![Histogram::new(); banks],
            per_mc: vec![Histogram::new(); mcs],
            slices: Vec::new(),
            collect_slices,
            dropped_slices: 0,
        }
    }

    pub(crate) fn on_submit(
        &mut self,
        id: u64,
        now: u64,
        line_addr: u64,
        tile: usize,
        bank: usize,
        tag: u64,
    ) {
        self.stamps.insert(
            id,
            Stamps {
                submit: now,
                line_addr,
                tile,
                bank,
                tag,
                ..Stamps::default()
            },
        );
    }

    pub(crate) fn on_bank_arrive(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.bank_arrive = Some(now);
        }
    }

    pub(crate) fn on_mc_send(&mut self, id: u64, now: u64, mc: usize) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.mc_send = Some(now);
            s.mc = Some(mc);
        }
    }

    pub(crate) fn on_mc_respond(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.mc_respond = Some(now);
        }
    }

    pub(crate) fn on_bank_fill(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.bank_fill = Some(now);
        }
    }

    pub(crate) fn on_respond(&mut self, id: u64, now: u64) {
        if let Some(s) = self.stamps.get_mut(&id) {
            s.respond = Some(now);
        }
    }

    pub(crate) fn on_complete(&mut self, id: u64, now: u64) {
        let Some(s) = self.stamps.remove(&id) else {
            return;
        };
        let record = |hist: &mut [Histogram], stage: Stage, value: u64| {
            hist[stage as usize].record(value);
        };
        record(&mut self.stages, Stage::EndToEnd, now - s.submit);
        if let Some(arrive) = s.bank_arrive {
            record(&mut self.stages, Stage::NocRequest, arrive - s.submit);
            // The bank stage ends when the request leaves toward the MC
            // (miss owners) or toward the response path (hits and
            // merged requests, whose MSHR wait is bank time).
            if let Some(bank_done) = s.mc_send.or(s.respond) {
                let bank_latency = bank_done.saturating_sub(arrive);
                record(&mut self.stages, Stage::Bank, bank_latency);
                if let Some(h) = self.per_bank.get_mut(s.bank) {
                    h.record(bank_latency);
                }
            }
        }
        if let (Some(send), Some(resp)) = (s.mc_send, s.mc_respond) {
            record(&mut self.stages, Stage::Mc, resp - send);
            if let Some(h) = s.mc.and_then(|m| self.per_mc.get_mut(m)) {
                h.record(resp - send);
            }
        }
        if let (Some(resp), Some(fill)) = (s.mc_respond, s.bank_fill) {
            record(&mut self.stages, Stage::NocFill, fill - resp);
        }
        if let Some(respond) = s.respond {
            record(&mut self.stages, Stage::Deliver, now - respond);
        }
        if self.collect_slices {
            if self.slices.len() < SLICE_CAP {
                self.slices.push(RequestSlice {
                    line_addr: s.line_addr,
                    tag: s.tag,
                    tile: s.tile,
                    bank: s.bank,
                    mc: s.mc,
                    submit: s.submit,
                    bank_arrive: s.bank_arrive,
                    mc_send: s.mc_send,
                    mc_respond: s.mc_respond,
                    bank_fill: s.bank_fill,
                    respond: s.respond,
                    complete: now,
                });
            } else {
                self.dropped_slices += 1;
            }
        }
    }

    /// Aggregate histogram for a lifecycle stage.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    /// Per-bank histograms of the `Bank` stage (queueing + lookup +
    /// MSHR wait), indexed by global bank.
    #[must_use]
    pub fn per_bank(&self) -> &[Histogram] {
        &self.per_bank
    }

    /// Per-controller histograms of the `Mc` stage.
    #[must_use]
    pub fn per_mc(&self) -> &[Histogram] {
        &self.per_mc
    }

    /// Completed lifecycles retained for trace export (empty unless
    /// slice collection was enabled).
    #[must_use]
    pub fn slices(&self) -> &[RequestSlice] {
        &self.slices
    }

    /// Lifecycles discarded after [`SLICE_CAP`] was reached.
    #[must_use]
    pub fn dropped_slices(&self) -> u64 {
        self.dropped_slices
    }

    /// Requests currently holding stamps (in flight).
    #[must_use]
    pub fn tracked_in_flight(&self) -> usize {
        self.stamps.len()
    }
}
