//! Data-mapping policies: which L2 bank holds a memory block.
//!
//! The paper implements "two different well-known data mapping policies
//! [...] that use different bits of the address to identify the L2 bank
//! that holds a certain memory block: page-to-bank and set-interleaving".
//!
//! Both policies also yield a *bank-local line index* so each bank's tag
//! array enumerates its own lines densely (every set usable regardless
//! of the bank count).

/// Bank-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingPolicy {
    /// Consecutive pages round-robin across banks; lines within a page
    /// stay together. Good for page-grained locality, prone to bank
    /// camping under strided access.
    PageToBank {
        /// Page size in bytes (power of two).
        page_bytes: u64,
    },
    /// Consecutive lines round-robin across banks. Spreads any stream
    /// evenly; sacrifices page locality.
    SetInterleave,
}

impl MappingPolicy {
    /// The conventional page-to-bank policy with 4 KiB pages.
    #[must_use]
    pub fn page_to_bank() -> MappingPolicy {
        MappingPolicy::PageToBank { page_bytes: 4096 }
    }

    /// Maps a line address onto `(bank, bank-local line index)`.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0` or `line_bytes` is not a power of two
    /// (validated at configuration time).
    #[must_use]
    pub fn map(&self, line_addr: u64, line_bytes: u64, banks: u64) -> (usize, u64) {
        assert!(banks > 0, "bank count must be positive");
        assert!(line_bytes.is_power_of_two(), "line size must be 2^n");
        match *self {
            MappingPolicy::PageToBank { page_bytes } => {
                let lines_per_page = page_bytes / line_bytes;
                let page = line_addr / page_bytes;
                let bank = page % banks;
                let local = (page / banks) * lines_per_page + (line_addr % page_bytes) / line_bytes;
                (bank as usize, local)
            }
            MappingPolicy::SetInterleave => {
                let line = line_addr / line_bytes;
                ((line % banks) as usize, line / banks)
            }
        }
    }

    /// Short name used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            MappingPolicy::PageToBank { .. } => "page-to-bank",
            MappingPolicy::SetInterleave => "set-interleave",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_interleave_round_robins_lines() {
        let p = MappingPolicy::SetInterleave;
        assert_eq!(p.map(0, 64, 4), (0, 0));
        assert_eq!(p.map(64, 64, 4), (1, 0));
        assert_eq!(p.map(128, 64, 4), (2, 0));
        assert_eq!(p.map(192, 64, 4), (3, 0));
        assert_eq!(p.map(256, 64, 4), (0, 1));
    }

    #[test]
    fn page_to_bank_keeps_pages_together() {
        let p = MappingPolicy::page_to_bank();
        let (bank0, _) = p.map(0, 64, 4);
        for line in (0..4096).step_by(64) {
            assert_eq!(
                p.map(line, 64, 4).0,
                bank0,
                "line {line} left its page's bank"
            );
        }
        // Next page moves to the next bank.
        assert_eq!(p.map(4096, 64, 4).0, (bank0 + 1) % 4);
    }

    #[test]
    fn local_indices_are_dense_per_bank() {
        // For both policies, the local indices of the lines mapping to a
        // given bank must enumerate 0..n without gaps.
        for policy in [MappingPolicy::SetInterleave, MappingPolicy::page_to_bank()] {
            let banks = 4u64;
            let mut seen: Vec<Vec<u64>> = vec![Vec::new(); banks as usize];
            for line in (0..(64 * 1024)).step_by(64) {
                let (bank, local) = policy.map(line, 64, banks);
                seen[bank].push(local);
            }
            for (bank, locals) in seen.iter_mut().enumerate() {
                locals.sort_unstable();
                for (i, &local) in locals.iter().enumerate() {
                    assert_eq!(local, i as u64, "{} bank {bank} gap", policy.name());
                }
            }
        }
    }

    #[test]
    fn single_bank_degenerates_to_identity() {
        let p = MappingPolicy::SetInterleave;
        assert_eq!(p.map(64 * 17, 64, 1), (0, 17));
        let p = MappingPolicy::page_to_bank();
        assert_eq!(p.map(64 * 17, 64, 1), (0, 17));
    }

    #[test]
    fn strided_page_access_camps_one_bank_under_page_to_bank() {
        // A page-strided walk (the pathological case the paper's policy
        // comparison is about) hits a single bank with page-to-bank but
        // spreads with set-interleaving.
        let banks = 8u64;
        let stride = 4096 * banks; // one page on the same bank each time
        let p2b = MappingPolicy::page_to_bank();
        let sil = MappingPolicy::SetInterleave;
        let first = p2b.map(0, 64, banks).0;
        let mut sil_banks = std::collections::BTreeSet::new();
        for i in 0..banks {
            let addr = i * stride;
            assert_eq!(p2b.map(addr, 64, banks).0, first);
            sil_banks.insert(sil.map(addr + i * 64, 64, banks).0);
        }
        assert!(sil_banks.len() > 1);
    }
}
