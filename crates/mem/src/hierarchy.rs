//! The event-driven memory hierarchy below the L1s.
//!
//! Reproduces the paper's Sparta-modelled half of Coyote: L1 misses are
//! submitted as [`Request`]s, travel over the NoC to an L2 bank chosen
//! by the [`MappingPolicy`], possibly on to a memory controller, and
//! come back as [`Completion`]s that the orchestrator routes to the
//! issuing core.
//!
//! Request pipeline (each `→` is an event):
//!
//! ```text
//! submit → [NoC] → bank lookup ─ hit ──────────→ [NoC] → completion
//!                      │ miss (MSHR, merge, queue)
//!                      └→ [NoC] → MC (queue+latency) → [NoC] → fill → [NoC] → completion
//! ```

use std::fmt;

use crate::event::{content_rank, mix64, Domain, EventQueue};
use crate::fastmap::FastMap;
use crate::l2::{BankStats, L2Bank, L2Config, Lookup};
use crate::mapping::MappingPolicy;
use crate::mc::{McConfig, McStats, MemoryController};
use crate::noc::{Noc, NocModel, NocNode, NocStats};
use crate::telemetry::MemTelemetry;

/// Whether the L2 is shared across tiles or private per tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Sharing {
    /// All banks serve all tiles; a request may cross the NoC to a
    /// remote tile's bank.
    Shared,
    /// A tile's requests are served only by its own banks.
    Private,
}

/// Full hierarchy configuration.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// Number of compute tiles.
    pub tiles: usize,
    /// L2 banks per tile.
    pub banks_per_tile: usize,
    /// Per-bank L2 geometry and timing.
    pub l2: L2Config,
    /// Shared or tile-private L2.
    pub sharing: L2Sharing,
    /// Bank-selection policy.
    pub mapping: MappingPolicy,
    /// NoC model.
    pub noc: NocModel,
    /// Memory controllers.
    pub mc: McConfig,
    /// Next-line prefetch degree at the L2 banks: on a demand miss,
    /// speculatively fetch this many sequential lines (0 = off, the
    /// paper's baseline; prefetching is the paper's named future work).
    pub prefetch_degree: usize,
    /// Schedule-perturbation seed for the determinism audit (0 = the
    /// canonical order). A nonzero seed permutes the firing order of
    /// same-cycle events in *different* arbitration domains — a legal
    /// reordering under the event contract (see [`crate::event`]) that
    /// must not change any simulation observable. `coyote-audit --race`
    /// runs a workload under several seeds and diffs the results.
    pub perturb_seed: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            tiles: 1,
            banks_per_tile: 4,
            l2: L2Config::default(),
            sharing: L2Sharing::Shared,
            mapping: MappingPolicy::SetInterleave,
            noc: NocModel::default(),
            mc: McConfig::default(),
            prefetch_degree: 0,
            perturb_seed: 0,
        }
    }
}

impl HierarchyConfig {
    /// Validates the composite configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.tiles == 0 || self.banks_per_tile == 0 {
            return Err("tiles and banks_per_tile must be positive".to_owned());
        }
        self.l2.validate()?;
        self.mc.validate()?;
        Ok(())
    }

    /// Total bank count.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        self.tiles * self.banks_per_tile
    }
}

/// An L1 miss entering the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Line-aligned address.
    pub line_addr: u64,
    /// Issuing tile.
    pub tile: usize,
    /// `false` for fire-and-forget writebacks.
    pub needs_response: bool,
    /// Opaque caller tag, returned in the [`Completion`].
    pub tag: u64,
    /// Program counter of the issuing instruction (0 for synthetic
    /// requests: prefetches and L2 victim writebacks). Carried on the
    /// causal record so stall cycles can be charged back to code.
    pub pc: u64,
}

/// A serviced miss leaving the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The tag from the originating [`Request`].
    pub tag: u64,
    /// The serviced line.
    pub line_addr: u64,
    /// The tile that issued the request.
    pub tile: usize,
    /// Causal record — issuing PC plus per-stage blame split — when
    /// telemetry is enabled; `None` otherwise.
    pub cause: Option<coyote_telemetry::RequestCause>,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Request `id` arrives at its bank.
    BankArrive(u64),
    /// Request `id` leaves its bank toward the MC.
    McSend(u64),
    /// Request `id`'s data leaves the MC back toward the bank.
    McRespond(u64),
    /// Request `id`'s line is installed in the bank.
    BankFill(u64),
    /// Request `id`'s response reaches the requesting tile.
    Complete(u64),
}

impl Ev {
    fn name(self) -> &'static str {
        match self {
            Ev::BankArrive(_) => "bank-arrive",
            Ev::McSend(_) => "mc-send",
            Ev::McRespond(_) => "mc-respond",
            Ev::BankFill(_) => "bank-fill",
            Ev::Complete(_) => "complete",
        }
    }

    fn id(self) -> u64 {
        match self {
            Ev::BankArrive(id)
            | Ev::McSend(id)
            | Ev::McRespond(id)
            | Ev::BankFill(id)
            | Ev::Complete(id) => id,
        }
    }
}

/// One fired event, captured when the event log is enabled (the
/// schedule-race detector uses the log to name the first divergent
/// event pair between two runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Cycle the event fired at.
    pub cycle: u64,
    /// Event kind (`bank-arrive`, `mc-send`, `mc-respond`, `bank-fill`,
    /// `complete`).
    pub kind: &'static str,
    /// The request's line address.
    pub line_addr: u64,
    /// The request's caller tag (0 for prefetches and writebacks).
    pub tag: u64,
    /// Serving bank (global index).
    pub bank: usize,
    /// Issuing tile.
    pub tile: usize,
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {} {} line {:#x} tag {} bank {} tile {}",
            self.cycle, self.kind, self.line_addr, self.tag, self.bank, self.tile
        )
    }
}

/// Canonical same-cycle rank for an event: a fixed kind priority in the
/// top bits (within a bank, fills drain before fresh arrivals) and a
/// content hash below, so arbitration between colliding events depends
/// only on the requests themselves — never on the incidental order the
/// scheduling handlers ran in.
fn ev_rank(kind_priority: u64, kind_code: u64, state: &ReqState) -> u64 {
    let flags =
        u64::from(state.is_prefetch) | (u64::from(state.is_l2_writeback) << 1) | (kind_code << 2);
    (kind_priority << 61) | (content_rank(flags, state.req.line_addr, state.req.tag) >> 3)
}

#[derive(Debug, Clone)]
struct ReqState {
    req: Request,
    bank: usize,
    local_idx: u64,
    /// Synthesized L2-victim writebacks carry no MSHR and no response.
    is_l2_writeback: bool,
    /// Speculative next-line prefetch: fills quietly, never responds.
    is_prefetch: bool,
}

/// Aggregated hierarchy statistics.
#[derive(Debug, Clone, Default)]
pub struct HierarchyStats {
    /// Per-bank counters.
    pub banks: Vec<BankStats>,
    /// NoC counters.
    pub noc: NocStats,
    /// Per-MC counters.
    pub mcs: Vec<McStats>,
    /// Requests submitted.
    pub submitted: u64,
    /// Completions delivered.
    pub completed: u64,
    /// Misses merged into an already-in-flight fill of the same line.
    pub merged: u64,
}

impl HierarchyStats {
    /// Total L2 hits across banks.
    #[must_use]
    pub fn l2_hits(&self) -> u64 {
        self.banks.iter().map(|b| b.hits).sum()
    }

    /// Total L2 misses across banks.
    #[must_use]
    pub fn l2_misses(&self) -> u64 {
        self.banks.iter().map(|b| b.misses).sum()
    }

    /// L2 miss rate over all banks.
    #[must_use]
    pub fn l2_miss_rate(&self) -> f64 {
        let total = self.l2_hits() + self.l2_misses();
        if total == 0 {
            0.0
        } else {
            self.l2_misses() as f64 / total as f64
        }
    }
}

/// The event-driven hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    banks: Vec<L2Bank>,
    /// Per-bank: line → request ids merged onto one in-flight fill.
    bank_pending: Vec<FastMap<Vec<u64>>>,
    noc: Noc,
    mcs: Vec<MemoryController>,
    events: EventQueue<Ev>,
    states: FastMap<ReqState>,
    next_id: u64,
    completions_out: Vec<Completion>,
    submitted: u64,
    completed: u64,
    merged: u64,
    /// Lifecycle stamping, boxed so the disabled path costs one
    /// null-check per event and no per-request allocation.
    telemetry: Option<Box<MemTelemetry>>,
    /// Fired-event capture for the schedule-race detector (off by
    /// default; see [`Hierarchy::set_event_log`]).
    event_log: Option<Vec<EventRecord>>,
    /// Deliberately drain same-cycle events in hash-map order — an
    /// injected schedule race used to prove the race detector fires
    /// (see [`Hierarchy::debug_inject_unordered_drain`]).
    inject_unordered_drain: bool,
}

impl Hierarchy {
    /// Builds the hierarchy.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for inconsistent
    /// configurations.
    pub fn new(config: HierarchyConfig) -> Result<Hierarchy, String> {
        config.validate()?;
        let total_banks = config.total_banks();
        Ok(Hierarchy {
            config,
            banks: (0..total_banks).map(|_| L2Bank::new(config.l2)).collect(),
            bank_pending: vec![FastMap::default(); total_banks],
            noc: Noc::new(config.noc, config.tiles, config.mc.count),
            mcs: (0..config.mc.count)
                .map(|_| MemoryController::new(config.mc))
                .collect(),
            events: EventQueue::with_perturbation(config.perturb_seed),
            states: FastMap::default(),
            next_id: 0,
            completions_out: Vec::new(),
            submitted: 0,
            completed: 0,
            merged: 0,
            telemetry: None,
            event_log: None,
            inject_unordered_drain: false,
        })
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Turns on request-lifecycle stamping. With `collect_slices`,
    /// completed lifecycles are additionally retained (bounded) for
    /// Chrome-trace export.
    pub fn enable_telemetry(&mut self, collect_slices: bool) {
        self.telemetry = Some(Box::new(MemTelemetry::new(
            self.config.total_banks(),
            self.config.mc.count,
            collect_slices,
        )));
    }

    /// The lifecycle telemetry, if enabled.
    #[must_use]
    pub fn telemetry(&self) -> Option<&MemTelemetry> {
        self.telemetry.as_deref()
    }

    /// Outstanding MSHR entries per bank (instantaneous gauge).
    #[must_use]
    pub fn mshr_occupancy(&self) -> Vec<usize> {
        self.banks.iter().map(L2Bank::in_flight).collect()
    }

    /// Requests parked waiting for an MSHR, summed over banks.
    #[must_use]
    pub fn queued_requests(&self) -> usize {
        self.banks.iter().map(L2Bank::waiting_len).sum()
    }

    /// Requests in flight anywhere in the hierarchy (including
    /// prefetches and writebacks).
    #[must_use]
    pub fn in_flight_requests(&self) -> usize {
        self.states.len()
    }

    /// Memory-controller channels busy at `now`, summed over
    /// controllers.
    #[must_use]
    pub fn mc_busy_channels(&self, now: u64) -> usize {
        self.mcs.iter().map(|m| m.busy_channels(now)).sum()
    }

    /// Diagnostic lookup: the home bank and issuing PC of the oldest
    /// in-flight request for `line_addr`, if any. Deterministic — the
    /// map scan feeds a minimum over request ids, so hash order cannot
    /// show through. Deadlock reports use this to name the MSHR a
    /// stalled core's waiting line is parked in.
    #[must_use]
    pub fn in_flight_line_info(&self, line_addr: u64) -> Option<(usize, u64)> {
        self.states
            .iter()
            .filter(|(_, state)| state.req.line_addr == line_addr)
            .min_by_key(|(&id, _)| id)
            .map(|(_, state)| (state.bank, state.req.pc))
    }

    /// Which tile hosts a global bank index.
    fn bank_tile(&self, bank: usize) -> usize {
        bank / self.config.banks_per_tile
    }

    /// Selects the bank and bank-local index for a request.
    fn route(&self, req: &Request) -> (usize, u64) {
        let line_bytes = self.config.l2.line_bytes;
        match self.config.sharing {
            L2Sharing::Shared => {
                let banks = self.config.total_banks() as u64;
                let (bank, local) = self.config.mapping.map(req.line_addr, line_bytes, banks);
                (bank, local)
            }
            L2Sharing::Private => {
                let banks = self.config.banks_per_tile as u64;
                let (local_bank, local) = self.config.mapping.map(req.line_addr, line_bytes, banks);
                (req.tile * self.config.banks_per_tile + local_bank, local)
            }
        }
    }

    /// Submits an L1 miss at the current cycle.
    pub fn submit(&mut self, now: u64, req: Request) {
        self.submitted += 1;
        let (bank, local_idx) = self.route(&req);
        let id = self.next_id;
        self.next_id += 1;
        self.states.insert(
            id,
            ReqState {
                req,
                bank,
                local_idx,
                is_l2_writeback: false,
                is_prefetch: false,
            },
        );
        if req.needs_response {
            if let Some(t) = &mut self.telemetry {
                t.on_submit(id, now, req.line_addr, req.tile, bank, req.tag, req.pc);
            }
        }
        let latency = self
            .noc
            .traverse_request(NocNode::Tile(req.tile), NocNode::Tile(self.bank_tile(bank)));
        self.schedule_ev(now + latency, Ev::BankArrive(id));
    }

    /// Schedules a pipeline event under the arbitration contract: the
    /// domain names the component the handler mutates, and the rank is
    /// derived from the request content (see [`ev_rank`]).
    fn schedule_ev(&mut self, time: u64, ev: Ev) {
        let state = &self.states[&ev.id()];
        let (domain, rank) = match ev {
            // Within a bank, fills (priority 0) drain before arrivals
            // (priority 1): a same-cycle fill+arrival to one line is a
            // hit, canonically.
            Ev::BankArrive(_) => (Domain::Bank(state.bank), ev_rank(1, 0, state)),
            Ev::BankFill(_) => (Domain::Bank(state.bank), ev_rank(0, 3, state)),
            Ev::McSend(_) => {
                let mc = self
                    .config
                    .mc
                    .mc_for(state.req.line_addr, self.config.l2.line_bytes);
                (Domain::Mc(mc), ev_rank(0, 1, state))
            }
            // The MC-response hop mutates no arbitrated component (its
            // side effects are commutative NoC counters), so it is free
            // to reorder against everything.
            Ev::McRespond(_) => (Domain::Free, ev_rank(0, 2, state)),
            Ev::Complete(_) => (Domain::Tile(state.req.tile), ev_rank(0, 4, state)),
        };
        self.events.schedule_arb(time, domain, rank, ev);
    }

    /// Enables or disables fired-event capture. The log is consumed
    /// with [`Hierarchy::take_event_log`]; the race detector uses it to
    /// report the first divergent event pair between two runs.
    pub fn set_event_log(&mut self, enabled: bool) {
        self.event_log = enabled.then(Vec::new);
    }

    /// Takes the captured event log (empty when logging is off).
    pub fn take_event_log(&mut self) -> Vec<EventRecord> {
        match &mut self.event_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Test hook: deliberately drains same-cycle events in hash-map
    /// iteration order instead of the arbitration order — the classic
    /// schedule race this audit exists to catch (std's `HashMap` would
    /// produce a different drain order per process; here the order
    /// depends on the perturbation seed so the detector's self-test is
    /// deterministic). Never enable outside tests.
    #[doc(hidden)]
    pub fn debug_inject_unordered_drain(&mut self) {
        self.inject_unordered_drain = true;
    }

    /// Advances the model to `now`, processing every event due at or
    /// before it; serviced requests are appended to `completions`.
    ///
    /// Call this every cycle (as the orchestrator does) or step `now`
    /// through [`Hierarchy::next_event_time`]: handler-relative delays
    /// are measured from `now`, so skipping past several distinct event
    /// times in one call would stretch modelled latencies.
    pub fn advance(&mut self, now: u64, completions: &mut Vec<Completion>) {
        if self.inject_unordered_drain {
            self.advance_unordered(now);
        } else {
            while let Some(ev) = self.events.pop_due(now) {
                self.log_event(now, ev);
                self.handle(now, ev);
            }
        }
        completions.append(&mut self.completions_out);
    }

    /// The injected schedule race (see
    /// [`Hierarchy::debug_inject_unordered_drain`]): due events are
    /// parked in a hash map and processed in its iteration order,
    /// discarding the arbitration contract exactly the way an
    /// accidental `HashMap`-keyed event buffer would.
    fn advance_unordered(&mut self, now: u64) {
        loop {
            // audit:allow(hashmap-iter): this *is* the deliberate race.
            let mut parked: FastMap<Ev> = FastMap::default();
            let mut i = 0u64;
            while let Some(ev) = self.events.pop_due(now) {
                // Mixing the perturbation seed into the key models the
                // per-process hasher randomization of std's HashMap
                // while keeping the self-test deterministic.
                parked.insert(mix64(self.events.perturb_seed() ^ i), ev);
                i += 1;
            }
            if parked.is_empty() {
                return;
            }
            for (_, ev) in parked {
                self.log_event(now, ev);
                self.handle(now, ev);
            }
        }
    }

    fn log_event(&mut self, now: u64, ev: Ev) {
        if self.event_log.is_none() {
            return;
        }
        let record = self.states.get(&ev.id()).map(|state| EventRecord {
            cycle: now,
            kind: ev.name(),
            line_addr: state.req.line_addr,
            tag: state.req.tag,
            bank: state.bank,
            tile: state.req.tile,
        });
        if let (Some(log), Some(record)) = (&mut self.event_log, record) {
            log.push(record);
        }
    }

    /// The cycle of the earliest pending event (for fast-forwarding an
    /// otherwise idle system).
    #[must_use]
    pub fn next_event_time(&self) -> Option<u64> {
        self.events.next_time()
    }

    /// Total events ever drained from the queue — the host profiler's
    /// event-queue drain volume. Deterministic: a function of the
    /// simulated schedule, not of host timing.
    #[must_use]
    pub fn event_pops(&self) -> u64 {
        self.events.pop_count()
    }

    /// Whether any request is still in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.states.is_empty() && self.events.is_empty()
    }

    /// Snapshot of all counters.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            banks: self.banks.iter().map(super::l2::L2Bank::stats).collect(),
            noc: self.noc.stats(),
            mcs: self
                .mcs
                .iter()
                .map(super::mc::MemoryController::stats)
                .collect(),
            submitted: self.submitted,
            completed: self.completed,
            merged: self.merged,
        }
    }

    fn handle(&mut self, now: u64, ev: Ev) {
        match ev {
            Ev::BankArrive(id) => self.on_bank_arrive(now, id),
            Ev::McSend(id) => self.on_mc_send(now, id),
            Ev::McRespond(id) => self.on_mc_respond(now, id),
            Ev::BankFill(id) => self.on_bank_fill(now, id),
            Ev::Complete(id) => self.on_complete(now, id),
        }
    }

    fn on_bank_arrive(&mut self, now: u64, id: u64) {
        if let Some(t) = &mut self.telemetry {
            t.on_bank_arrive(id, now);
        }
        let state = self.states.get(&id).expect("state").clone();
        if state.is_prefetch {
            // Prefetches are best-effort: drop if the line is resident,
            // already being fetched, or no MSHR is free.
            let resident = self.banks[state.bank].probe_quiet(state.req.line_addr, state.local_idx);
            let in_flight = self.bank_pending[state.bank].contains_key(&state.req.line_addr);
            if resident || in_flight || !self.banks[state.bank].mshr_available() {
                self.states.remove(&id);
                return;
            }
            self.banks[state.bank].mshr_acquire();
            self.bank_pending[state.bank].insert(state.req.line_addr, Vec::new());
            self.schedule_ev(now + self.config.l2.miss_latency, Ev::McSend(id));
            return;
        }
        let bank = &mut self.banks[state.bank];
        let write = !state.req.needs_response;
        match bank.lookup(state.req.line_addr, state.local_idx, write) {
            Lookup::Hit => {
                if state.req.needs_response {
                    let hit_latency = self.config.l2.hit_latency;
                    self.schedule_response(now + hit_latency, id);
                } else {
                    // Writeback absorbed by the bank (line marked dirty).
                    self.states.remove(&id);
                }
            }
            Lookup::Miss => {
                let lookup_done = now + self.config.l2.hit_latency;
                if state.req.needs_response {
                    // Merge with an in-flight fill of the same line.
                    if let Some(waiters) =
                        self.bank_pending[state.bank].get_mut(&state.req.line_addr)
                    {
                        waiters.push(id);
                        self.merged += 1;
                        if let Some(t) = &mut self.telemetry {
                            t.on_merge(id);
                        }
                        return;
                    }
                    if self.banks[state.bank].mshr_available() {
                        self.banks[state.bank].mshr_acquire();
                        self.bank_pending[state.bank].insert(state.req.line_addr, vec![id]);
                        self.schedule_ev(lookup_done + self.config.l2.miss_latency, Ev::McSend(id));
                    } else {
                        self.banks[state.bank].enqueue_waiting(id);
                    }
                    self.issue_prefetches(now, &state);
                } else {
                    // Writeback missing in L2: forward to memory.
                    self.schedule_ev(lookup_done, Ev::McSend(id));
                }
            }
        }
    }

    /// Issues next-line prefetches triggered by a demand miss. Each
    /// candidate is routed through the normal mapping (it may land on a
    /// different bank) and enters that bank one cycle later.
    fn issue_prefetches(&mut self, now: u64, demand: &ReqState) {
        for i in 1..=self.config.prefetch_degree as u64 {
            let line_addr = demand
                .req
                .line_addr
                .wrapping_add(i * self.config.l2.line_bytes);
            let req = Request {
                line_addr,
                tile: demand.req.tile,
                needs_response: false,
                tag: 0,
                pc: 0,
            };
            let (bank, local_idx) = self.route(&req);
            let id = self.next_id;
            self.next_id += 1;
            self.states.insert(
                id,
                ReqState {
                    req,
                    bank,
                    local_idx,
                    is_l2_writeback: false,
                    is_prefetch: true,
                },
            );
            self.schedule_ev(now + 1, Ev::BankArrive(id));
        }
    }

    fn on_mc_send(&mut self, now: u64, id: u64) {
        let state = self.states.get(&id).expect("state").clone();
        let mc_index = self
            .config
            .mc
            .mc_for(state.req.line_addr, self.config.l2.line_bytes);
        if let Some(t) = &mut self.telemetry {
            t.on_mc_send(id, now, mc_index);
        }
        let bank_tile = self.bank_tile(state.bank);
        let latency = self
            .noc
            .traverse_request(NocNode::Tile(bank_tile), NocNode::Mc(mc_index));
        let write = !state.req.needs_response && !state.is_prefetch;
        let done = self.mcs[mc_index].service(
            now + latency,
            state.req.line_addr,
            self.config.l2.line_bytes,
            write,
        );
        if write {
            // Writebacks (L1-originated or L2 victims) are absorbed.
            self.states.remove(&id);
        } else {
            self.schedule_ev(done, Ev::McRespond(id));
        }
    }

    fn on_mc_respond(&mut self, now: u64, id: u64) {
        if let Some(t) = &mut self.telemetry {
            t.on_mc_respond(id, now);
        }
        let state = self.states.get(&id).expect("state").clone();
        let mc_index = self
            .config
            .mc
            .mc_for(state.req.line_addr, self.config.l2.line_bytes);
        let bank_tile = self.bank_tile(state.bank);
        let latency = self
            .noc
            .traverse_response(NocNode::Mc(mc_index), NocNode::Tile(bank_tile));
        self.schedule_ev(now + latency, Ev::BankFill(id));
    }

    fn on_bank_fill(&mut self, now: u64, id: u64) {
        if let Some(t) = &mut self.telemetry {
            t.on_bank_fill(id, now);
        }
        let state = self.states.get(&id).expect("state").clone();
        // Install the line; a dirty victim becomes a synthesized
        // writeback to memory.
        if let Some(victim) = self.banks[state.bank].fill(
            state.req.line_addr,
            state.local_idx,
            false,
            state.is_prefetch,
        ) {
            let wb_id = self.next_id;
            self.next_id += 1;
            self.states.insert(
                wb_id,
                ReqState {
                    req: Request {
                        line_addr: victim,
                        tile: state.req.tile,
                        needs_response: false,
                        tag: 0,
                        pc: 0,
                    },
                    bank: state.bank,
                    local_idx: 0,
                    is_l2_writeback: true,
                    is_prefetch: false,
                },
            );
            self.schedule_ev(now, Ev::McSend(wb_id));
        }
        self.banks[state.bank].mshr_release();
        // Respond to every request merged onto this line (before waking
        // queued requests, so a same-line waiter is not answered twice).
        let waiters = self.bank_pending[state.bank]
            .remove(&state.req.line_addr)
            .unwrap_or_default();
        for waiter in waiters {
            if self.states[&waiter].is_prefetch {
                self.states.remove(&waiter);
            } else {
                self.schedule_response(now, waiter);
            }
        }
        if state.is_prefetch {
            self.states.remove(&id);
        }
        // Wake one queued request now that an MSHR is free.
        if let Some(waiting_id) = self.banks[state.bank].pop_waiting() {
            let wbank = self.states[&waiting_id].bank;
            let line = self.states[&waiting_id].req.line_addr;
            // A fetch for this line may have started while the request
            // sat in the queue; merge instead of fetching twice.
            if let Some(same_line) = self.bank_pending[wbank].get_mut(&line) {
                same_line.push(waiting_id);
                self.merged += 1;
                if let Some(t) = &mut self.telemetry {
                    t.on_mshr_grant(waiting_id, now);
                    t.on_merge(waiting_id);
                }
            } else {
                self.banks[wbank].mshr_acquire();
                self.bank_pending[wbank].insert(line, vec![waiting_id]);
                if let Some(t) = &mut self.telemetry {
                    t.on_mshr_grant(waiting_id, now);
                }
                // Lookup was already paid on arrival; only the miss path
                // remains.
                self.schedule_ev(now + self.config.l2.miss_latency, Ev::McSend(waiting_id));
            }
        }
    }

    fn schedule_response(&mut self, now: u64, id: u64) {
        if let Some(t) = &mut self.telemetry {
            t.on_respond(id, now);
        }
        let state = self.states.get(&id).expect("state");
        let bank_tile = self.bank_tile(state.bank);
        let latency = self
            .noc
            .traverse_response(NocNode::Tile(bank_tile), NocNode::Tile(state.req.tile));
        self.schedule_ev(now + latency, Ev::Complete(id));
    }

    fn on_complete(&mut self, now: u64, id: u64) {
        let state = self.states.remove(&id).expect("state");
        debug_assert!(!state.is_l2_writeback);
        let cause = self.telemetry.as_mut().and_then(|t| t.on_complete(id, now));
        self.completed += 1;
        self.completions_out.push(Completion {
            tag: state.req.tag,
            line_addr: state.req.line_addr,
            tile: state.req.tile,
            cause,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> HierarchyConfig {
        HierarchyConfig {
            tiles: 2,
            banks_per_tile: 2,
            l2: L2Config {
                bank_size_bytes: 16 * 1024,
                ways: 4,
                line_bytes: 64,
                mshrs: 4,
                hit_latency: 10,
                miss_latency: 5,
            },
            sharing: L2Sharing::Shared,
            mapping: MappingPolicy::SetInterleave,
            noc: NocModel::IdealCrossbar {
                request_latency: 8,
                response_latency: 8,
            },
            mc: McConfig {
                count: 2,
                channels_per_mc: 4,
                access_latency: 100,
                cycles_per_line: 4,
                ..McConfig::default()
            },
            prefetch_degree: 0,
            perturb_seed: 0,
        }
    }

    /// Runs the hierarchy until idle, returning (cycle, completions).
    fn drain(h: &mut Hierarchy, from: u64) -> (u64, Vec<Completion>) {
        let mut out = Vec::new();
        let mut now = from;
        while !h.is_idle() {
            now = h.next_event_time().unwrap_or(now + 1).max(now);
            h.advance(now, &mut out);
        }
        (now, out)
    }

    #[test]
    fn cold_miss_round_trip_latency() {
        let mut h = Hierarchy::new(config()).unwrap();
        h.submit(
            0,
            Request {
                line_addr: 0x4000,
                tile: 0,
                needs_response: true,
                tag: 1,
                pc: 0,
            },
        );
        let (done, out) = drain(&mut h, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tag, 1);
        // Line 0x4000 with 4 banks set-interleaved: bank = (0x4000/64)%4
        // = 0 → tile 0, so the tile→bank and bank→tile NoC hops are
        // local (0 cycles). Path: lookup(10) + miss(5) + NoC(8) +
        // MC(4+100) + NoC(8) + fill/respond(0).
        assert_eq!(done, 10 + 5 + 8 + 104 + 8);
        let stats = h.stats();
        assert_eq!(stats.l2_misses(), 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn second_access_hits_in_l2() {
        let mut h = Hierarchy::new(config()).unwrap();
        let req = Request {
            line_addr: 0x4000,
            tile: 0,
            needs_response: true,
            tag: 1,
            pc: 0,
        };
        h.submit(0, req);
        let (t1, _) = drain(&mut h, 0);
        h.submit(t1, Request { tag: 2, ..req });
        let (t2, out) = drain(&mut h, t1);
        assert_eq!(out.len(), 1);
        // Hit path: local NoC (0) + hit latency + local response (0).
        assert_eq!(t2 - t1, 10);
        assert_eq!(h.stats().l2_hits(), 1);
    }

    #[test]
    fn concurrent_misses_to_same_line_merge() {
        let mut h = Hierarchy::new(config()).unwrap();
        for tag in 0..4 {
            h.submit(
                0,
                Request {
                    line_addr: 0x8000,
                    tile: 0,
                    needs_response: true,
                    tag,
                    pc: 0,
                },
            );
        }
        let (_, out) = drain(&mut h, 0);
        assert_eq!(out.len(), 4);
        let stats = h.stats();
        assert_eq!(stats.merged, 3);
        assert_eq!(stats.mcs.iter().map(|m| m.reads).sum::<u64>(), 1);
    }

    #[test]
    fn mshr_exhaustion_queues_and_eventually_serves() {
        let mut cfg = config();
        cfg.l2.mshrs = 1;
        cfg.banks_per_tile = 1;
        cfg.tiles = 1;
        let mut h = Hierarchy::new(cfg).unwrap();
        // 8 distinct lines, all to the single bank with 1 MSHR.
        for i in 0..8u64 {
            h.submit(
                0,
                Request {
                    line_addr: i * 64,
                    tile: 0,
                    needs_response: true,
                    tag: i,
                    pc: 0,
                },
            );
        }
        let (_, out) = drain(&mut h, 0);
        assert_eq!(out.len(), 8);
        let stats = h.stats();
        assert!(stats.banks[0].mshr_stalls >= 6, "stalls: {stats:?}");
    }

    #[test]
    fn private_l2_keeps_requests_on_tile() {
        let mut cfg = config();
        cfg.sharing = L2Sharing::Private;
        let mut h = Hierarchy::new(cfg).unwrap();
        // Tile 1's request must be served by banks 2..4.
        h.submit(
            0,
            Request {
                line_addr: 0x4000,
                tile: 1,
                needs_response: true,
                tag: 7,
                pc: 0,
            },
        );
        let (_, out) = drain(&mut h, 0);
        assert_eq!(out.len(), 1);
        let stats = h.stats();
        let touched: Vec<usize> = stats
            .banks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.accesses() > 0)
            .map(|(i, _)| i)
            .collect();
        assert!(touched.iter().all(|&b| b >= 2), "banks {touched:?}");
    }

    #[test]
    fn writeback_is_fire_and_forget() {
        let mut h = Hierarchy::new(config()).unwrap();
        h.submit(
            0,
            Request {
                line_addr: 0xc000,
                tile: 0,
                needs_response: false,
                tag: 0,
                pc: 0,
            },
        );
        let (_, out) = drain(&mut h, 0);
        assert!(out.is_empty());
        // Missing in L2 → forwarded to memory as a write.
        assert_eq!(h.stats().mcs.iter().map(|m| m.writes).sum::<u64>(), 1);
    }

    #[test]
    fn next_line_prefetch_turns_misses_into_hits() {
        let mut cfg = config();
        cfg.tiles = 1;
        cfg.banks_per_tile = 1;
        // Stream 32 sequential lines twice: without prefetch, the first
        // pass misses on every line; with degree 2, later lines of the
        // first pass hit on prefetched data.
        let run_with = |degree: usize| {
            let mut c = cfg;
            c.prefetch_degree = degree;
            let mut h = Hierarchy::new(c).unwrap();
            let mut out = Vec::new();
            let mut now = 0u64;
            for i in 0..32u64 {
                h.submit(
                    now,
                    Request {
                        line_addr: i * 64,
                        tile: 0,
                        needs_response: true,
                        tag: i,
                        pc: 0,
                    },
                );
                // Space the requests out so prefetches can land.
                for _ in 0..300 {
                    now += 1;
                    h.advance(now, &mut out);
                }
            }
            while !h.is_idle() {
                now += 1;
                h.advance(now, &mut out);
            }
            (h.stats(), out.len())
        };
        let (base, base_done) = run_with(0);
        let (pf, pf_done) = run_with(2);
        assert_eq!(base_done, 32);
        assert_eq!(pf_done, 32);
        assert_eq!(base.banks[0].prefetch_fills, 0);
        assert!(pf.banks[0].prefetch_fills > 0);
        assert!(pf.banks[0].prefetch_useful > 0);
        assert!(
            pf.l2_hits() > base.l2_hits(),
            "prefetch should convert stream misses into hits: {} vs {}",
            pf.l2_hits(),
            base.l2_hits()
        );
    }

    #[test]
    fn determinism_same_input_same_timeline() {
        let run = || {
            let mut h = Hierarchy::new(config()).unwrap();
            for i in 0..64u64 {
                h.submit(
                    i / 4,
                    Request {
                        line_addr: (i * 37 % 50) * 64,
                        tile: (i % 2) as usize,
                        needs_response: i % 5 != 0,
                        tag: i,
                        pc: 0,
                    },
                );
            }
            let mut out = Vec::new();
            let mut now = 0;
            while !h.is_idle() {
                now += 1;
                h.advance(now, &mut out);
            }
            (now, out, format!("{:?}", h.stats()))
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn telemetry_stage_latencies_partition_end_to_end() {
        use coyote_telemetry::Stage;
        let mut h = Hierarchy::new(config()).unwrap();
        h.enable_telemetry(true);
        let mut now = 0;
        let mut out = Vec::new();
        // Mixed traffic: cold misses, same-line merges, re-reads that
        // hit, and fire-and-forget writebacks.
        for i in 0..48u64 {
            h.submit(
                now,
                Request {
                    line_addr: (i % 12) * 64,
                    tile: (i % 2) as usize,
                    needs_response: i % 7 != 0,
                    tag: i,
                    pc: 0,
                },
            );
            for _ in 0..8 {
                now += 1;
                h.advance(now, &mut out);
            }
        }
        while !h.is_idle() {
            now += 1;
            h.advance(now, &mut out);
        }
        let stats = h.stats();
        let t = h.telemetry().unwrap();
        // Every completed request is measured end to end; nothing else is.
        assert_eq!(t.stage(Stage::EndToEnd).count(), stats.completed);
        assert_eq!(t.tracked_in_flight(), 0);
        // The stages partition each request's lifetime exactly, so the
        // per-stage sums add up to the end-to-end sum.
        let partition: u64 = [
            Stage::NocRequest,
            Stage::Bank,
            Stage::Mc,
            Stage::NocFill,
            Stage::Deliver,
        ]
        .iter()
        .map(|&s| t.stage(s).sum())
        .sum();
        assert_eq!(partition, t.stage(Stage::EndToEnd).sum());
        // Per-MC histograms decompose the aggregate MC stage.
        let mc_total: u64 = t.per_mc().iter().map(Histogram::count).sum();
        assert_eq!(mc_total, t.stage(Stage::Mc).count());
        // Only MC round trips (one per miss owner) visit the MC stage.
        let owners = t.slices().iter().filter(|s| s.mc_send.is_some()).count() as u64;
        assert_eq!(t.stage(Stage::Mc).count(), owners);
        assert_eq!(t.stage(Stage::NocFill).count(), owners);
        assert!(owners < stats.completed, "merges and hits skip the MC");
        // Slices were retained for every completed request.
        assert_eq!(t.slices().len() as u64, stats.completed);
        assert_eq!(t.dropped_slices(), 0);
        for s in t.slices() {
            assert!(s.submit <= s.complete);
            if let (Some(send), Some(resp)) = (s.mc_send, s.mc_respond) {
                assert!(send <= resp);
            }
        }
    }

    #[test]
    fn completion_causes_partition_end_to_end_under_mshr_pressure() {
        use coyote_telemetry::{Blame, Stage};
        let mut cfg = config();
        cfg.tiles = 1;
        cfg.banks_per_tile = 1;
        cfg.l2.mshrs = 2;
        let mut h = Hierarchy::new(cfg).unwrap();
        h.enable_telemetry(true);
        // Distinct lines so six misses fight over two MSHRs, plus a
        // same-line reread that merges.
        let mut out: Vec<Completion> = Vec::new();
        for i in 0..6u64 {
            h.submit(
                0,
                Request {
                    line_addr: i * 64,
                    tile: 0,
                    needs_response: true,
                    tag: i,
                    pc: 0x1000 + i * 4,
                },
            );
        }
        h.submit(
            1,
            Request {
                line_addr: 0,
                tile: 0,
                needs_response: true,
                tag: 100,
                pc: 0x2000,
            },
        );
        let mut now = 1;
        while !h.is_idle() {
            now += 1;
            h.advance(now, &mut out);
        }
        assert_eq!(out.len(), 7);
        let t = h.telemetry().unwrap();
        assert_eq!(t.stamp_errors(), 0);
        // Every completion carries a cause whose blame split matches the
        // slice's end-to-end span exactly.
        let mut cause_total = 0u64;
        let mut mshr_blame = 0u64;
        for c in &out {
            let cause = c.cause.expect("telemetry enabled");
            let slice = t
                .slices()
                .iter()
                .find(|s| s.tag == c.tag)
                .expect("slice retained");
            assert_eq!(cause.pc, slice.pc);
            assert_eq!(cause.total(), slice.complete - slice.submit);
            cause_total += cause.total();
            mshr_blame += cause.blame[Blame::Mshr as usize];
        }
        assert_eq!(cause_total, t.stage(Stage::EndToEnd).sum());
        assert!(mshr_blame > 0, "queued requests must blame MSHR pressure");
    }

    use coyote_telemetry::Histogram;

    #[test]
    fn disabled_telemetry_reports_none() {
        let mut h = Hierarchy::new(config()).unwrap();
        assert!(h.telemetry().is_none());
        h.submit(
            0,
            Request {
                line_addr: 0,
                tile: 0,
                needs_response: true,
                tag: 0,
                pc: 0,
            },
        );
        let (_, out) = drain(&mut h, 0);
        assert_eq!(out.len(), 1);
        assert!(h.telemetry().is_none());
    }

    #[test]
    fn occupancy_gauges_track_outstanding_work() {
        let mut cfg = config();
        cfg.l2.mshrs = 2;
        cfg.tiles = 1;
        cfg.banks_per_tile = 1;
        let mut h = Hierarchy::new(cfg).unwrap();
        for i in 0..6u64 {
            h.submit(
                0,
                Request {
                    line_addr: i * 64,
                    tile: 0,
                    needs_response: true,
                    tag: i,
                    pc: 0,
                },
            );
        }
        let mut out = Vec::new();
        // Step past the bank lookup so misses allocate MSHRs.
        let mut now = 0;
        while h.mshr_occupancy().iter().sum::<usize>() == 0 && !h.is_idle() {
            now += 1;
            h.advance(now, &mut out);
        }
        assert_eq!(h.mshr_occupancy(), vec![2]);
        assert_eq!(h.queued_requests(), 4);
        assert_eq!(h.in_flight_requests(), 6);
        let (_, rest) = drain(&mut h, now);
        assert_eq!(out.len() + rest.len(), 6);
        assert_eq!(h.mshr_occupancy(), vec![0]);
        assert_eq!(h.queued_requests(), 0);
        assert_eq!(h.in_flight_requests(), 0);
        assert_eq!(h.mc_busy_channels(now + 100_000), 0);
    }

    #[test]
    fn capacity_pressure_generates_l2_writebacks() {
        let mut cfg = config();
        cfg.tiles = 1;
        cfg.banks_per_tile = 1;
        cfg.l2.bank_size_bytes = 4096; // 64 lines
        cfg.l2.ways = 1;
        let mut h = Hierarchy::new(cfg).unwrap();
        let mut now = 0;
        let mut out = Vec::new();
        // Dirty the whole cache with L1 writebacks that miss and then
        // get filled... writebacks don't allocate; instead stream reads
        // then re-read far addresses to cause evictions. Evictions are
        // only dirty if a writeback marked them; so first fill, then
        // dirty them with writebacks, then evict.
        for i in 0..64u64 {
            h.submit(
                now,
                Request {
                    line_addr: i * 64,
                    tile: 0,
                    needs_response: true,
                    tag: i,
                    pc: 0,
                },
            );
        }
        while !h.is_idle() {
            now += 1;
            h.advance(now, &mut out);
        }
        for i in 0..64u64 {
            h.submit(
                now,
                Request {
                    line_addr: i * 64,
                    tile: 0,
                    needs_response: false,
                    tag: 0,
                    pc: 0,
                },
            );
        }
        while !h.is_idle() {
            now += 1;
            h.advance(now, &mut out);
        }
        // Conflicting fills evict the dirty lines.
        for i in 0..64u64 {
            h.submit(
                now,
                Request {
                    line_addr: 4096 + i * 64,
                    tile: 0,
                    needs_response: true,
                    tag: 100 + i,
                    pc: 0,
                },
            );
        }
        while !h.is_idle() {
            now += 1;
            h.advance(now, &mut out);
        }
        let stats = h.stats();
        assert_eq!(stats.banks[0].writebacks, 64);
        assert_eq!(stats.mcs.iter().map(|m| m.writes).sum::<u64>(), 64);
    }
}
