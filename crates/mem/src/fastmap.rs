//! A fast, deterministic hash map for `u64` keys.
//!
//! The hierarchy's per-request maps sit on the simulation hot path, and
//! `std`'s default SipHash both costs cycles and (being randomly
//! seeded) would perturb iteration order between runs. This
//! multiplicative hasher is cheap and fixed-seed, keeping the simulator
//! deterministic. Shared by the event pipeline and the telemetry layer.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for line addresses and request ids.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, value: u64) {
        self.0 = value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// `HashMap<u64, V>` with the deterministic [`FastHasher`].
pub type FastMap<V> = HashMap<u64, V, BuildHasherDefault<FastHasher>>;
