//! Memory-controller model with HBM-style channels.
//!
//! Each controller owns several channels selected by address
//! interleaving. A channel serves one line per `cycles_per_line`
//! (bandwidth) and adds a fixed `access_latency` (device latency) — the
//! classic bandwidth/latency decomposition the paper's MC/HBM discussion
//! calls for. Queueing is implicit: a request arriving while the channel
//! is busy is served when the channel frees, so the completion time is
//! computable at arrival (no extra events needed).

/// Memory-controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Number of controllers in the system.
    pub count: usize,
    /// Channels per controller (HBM pseudo-channels).
    pub channels_per_mc: usize,
    /// Fixed access latency in cycles (row access + transfer head),
    /// used when the row-buffer model is disabled.
    pub access_latency: u64,
    /// Cycles of channel occupancy per line transferred (1/bandwidth).
    pub cycles_per_line: u64,
    /// Row-buffer (open-page) model: DRAM row size in bytes, or 0 to
    /// disable and use the flat `access_latency`. Extending the MC
    /// model is the paper's named future work.
    pub row_bytes: u64,
    /// Latency when the access hits the channel's open row.
    pub row_hit_latency: u64,
    /// Latency when the row must be precharged and activated first.
    pub row_miss_latency: u64,
    /// Address-interleave granule across controllers and channels in
    /// bytes (0 = one cache line). Coarser granules keep DRAM rows on
    /// one channel (row locality) at the cost of burst parallelism.
    pub interleave_bytes: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            count: 2,
            channels_per_mc: 8,
            access_latency: 100,
            cycles_per_line: 4,
            row_bytes: 0,
            row_hit_latency: 60,
            row_miss_latency: 160,
            interleave_bytes: 0,
        }
    }
}

impl McConfig {
    /// The effective interleave granule (one line when unset).
    #[must_use]
    pub fn granule(&self, line_bytes: u64) -> u64 {
        if self.interleave_bytes == 0 {
            line_bytes
        } else {
            self.interleave_bytes
        }
    }

    /// Which controller owns `line_addr`.
    #[must_use]
    pub fn mc_for(&self, line_addr: u64, line_bytes: u64) -> usize {
        ((line_addr / self.granule(line_bytes)) % self.count as u64) as usize
    }

    /// Which channel of a controller serves `line_addr`.
    #[must_use]
    pub fn channel_for(&self, line_addr: u64, line_bytes: u64) -> usize {
        ((line_addr / self.granule(line_bytes)) as usize / self.count) % self.channels_per_mc
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 || self.channels_per_mc == 0 {
            return Err("memory controller and channel counts must be positive".to_owned());
        }
        if self.cycles_per_line == 0 {
            return Err("cycles_per_line must be at least 1".to_owned());
        }
        if self.row_bytes != 0 && !self.row_bytes.is_power_of_two() {
            return Err(format!(
                "row size {} must be a power of two",
                self.row_bytes
            ));
        }
        if self.interleave_bytes != 0 && !self.interleave_bytes.is_power_of_two() {
            return Err(format!(
                "interleave granule {} must be a power of two",
                self.interleave_bytes
            ));
        }
        Ok(())
    }
}

/// Counters for one controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McStats {
    /// Read (fill) requests served.
    pub reads: u64,
    /// Write (writeback) requests served.
    pub writes: u64,
    /// Total cycles requests spent waiting for a busy channel.
    pub queue_cycles: u64,
    /// Total channel-busy cycles (for bandwidth-utilization reports).
    pub busy_cycles: u64,
    /// Accesses that hit the channel's open row (row-buffer model).
    pub row_hits: u64,
    /// Accesses that required precharge + activate.
    pub row_misses: u64,
}

impl McStats {
    /// All requests served.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean queueing delay per request.
    #[must_use]
    pub fn mean_queue_delay(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.queue_cycles as f64 / self.requests() as f64
        }
    }
}

/// One memory controller.
#[derive(Debug, Clone)]
pub struct MemoryController {
    config: McConfig,
    /// Cycle at which each channel becomes free.
    channel_free: Vec<u64>,
    /// Open DRAM row per channel (row-buffer model).
    open_row: Vec<Option<u64>>,
    stats: McStats,
}

impl MemoryController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation (checked at hierarchy
    /// construction).
    #[must_use]
    pub fn new(config: McConfig) -> MemoryController {
        config.validate().expect("invalid MC config");
        MemoryController {
            config,
            channel_free: vec![0; config.channels_per_mc],
            open_row: vec![None; config.channels_per_mc],
            stats: McStats::default(),
        }
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> McStats {
        self.stats
    }

    /// Serves a line request arriving at `now`; returns the cycle the
    /// data is available (for reads) or fully absorbed (for writes).
    ///
    /// With the row-buffer model enabled (`row_bytes > 0`), the device
    /// latency depends on whether the channel's open row matches
    /// (open-page policy); otherwise the flat `access_latency` applies.
    pub fn service(&mut self, now: u64, line_addr: u64, line_bytes: u64, write: bool) -> u64 {
        let channel = self.config.channel_for(line_addr, line_bytes);
        let start = now.max(self.channel_free[channel]);
        self.stats.queue_cycles += start - now;
        self.channel_free[channel] = start + self.config.cycles_per_line;
        self.stats.busy_cycles += self.config.cycles_per_line;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let device_latency = match line_addr.checked_div(self.config.row_bytes) {
            None => self.config.access_latency, // row model disabled
            Some(row) => {
                if self.open_row[channel] == Some(row) {
                    self.stats.row_hits += 1;
                    self.config.row_hit_latency
                } else {
                    self.open_row[channel] = Some(row);
                    self.stats.row_misses += 1;
                    self.config.row_miss_latency
                }
            }
        };
        start + self.config.cycles_per_line + device_latency
    }

    /// Earliest cycle any channel is free (diagnostics).
    #[must_use]
    pub fn earliest_free(&self) -> u64 {
        self.channel_free.iter().copied().min().unwrap_or(0)
    }

    /// How many channels are still occupied at `now` (telemetry gauge).
    #[must_use]
    pub fn busy_channels(&self, now: u64) -> usize {
        self.channel_free.iter().filter(|&&free| free > now).count()
    }
}

/// Selects the memory controller owning a line with the default
/// line-granular interleave (see [`McConfig::mc_for`] for the
/// configurable form).
#[must_use]
pub fn mc_for_line(line_addr: u64, line_bytes: u64, count: usize) -> usize {
    ((line_addr / line_bytes) % count as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(McConfig {
            count: 1,
            channels_per_mc: 2,
            access_latency: 50,
            cycles_per_line: 10,
            ..McConfig::default()
        })
    }

    #[test]
    fn idle_channel_serves_at_fixed_latency() {
        let mut m = mc();
        assert_eq!(m.service(100, 0, 64, false), 160); // 100 + 10 + 50
        assert_eq!(m.stats().reads, 1);
        assert_eq!(m.stats().queue_cycles, 0);
    }

    #[test]
    fn busy_channel_queues() {
        let mut m = mc();
        // Two back-to-back requests to the same channel (same line idx
        // parity).
        let t1 = m.service(0, 0, 64, false);
        let t2 = m.service(0, 128, 64, false); // line 2 → channel 0 again
        assert_eq!(t1, 60);
        assert_eq!(t2, 70); // waited 10 cycles of occupancy
        assert_eq!(m.stats().queue_cycles, 10);
    }

    #[test]
    fn channels_serve_in_parallel() {
        let mut m = mc();
        let t1 = m.service(0, 0, 64, false); // line 0 → channel 0
        let t2 = m.service(0, 64, 64, false); // line 1 → channel 1
        assert_eq!(t1, 60);
        assert_eq!(t2, 60);
        assert_eq!(m.stats().queue_cycles, 0);
    }

    #[test]
    fn writes_counted_separately() {
        let mut m = mc();
        m.service(0, 0, 64, true);
        assert_eq!(m.stats().writes, 1);
        assert_eq!(m.stats().reads, 0);
    }

    #[test]
    fn mc_interleaving_covers_all_controllers() {
        let hits: std::collections::BTreeSet<usize> =
            (0..16u64).map(|i| mc_for_line(i * 64, 64, 4)).collect();
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn row_buffer_hits_are_faster() {
        let mut m = MemoryController::new(McConfig {
            count: 1,
            channels_per_mc: 1,
            access_latency: 100,
            cycles_per_line: 2,
            row_bytes: 2048,
            row_hit_latency: 30,
            row_miss_latency: 150,
            interleave_bytes: 0,
        });
        // First access opens the row (miss), sequential neighbors hit.
        let t0 = m.service(0, 0, 64, false);
        assert_eq!(t0, 2 + 150);
        let t1 = m.service(200, 64, 64, false);
        assert_eq!(t1, 200 + 2 + 30);
        // Different row: conflict.
        let t2 = m.service(400, 4096, 64, false);
        assert_eq!(t2, 400 + 2 + 150);
        assert_eq!(m.stats().row_hits, 1);
        assert_eq!(m.stats().row_misses, 2);
    }

    #[test]
    fn flat_model_ignores_rows() {
        let mut m = mc();
        m.service(0, 0, 64, false);
        m.service(200, 64, 64, false);
        assert_eq!(m.stats().row_hits, 0);
        assert_eq!(m.stats().row_misses, 0);
    }

    #[test]
    fn coarse_interleave_preserves_row_locality() {
        let cfg = McConfig {
            count: 2,
            channels_per_mc: 4,
            interleave_bytes: 2048,
            ..McConfig::default()
        };
        // All lines of one 2 KiB row land on one (mc, channel).
        let mc0 = cfg.mc_for(0, 64);
        let ch0 = cfg.channel_for(0, 64);
        for line in (0..2048).step_by(64) {
            assert_eq!(cfg.mc_for(line, 64), mc0);
            assert_eq!(cfg.channel_for(line, 64), ch0);
        }
        // The next row moves on.
        assert!(cfg.mc_for(2048, 64) != mc0 || cfg.channel_for(2048, 64) != ch0);
    }

    #[test]
    fn row_bytes_must_be_power_of_two() {
        assert!(McConfig {
            row_bytes: 1000,
            ..McConfig::default()
        }
        .validate()
        .is_err());
        assert!(McConfig {
            row_bytes: 2048,
            ..McConfig::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn config_validation() {
        assert!(McConfig::default().validate().is_ok());
        assert!(McConfig {
            count: 0,
            ..McConfig::default()
        }
        .validate()
        .is_err());
        assert!(McConfig {
            cycles_per_line: 0,
            ..McConfig::default()
        }
        .validate()
        .is_err());
    }
}
