//! Deterministic discrete-event memory-hierarchy model — the Sparta
//! substitute of the Coyote reproduction.
//!
//! The paper uses SiFive's Sparta framework to model everything below
//! the L1 caches "based on a modular design, in which the functionality
//! of each element (e.g. an L2 Bank) is encapsulated as an independent
//! component". This crate rebuilds that layer from scratch:
//!
//! * [`event::EventQueue`] — the cycle-ordered, deterministic event
//!   kernel;
//! * [`l2::L2Bank`] — banked L2 with MSHR-limited outstanding misses;
//! * [`mapping::MappingPolicy`] — the paper's two data-mapping policies
//!   (page-to-bank and set-interleaving);
//! * [`noc::Noc`] — the idealized crossbar of the paper plus a 2D-mesh
//!   extension;
//! * [`mc::MemoryController`] — HBM-style multi-channel controllers with
//!   bandwidth and latency;
//! * [`hierarchy::Hierarchy`] — the wiring: submit L1 misses, advance
//!   the clock, collect completions.
//!
//! # Examples
//!
//! ```
//! use coyote_mem::hierarchy::{Hierarchy, HierarchyConfig, Request};
//!
//! # fn main() -> Result<(), String> {
//! let mut hierarchy = Hierarchy::new(HierarchyConfig::default())?;
//! hierarchy.submit(0, Request {
//!     line_addr: 0x8000_0000,
//!     tile: 0,
//!     needs_response: true,
//!     tag: 42,
//!     pc: 0,
//! });
//! let mut completions = Vec::new();
//! let mut cycle = 0;
//! while !hierarchy.is_idle() {
//!     cycle += 1;
//!     hierarchy.advance(cycle, &mut completions);
//! }
//! assert_eq!(completions.len(), 1);
//! assert_eq!(completions[0].tag, 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fastmap;
pub mod hierarchy;
pub mod l2;
pub mod mapping;
pub mod mc;
pub mod noc;
pub mod telemetry;

pub use event::EventQueue;
pub use fastmap::{FastHasher, FastMap};
pub use hierarchy::{Completion, Hierarchy, HierarchyConfig, HierarchyStats, L2Sharing, Request};
pub use l2::{BankStats, L2Bank, L2Config};
pub use mapping::MappingPolicy;
pub use mc::{McConfig, McStats, MemoryController};
pub use noc::{Noc, NocModel, NocNode, NocStats};
pub use telemetry::{MemTelemetry, RequestSlice, SLICE_CAP};
