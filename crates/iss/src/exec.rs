//! Functional execution semantics.
//!
//! [`execute`] applies one decoded instruction to a [`Hart`] and a
//! [`MemoryIo`] memory (the shared [`SparseMemory`](crate::mem::SparseMemory)
//! or a buffered per-core view), reporting the data-memory accesses performed
//! and the destination register written, which the timing layer (L1
//! caches + RAW scoreboard + event-driven hierarchy) uses to drive the
//! Coyote cycle loop.
//!
//! Floating-point notes: the simulator computes with host `f64`
//! arithmetic. Arithmetic uses round-to-nearest-even (the canonical
//! dynamic rounding the encoder emits); float→int conversions use
//! round-toward-zero with saturation, matching RISC-V `rtz` semantics
//! for in-range values. `fmin`/`fmax` follow IEEE `minNum`/`maxNum` for
//! non-NaN inputs.

use std::fmt;

use coyote_isa::inst::{
    AluOp, AluWOp, AmoOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpCmpOp, FpCvtOp, FpOp, Inst, MemWidth,
    VAddrMode, VCmpOp, VFCmpOp, VFScalar, VFpOp, VIntOp, VMaskOp, VMulOp, VScalar,
};
use coyote_isa::{FReg, Sew, VReg, XReg};

use crate::hart::Hart;
use crate::mem::MemoryIo;

/// One data-memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// `true` for stores (and the store half of atomics).
    pub write: bool,
    /// `true` for read-modify-write accesses (writing atomics): the
    /// destination register carries the pre-store memory value, so it
    /// depends on the line fill exactly like a load even though the
    /// access also writes.
    pub rmw: bool,
}

/// Destination register written by an instruction, for scoreboarding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// Integer register.
    X(XReg),
    /// Floating-point register.
    F(FReg),
    /// Vector register group (base register + group length).
    V(VReg, u8),
}

/// Environment-call request raised by `ecall` under the proxy-kernel
/// convention Coyote's baremetal kernels use (`a7` = syscall number).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ecall {
    /// `a7 = 93`: exit with the code in `a0`.
    Exit(i64),
    /// `a7 = 64`: write the byte in `a0` to the console.
    PutChar(u8),
    /// Any other syscall number (treated as a no-op by the simulator).
    Unknown(u64),
}

/// Result of executing one instruction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Effects {
    /// Destination register, if any, for RAW tracking of loads.
    pub dest: Option<Dest>,
    /// Raised environment call, if the instruction was `ecall`.
    pub ecall: Option<Ecall>,
    /// Whether control flow was redirected (taken branch or jump).
    pub branched: bool,
}

/// Error from executing an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A vector operation ran with a SEW the unit does not support.
    UnsupportedSew {
        /// The current SEW.
        sew: Sew,
        /// The operation family that rejected it.
        what: &'static str,
    },
    /// A vector FP operation needs SEW=64.
    FpVectorNeedsE64,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnsupportedSew { sew, what } => {
                write!(f, "unsupported element width {sew} for {what}")
            }
            ExecError::FpVectorNeedsE64 => {
                write!(f, "vector floating-point requires e64 elements")
            }
        }
    }
}

impl std::error::Error for ExecError {}

pub use coyote_isa::RegSet;

/// Vector register group length implied by the hart's current LMUL.
fn group_len(hart: &Hart) -> u8 {
    hart.vtype.lmul.group_len() as u8
}

/// Registers read by `inst` (for RAW-hazard detection).
#[must_use]
pub fn uses(inst: &Inst, hart: &Hart) -> RegSet {
    coyote_isa::predecode::uses_with_group(inst, group_len(hart))
}

/// Registers written by `inst` (for WAW-hazard detection against pending
/// fills).
#[must_use]
pub fn defs(inst: &Inst, hart: &Hart) -> RegSet {
    coyote_isa::predecode::defs_with_group(inst, group_len(hart))
}

fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << (b & 63),
        AluOp::Slt => u64::from((a as i64) < (b as i64)),
        AluOp::Sltu => u64::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> (b & 63),
        AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => ((i128::from(a as i64) * i128::from(b as i64)) >> 64) as u64,
        AluOp::Mulhsu => ((i128::from(a as i64) * i128::from(b)) >> 64) as u64,
        AluOp::Mulhu => ((u128::from(a) * u128::from(b)) >> 64) as u64,
        AluOp::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64
            } else {
                (a / b) as u64
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                (a % b) as u64
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

fn alu_w(op: AluWOp, a: u64, b: u64) -> u64 {
    let a32 = a as i32;
    let b32 = b as i32;
    let result = match op {
        AluWOp::Addw => a32.wrapping_add(b32),
        AluWOp::Subw => a32.wrapping_sub(b32),
        AluWOp::Sllw => a32.wrapping_shl(b as u32 & 31),
        AluWOp::Srlw => ((a32 as u32).wrapping_shr(b as u32 & 31)) as i32,
        AluWOp::Sraw => a32.wrapping_shr(b as u32 & 31),
        AluWOp::Mulw => a32.wrapping_mul(b32),
        AluWOp::Divw => {
            if b32 == 0 {
                -1
            } else if a32 == i32::MIN && b32 == -1 {
                a32
            } else {
                a32 / b32
            }
        }
        AluWOp::Divuw => {
            if b32 == 0 {
                -1
            } else {
                ((a32 as u32) / (b32 as u32)) as i32
            }
        }
        AluWOp::Remw => {
            if b32 == 0 {
                a32
            } else if a32 == i32::MIN && b32 == -1 {
                0
            } else {
                a32 % b32
            }
        }
        AluWOp::Remuw => {
            if b32 == 0 {
                a32
            } else {
                ((a32 as u32) % (b32 as u32)) as i32
            }
        }
    };
    result as i64 as u64
}

fn load_value<M: MemoryIo>(mem: &mut M, addr: u64, width: MemWidth, signed: bool) -> u64 {
    match (width, signed) {
        (MemWidth::B, true) => mem.read_u8(addr) as i8 as i64 as u64,
        (MemWidth::B, false) => u64::from(mem.read_u8(addr)),
        (MemWidth::H, true) => mem.read_u16(addr) as i16 as i64 as u64,
        (MemWidth::H, false) => u64::from(mem.read_u16(addr)),
        (MemWidth::W, true) => mem.read_u32(addr) as i32 as i64 as u64,
        (MemWidth::W, false) => u64::from(mem.read_u32(addr)),
        (MemWidth::D, _) => mem.read_u64(addr),
    }
}

fn store_value<M: MemoryIo>(mem: &mut M, addr: u64, width: MemWidth, value: u64) {
    match width {
        MemWidth::B => mem.write_u8(addr, value as u8),
        MemWidth::H => mem.write_u16(addr, value as u16),
        MemWidth::W => mem.write_u32(addr, value as u32),
        MemWidth::D => mem.write_u64(addr, value),
    }
}

/// Executes one instruction on `hart`, mutating `mem`.
///
/// `accesses` is cleared and refilled with the data-memory accesses the
/// instruction performed (an out-buffer so the hot simulation loop does
/// not allocate). `cycle`/`instret` feed the counter CSRs.
///
/// # Errors
///
/// Returns [`ExecError`] for vector operations at unsupported element
/// widths. The instruction is not retired in that case.
pub fn execute<M: MemoryIo>(
    hart: &mut Hart,
    mem: &mut M,
    inst: &Inst,
    cycle: u64,
    instret: u64,
    accesses: &mut Vec<MemAccess>,
) -> Result<Effects, ExecError> {
    accesses.clear();
    let mut fx = Effects::default();
    let mut next_pc = hart.pc.wrapping_add(4);

    match *inst {
        Inst::Lui { rd, imm } => {
            hart.set_x(rd, imm as u64);
            fx.dest = Some(Dest::X(rd));
        }
        Inst::Auipc { rd, imm } => {
            hart.set_x(rd, hart.pc.wrapping_add(imm as u64));
            fx.dest = Some(Dest::X(rd));
        }
        Inst::Jal { rd, offset } => {
            hart.set_x(rd, next_pc);
            next_pc = hart.pc.wrapping_add(offset as i64 as u64);
            fx.dest = Some(Dest::X(rd));
            fx.branched = true;
        }
        Inst::Jalr { rd, rs1, offset } => {
            let target = hart.x(rs1).wrapping_add(offset as i64 as u64) & !1;
            hart.set_x(rd, next_pc);
            next_pc = target;
            fx.dest = Some(Dest::X(rd));
            fx.branched = true;
        }
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let (a, b) = (hart.x(rs1), hart.x(rs2));
            let taken = match op {
                BranchOp::Eq => a == b,
                BranchOp::Ne => a != b,
                BranchOp::Lt => (a as i64) < (b as i64),
                BranchOp::Ge => (a as i64) >= (b as i64),
                BranchOp::Ltu => a < b,
                BranchOp::Geu => a >= b,
            };
            if taken {
                next_pc = hart.pc.wrapping_add(offset as i64 as u64);
                fx.branched = true;
            }
        }
        Inst::Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        } => {
            let addr = hart.x(rs1).wrapping_add(offset as i64 as u64);
            hart.set_x(rd, load_value(mem, addr, width, signed));
            accesses.push(MemAccess {
                addr,
                size: width.bytes() as u8,
                write: false,
                rmw: false,
            });
            fx.dest = Some(Dest::X(rd));
        }
        Inst::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let addr = hart.x(rs1).wrapping_add(offset as i64 as u64);
            store_value(mem, addr, width, hart.x(rs2));
            accesses.push(MemAccess {
                addr,
                size: width.bytes() as u8,
                write: true,
                rmw: false,
            });
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            hart.set_x(rd, alu(op, hart.x(rs1), imm as u64));
            fx.dest = Some(Dest::X(rd));
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            hart.set_x(rd, alu(op, hart.x(rs1), hart.x(rs2)));
            fx.dest = Some(Dest::X(rd));
        }
        Inst::OpImm32 { op, rd, rs1, imm } => {
            hart.set_x(rd, alu_w(op, hart.x(rs1), imm as u64));
            fx.dest = Some(Dest::X(rd));
        }
        Inst::Op32 { op, rd, rs1, rs2 } => {
            hart.set_x(rd, alu_w(op, hart.x(rs1), hart.x(rs2)));
            fx.dest = Some(Dest::X(rd));
        }
        Inst::Fence => {}
        Inst::Ecall => {
            let number = hart.x(XReg::new(17).expect("a7"));
            let arg = hart.x(XReg::A0);
            fx.ecall = Some(match number {
                93 => Ecall::Exit(arg as i64),
                64 => Ecall::PutChar(arg as u8),
                other => Ecall::Unknown(other),
            });
        }
        Inst::Ebreak => {
            fx.ecall = Some(Ecall::Exit(-1));
        }
        Inst::Csr { op, rd, csr, src } => {
            let old = hart.read_csr(csr, cycle, instret);
            let operand = match src {
                CsrSrc::Reg(rs1) => hart.x(rs1),
                CsrSrc::Imm(z) => u64::from(z),
            };
            let new = match op {
                CsrOp::Rw => Some(operand),
                CsrOp::Rs => (operand != 0).then_some(old | operand),
                CsrOp::Rc => (operand != 0).then_some(old & !operand),
            };
            if let Some(v) = new {
                hart.write_csr(csr, v);
            }
            hart.set_x(rd, old);
            fx.dest = Some(Dest::X(rd));
        }
        Inst::Amo {
            op,
            width,
            rd,
            rs1,
            rs2,
        } => {
            let addr = hart.x(rs1);
            let old = load_value(mem, addr, width, true);
            let src = hart.x(rs2);
            let new = match op {
                AmoOp::Lr => None,
                AmoOp::Sc => Some(src),
                AmoOp::Swap => Some(src),
                AmoOp::Add => Some(old.wrapping_add(src)),
                AmoOp::Xor => Some(old ^ src),
                AmoOp::And => Some(old & src),
                AmoOp::Or => Some(old | src),
                AmoOp::Min => Some(if (old as i64) <= (src as i64) {
                    old
                } else {
                    src
                }),
                AmoOp::Max => Some(if (old as i64) >= (src as i64) {
                    old
                } else {
                    src
                }),
                AmoOp::Minu => Some(old.min(src)),
                AmoOp::Maxu => Some(old.max(src)),
            };
            let is_write = new.is_some();
            if let Some(v) = new {
                store_value(mem, addr, width, v);
            }
            // sc writes rd = 0 (success: the in-order single-memory model
            // makes every reservation succeed); others return the old value.
            hart.set_x(rd, if op == AmoOp::Sc { 0 } else { old });
            accesses.push(MemAccess {
                addr,
                size: width.bytes() as u8,
                write: is_write,
                rmw: is_write,
            });
            fx.dest = Some(Dest::X(rd));
        }
        Inst::Fld { rd, rs1, offset } => {
            let addr = hart.x(rs1).wrapping_add(offset as i64 as u64);
            hart.set_f_bits(rd, mem.read_u64(addr));
            accesses.push(MemAccess {
                addr,
                size: 8,
                write: false,
                rmw: false,
            });
            fx.dest = Some(Dest::F(rd));
        }
        Inst::Fsd { rs2, rs1, offset } => {
            let addr = hart.x(rs1).wrapping_add(offset as i64 as u64);
            mem.write_u64(addr, hart.f_bits(rs2));
            accesses.push(MemAccess {
                addr,
                size: 8,
                write: true,
                rmw: false,
            });
        }
        Inst::FpOp { op, rd, rs1, rs2 } => {
            let (a, b) = (hart.f(rs1), hart.f(rs2));
            let result = match op {
                FpOp::Add => a + b,
                FpOp::Sub => a - b,
                FpOp::Mul => a * b,
                FpOp::Div => a / b,
                FpOp::Sgnj => a.copysign(b),
                FpOp::Sgnjn => a.copysign(-b),
                FpOp::Sgnjx => f64::from_bits(a.to_bits() ^ (b.to_bits() & (1 << 63))),
                FpOp::Min => a.min(b),
                FpOp::Max => a.max(b),
            };
            hart.set_f(rd, result);
            fx.dest = Some(Dest::F(rd));
        }
        Inst::FpFma {
            op,
            rd,
            rs1,
            rs2,
            rs3,
        } => {
            let (a, b, c) = (hart.f(rs1), hart.f(rs2), hart.f(rs3));
            let result = match op {
                FmaOp::Madd => a.mul_add(b, c),
                FmaOp::Msub => a.mul_add(b, -c),
                FmaOp::Nmsub => (-a).mul_add(b, c),
                FmaOp::Nmadd => (-a).mul_add(b, -c),
            };
            hart.set_f(rd, result);
            fx.dest = Some(Dest::F(rd));
        }
        Inst::FpCmp { op, rd, rs1, rs2 } => {
            let (a, b) = (hart.f(rs1), hart.f(rs2));
            let result = match op {
                FpCmpOp::Eq => a == b,
                FpCmpOp::Lt => a < b,
                FpCmpOp::Le => a <= b,
            };
            hart.set_x(rd, u64::from(result));
            fx.dest = Some(Dest::X(rd));
        }
        Inst::FpCvt { op, rd, rs1 } => match op {
            FpCvtOp::DFromL => {
                let x = XReg::new(rs1).unwrap_or(XReg::ZERO);
                let f = FReg::new(rd).unwrap_or_default();
                hart.set_f(f, hart.x(x) as i64 as f64);
                fx.dest = Some(Dest::F(f));
            }
            FpCvtOp::DFromLu => {
                let x = XReg::new(rs1).unwrap_or(XReg::ZERO);
                let f = FReg::new(rd).unwrap_or_default();
                hart.set_f(f, hart.x(x) as f64);
                fx.dest = Some(Dest::F(f));
            }
            FpCvtOp::DFromW => {
                let x = XReg::new(rs1).unwrap_or(XReg::ZERO);
                let f = FReg::new(rd).unwrap_or_default();
                hart.set_f(f, hart.x(x) as i32 as f64);
                fx.dest = Some(Dest::F(f));
            }
            FpCvtOp::LFromD => {
                let f = FReg::new(rs1).unwrap_or_default();
                let x = XReg::new(rd).unwrap_or(XReg::ZERO);
                hart.set_x(x, hart.f(f) as i64 as u64);
                fx.dest = Some(Dest::X(x));
            }
            FpCvtOp::LuFromD => {
                let f = FReg::new(rs1).unwrap_or_default();
                let x = XReg::new(rd).unwrap_or(XReg::ZERO);
                hart.set_x(x, hart.f(f) as u64);
                fx.dest = Some(Dest::X(x));
            }
            FpCvtOp::WFromD => {
                let f = FReg::new(rs1).unwrap_or_default();
                let x = XReg::new(rd).unwrap_or(XReg::ZERO);
                hart.set_x(x, hart.f(f) as i32 as i64 as u64);
                fx.dest = Some(Dest::X(x));
            }
        },
        Inst::FmvXD { rd, rs1 } => {
            hart.set_x(rd, hart.f_bits(rs1));
            fx.dest = Some(Dest::X(rd));
        }
        Inst::FmvDX { rd, rs1 } => {
            hart.set_f_bits(rd, hart.x(rs1));
            fx.dest = Some(Dest::F(rd));
        }
        Inst::Vsetvli { rd, rs1, vtype } => {
            let avl = if rs1 == XReg::ZERO {
                if rd == XReg::ZERO {
                    hart.vl // change vtype only, keep vl
                } else {
                    u64::MAX // request the maximum
                }
            } else {
                hart.x(rs1)
            };
            hart.vtype = vtype;
            hart.vl = avl.min(vtype.vlmax(hart.vlen_bits()));
            hart.set_x(rd, hart.vl);
            fx.dest = Some(Dest::X(rd));
        }
        Inst::Vsetivli { rd, avl, vtype } => {
            hart.vtype = vtype;
            hart.vl = u64::from(avl).min(vtype.vlmax(hart.vlen_bits()));
            hart.set_x(rd, hart.vl);
            fx.dest = Some(Dest::X(rd));
        }
        Inst::Vsetvl { rd, rs1, rs2 } => {
            let vtype = coyote_isa::VType::from_bits(hart.x(rs2)).unwrap_or_default();
            let avl = if rs1 == XReg::ZERO {
                u64::MAX
            } else {
                hart.x(rs1)
            };
            hart.vtype = vtype;
            hart.vl = avl.min(vtype.vlmax(hart.vlen_bits()));
            hart.set_x(rd, hart.vl);
            fx.dest = Some(Dest::X(rd));
        }
        Inst::VLoad {
            vd,
            rs1,
            mode,
            eew,
            vm,
        } => {
            let base = hart.x(rs1);
            let bytes = eew.bytes();
            for i in 0..hart.vl {
                if !vm && !hart.v0_mask_bit(i) {
                    continue;
                }
                let addr = vector_elem_addr(hart, base, mode, eew, i);
                let mut buf = [0u8; 8];
                mem.read_bytes(addr, &mut buf[..bytes as usize]);
                hart.set_v_elem(vd, i, bytes, u64::from_le_bytes(buf));
                accesses.push(MemAccess {
                    addr,
                    size: bytes as u8,
                    write: false,
                    rmw: false,
                });
            }
            fx.dest = Some(Dest::V(vd, vmem_group_len(hart, eew)));
        }
        Inst::VStore {
            vs3,
            rs1,
            mode,
            eew,
            vm,
        } => {
            let base = hart.x(rs1);
            let bytes = eew.bytes();
            for i in 0..hart.vl {
                if !vm && !hart.v0_mask_bit(i) {
                    continue;
                }
                let addr = vector_elem_addr(hart, base, mode, eew, i);
                let value = hart.v_elem(vs3, i, bytes);
                mem.write_bytes(addr, &value.to_le_bytes()[..bytes as usize]);
                accesses.push(MemAccess {
                    addr,
                    size: bytes as u8,
                    write: true,
                    rmw: false,
                });
            }
        }
        Inst::VIntOp {
            op,
            vd,
            vs2,
            src,
            vm,
        } => {
            let src = VIntSrc::from_scalar(hart, src);
            vint_loop(hart, op, vd, vs2, src, vm)?;
            fx.dest = Some(Dest::V(vd, group_len(hart)));
        }
        Inst::VIntOpImm {
            op,
            vd,
            vs2,
            imm,
            vm,
        } => {
            vint_loop(hart, op, vd, vs2, VIntSrc::Imm(imm), vm)?;
            fx.dest = Some(Dest::V(vd, group_len(hart)));
        }
        Inst::VMulOp {
            op,
            vd,
            vs2,
            src,
            vm,
        } => {
            let sew = hart.vtype.sew;
            let bytes = sew.bytes();
            for i in 0..hart.vl {
                if !vm && !hart.v0_mask_bit(i) {
                    continue;
                }
                let a = sext(hart.v_elem(vd, i, bytes), sew);
                let b2 = sext(hart.v_elem(vs2, i, bytes), sew);
                let b1 = match src {
                    VScalar::Vector(v1) => sext(hart.v_elem(v1, i, bytes), sew),
                    VScalar::Xreg(r1) => hart.x(r1) as i64,
                };
                let result = vmul_op(op, a, b1, b2, sew);
                hart.set_v_elem(vd, i, bytes, result as u64);
            }
            fx.dest = Some(Dest::V(vd, group_len(hart)));
        }
        Inst::VFpOp {
            op,
            vd,
            vs2,
            src,
            vm,
        } => {
            if hart.vtype.sew != Sew::E64 {
                return Err(ExecError::FpVectorNeedsE64);
            }
            for i in 0..hart.vl {
                if !vm && !hart.v0_mask_bit(i) {
                    continue;
                }
                let acc = f64::from_bits(hart.v_elem(vd, i, 8));
                let b2 = f64::from_bits(hart.v_elem(vs2, i, 8));
                let b1 = match src {
                    VFScalar::Vector(v1) => f64::from_bits(hart.v_elem(v1, i, 8)),
                    VFScalar::Freg(r1) => hart.f(r1),
                };
                let result = match op {
                    VFpOp::Add => b2 + b1,
                    VFpOp::Sub => b2 - b1,
                    VFpOp::Mul => b2 * b1,
                    VFpOp::Div => b2 / b1,
                    VFpOp::Min => b2.min(b1),
                    VFpOp::Max => b2.max(b1),
                    VFpOp::Sgnj => b2.copysign(b1),
                    VFpOp::Macc => b1.mul_add(b2, acc),
                };
                hart.set_v_elem(vd, i, 8, result.to_bits());
            }
            fx.dest = Some(Dest::V(vd, group_len(hart)));
        }
        Inst::VRedSum { vd, vs2, vs1, vm } => {
            let sew = hart.vtype.sew;
            let bytes = sew.bytes();
            let mut acc = hart.v_elem(vs1, 0, bytes);
            for i in 0..hart.vl {
                if !vm && !hart.v0_mask_bit(i) {
                    continue;
                }
                acc = acc.wrapping_add(hart.v_elem(vs2, i, bytes));
            }
            acc &= mask_for(sew);
            hart.set_v_elem(vd, 0, bytes, acc);
            fx.dest = Some(Dest::V(vd, 1));
        }
        Inst::VFRedSum { vd, vs2, vs1, vm } => {
            if hart.vtype.sew != Sew::E64 {
                return Err(ExecError::FpVectorNeedsE64);
            }
            let mut acc = f64::from_bits(hart.v_elem(vs1, 0, 8));
            for i in 0..hart.vl {
                if !vm && !hart.v0_mask_bit(i) {
                    continue;
                }
                acc += f64::from_bits(hart.v_elem(vs2, i, 8));
            }
            hart.set_v_elem(vd, 0, 8, acc.to_bits());
            fx.dest = Some(Dest::V(vd, 1));
        }
        Inst::VMvVV { vd, vs1 } => {
            let bytes = hart.vtype.sew.bytes();
            for i in 0..hart.vl {
                let v = hart.v_elem(vs1, i, bytes);
                hart.set_v_elem(vd, i, bytes, v);
            }
            fx.dest = Some(Dest::V(vd, group_len(hart)));
        }
        Inst::VMvVX { vd, rs1 } => {
            let bytes = hart.vtype.sew.bytes();
            let v = hart.x(rs1);
            for i in 0..hart.vl {
                hart.set_v_elem(vd, i, bytes, v);
            }
            fx.dest = Some(Dest::V(vd, group_len(hart)));
        }
        Inst::VMvVI { vd, imm } => {
            let bytes = hart.vtype.sew.bytes();
            for i in 0..hart.vl {
                hart.set_v_elem(vd, i, bytes, imm as i64 as u64);
            }
            fx.dest = Some(Dest::V(vd, group_len(hart)));
        }
        Inst::VFMvVF { vd, rs1 } => {
            if hart.vtype.sew != Sew::E64 {
                return Err(ExecError::FpVectorNeedsE64);
            }
            let bits = hart.f_bits(rs1);
            for i in 0..hart.vl {
                hart.set_v_elem(vd, i, 8, bits);
            }
            fx.dest = Some(Dest::V(vd, group_len(hart)));
        }
        Inst::VMvXS { rd, vs2 } => {
            let sew = hart.vtype.sew;
            let value = sext(hart.v_elem(vs2, 0, sew.bytes()), sew) as u64;
            hart.set_x(rd, value);
            fx.dest = Some(Dest::X(rd));
        }
        Inst::VMvSX { vd, rs1 } => {
            let bytes = hart.vtype.sew.bytes();
            hart.set_v_elem(vd, 0, bytes, hart.x(rs1));
            fx.dest = Some(Dest::V(vd, 1));
        }
        Inst::VFMvFS { rd, vs2 } => {
            hart.set_f_bits(rd, hart.v_elem(vs2, 0, 8));
            fx.dest = Some(Dest::F(rd));
        }
        Inst::VFMvSF { vd, rs1 } => {
            hart.set_v_elem(vd, 0, 8, hart.f_bits(rs1));
            fx.dest = Some(Dest::V(vd, 1));
        }
        Inst::Vid { vd, vm } => {
            let bytes = hart.vtype.sew.bytes();
            for i in 0..hart.vl {
                if !vm && !hart.v0_mask_bit(i) {
                    continue;
                }
                hart.set_v_elem(vd, i, bytes, i);
            }
            fx.dest = Some(Dest::V(vd, group_len(hart)));
        }
        Inst::VMaskCmp {
            op,
            vd,
            vs2,
            src,
            vm,
        } => {
            let sew = hart.vtype.sew;
            let bytes = sew.bytes();
            for i in 0..hart.vl {
                if !vm && !hart.v0_mask_bit(i) {
                    continue;
                }
                let a = hart.v_elem(vs2, i, bytes);
                let b = match src {
                    VScalar::Vector(v1) => hart.v_elem(v1, i, bytes),
                    VScalar::Xreg(r1) => hart.x(r1) & mask_for(sew),
                };
                hart.set_v_bit(vd, i, vint_compare(op, a, b, sew));
            }
            fx.dest = Some(Dest::V(vd, 1));
        }
        Inst::VMaskCmpImm {
            op,
            vd,
            vs2,
            imm,
            vm,
        } => {
            let sew = hart.vtype.sew;
            let bytes = sew.bytes();
            let b = (imm as i64 as u64) & mask_for(sew);
            for i in 0..hart.vl {
                if !vm && !hart.v0_mask_bit(i) {
                    continue;
                }
                let a = hart.v_elem(vs2, i, bytes);
                hart.set_v_bit(vd, i, vint_compare(op, a, b, sew));
            }
            fx.dest = Some(Dest::V(vd, 1));
        }
        Inst::VFMaskCmp {
            op,
            vd,
            vs2,
            src,
            vm,
        } => {
            if hart.vtype.sew != Sew::E64 {
                return Err(ExecError::FpVectorNeedsE64);
            }
            for i in 0..hart.vl {
                if !vm && !hart.v0_mask_bit(i) {
                    continue;
                }
                let a = f64::from_bits(hart.v_elem(vs2, i, 8));
                let b = match src {
                    VFScalar::Vector(v1) => f64::from_bits(hart.v_elem(v1, i, 8)),
                    VFScalar::Freg(r1) => hart.f(r1),
                };
                let result = match op {
                    VFCmpOp::Eq => a == b,
                    VFCmpOp::Le => a <= b,
                    VFCmpOp::Lt => a < b,
                    VFCmpOp::Ne => a != b,
                    VFCmpOp::Gt => a > b,
                    VFCmpOp::Ge => a >= b,
                };
                hart.set_v_bit(vd, i, result);
            }
            fx.dest = Some(Dest::V(vd, 1));
        }
        Inst::VMaskLogical { op, vd, vs2, vs1 } => {
            for i in 0..hart.vl {
                let a = hart.v_bit(vs2, i);
                let b = hart.v_bit(vs1, i);
                let result = match op {
                    VMaskOp::And => a & b,
                    VMaskOp::Nand => !(a & b),
                    VMaskOp::AndNot => a & !b,
                    VMaskOp::Xor => a ^ b,
                    VMaskOp::Or => a | b,
                    VMaskOp::Nor => !(a | b),
                    VMaskOp::OrNot => a | !b,
                    VMaskOp::Xnor => !(a ^ b),
                };
                hart.set_v_bit(vd, i, result);
            }
            fx.dest = Some(Dest::V(vd, 1));
        }
        Inst::VMerge { vd, vs2, src } => {
            let bytes = hart.vtype.sew.bytes();
            for i in 0..hart.vl {
                let value = if hart.v0_mask_bit(i) {
                    match src {
                        VScalar::Vector(v1) => hart.v_elem(v1, i, bytes),
                        VScalar::Xreg(r1) => hart.x(r1) & mask_for(hart.vtype.sew),
                    }
                } else {
                    hart.v_elem(vs2, i, bytes)
                };
                hart.set_v_elem(vd, i, bytes, value);
            }
            fx.dest = Some(Dest::V(vd, group_len(hart)));
        }
        Inst::VMergeImm { vd, vs2, imm } => {
            let sew = hart.vtype.sew;
            let bytes = sew.bytes();
            let set_value = (imm as i64 as u64) & mask_for(sew);
            for i in 0..hart.vl {
                let value = if hart.v0_mask_bit(i) {
                    set_value
                } else {
                    hart.v_elem(vs2, i, bytes)
                };
                hart.set_v_elem(vd, i, bytes, value);
            }
            fx.dest = Some(Dest::V(vd, group_len(hart)));
        }
        Inst::VFMerge { vd, vs2, rs1 } => {
            if hart.vtype.sew != Sew::E64 {
                return Err(ExecError::FpVectorNeedsE64);
            }
            let scalar = hart.f_bits(rs1);
            for i in 0..hart.vl {
                let value = if hart.v0_mask_bit(i) {
                    scalar
                } else {
                    hart.v_elem(vs2, i, 8)
                };
                hart.set_v_elem(vd, i, 8, value);
            }
            fx.dest = Some(Dest::V(vd, group_len(hart)));
        }
        Inst::Vcpop { rd, vs2, vm } => {
            let mut count = 0u64;
            for i in 0..hart.vl {
                if (vm || hart.v0_mask_bit(i)) && hart.v_bit(vs2, i) {
                    count += 1;
                }
            }
            hart.set_x(rd, count);
            fx.dest = Some(Dest::X(rd));
        }
        Inst::Vfirst { rd, vs2, vm } => {
            let mut first = u64::MAX; // -1 when no bit is set
            for i in 0..hart.vl {
                if (vm || hart.v0_mask_bit(i)) && hart.v_bit(vs2, i) {
                    first = i;
                    break;
                }
            }
            hart.set_x(rd, first);
            fx.dest = Some(Dest::X(rd));
        }
    }

    hart.pc = next_pc;
    Ok(fx)
}

/// Register-group length for a vector memory op whose EEW may differ
/// from the configured SEW (EMUL = EEW/SEW × LMUL).
fn vmem_group_len(hart: &Hart, eew: Sew) -> u8 {
    let (num, den) = hart.vtype.lmul.ratio();
    let emul8 = 8 * u64::from(eew.bits()) * num / (u64::from(hart.vtype.sew.bits()) * den);
    (emul8 / 8).clamp(1, 8) as u8
}

fn vector_elem_addr(hart: &Hart, base: u64, mode: VAddrMode, eew: Sew, i: u64) -> u64 {
    match mode {
        VAddrMode::Unit => base + i * eew.bytes(),
        VAddrMode::Strided(rs2) => base.wrapping_add(hart.x(rs2).wrapping_mul(i)),
        VAddrMode::Indexed(vs2) => base.wrapping_add(hart.v_elem(vs2, i, eew.bytes())),
    }
}

#[derive(Clone, Copy)]
enum VIntSrc {
    Vector(VReg),
    Scalar(u64),
    Imm(i8),
}

impl VIntSrc {
    fn from_scalar(hart: &Hart, src: VScalar) -> VIntSrc {
        match src {
            VScalar::Vector(v1) => VIntSrc::Vector(v1),
            VScalar::Xreg(r1) => VIntSrc::Scalar(hart.x(r1)),
        }
    }
}

fn mask_for(sew: Sew) -> u64 {
    match sew {
        Sew::E8 => 0xff,
        Sew::E16 => 0xffff,
        Sew::E32 => 0xffff_ffff,
        Sew::E64 => u64::MAX,
    }
}

fn sext(value: u64, sew: Sew) -> i64 {
    match sew {
        Sew::E8 => value as u8 as i8 as i64,
        Sew::E16 => value as u16 as i16 as i64,
        Sew::E32 => value as u32 as i32 as i64,
        Sew::E64 => value as i64,
    }
}

fn vint_loop(
    hart: &mut Hart,
    op: VIntOp,
    vd: VReg,
    vs2: VReg,
    src: VIntSrc,
    vm: bool,
) -> Result<(), ExecError> {
    let sew = hart.vtype.sew;
    let bytes = sew.bytes();
    let sh_mask = u64::from(sew.bits()) - 1;
    for i in 0..hart.vl {
        if !vm && !hart.v0_mask_bit(i) {
            continue;
        }
        let b2 = hart.v_elem(vs2, i, bytes);
        let b1 = match src {
            VIntSrc::Vector(v1) => hart.v_elem(v1, i, bytes),
            VIntSrc::Scalar(x) => x & mask_for(sew),
            VIntSrc::Imm(v) => (v as i64 as u64) & mask_for(sew),
        };
        let result = match op {
            VIntOp::Add => b2.wrapping_add(b1),
            VIntOp::Sub => b2.wrapping_sub(b1),
            VIntOp::Rsub => b1.wrapping_sub(b2),
            VIntOp::And => b2 & b1,
            VIntOp::Or => b2 | b1,
            VIntOp::Xor => b2 ^ b1,
            VIntOp::Sll => b2 << (b1 & sh_mask),
            VIntOp::Srl => b2 >> (b1 & sh_mask),
            VIntOp::Sra => (sext(b2, sew) >> (b1 & sh_mask)) as u64,
            VIntOp::Min => {
                if sext(b2, sew) <= sext(b1, sew) {
                    b2
                } else {
                    b1
                }
            }
            VIntOp::Max => {
                if sext(b2, sew) >= sext(b1, sew) {
                    b2
                } else {
                    b1
                }
            }
            VIntOp::Minu => b2.min(b1),
            VIntOp::Maxu => b2.max(b1),
        } & mask_for(sew);
        hart.set_v_elem(vd, i, bytes, result);
    }
    Ok(())
}

/// Element compare for the `vmseq` family. `a` is the `vs2` element,
/// `b` the scalar/vector/immediate operand — the spec compares
/// `vs2 OP src`.
fn vint_compare(op: VCmpOp, a: u64, b: u64, sew: Sew) -> bool {
    let (sa, sb) = (sext(a, sew), sext(b, sew));
    match op {
        VCmpOp::Eq => a == b,
        VCmpOp::Ne => a != b,
        VCmpOp::Ltu => a < b,
        VCmpOp::Lt => sa < sb,
        VCmpOp::Leu => a <= b,
        VCmpOp::Le => sa <= sb,
        VCmpOp::Gtu => a > b,
        VCmpOp::Gt => sa > sb,
    }
}

fn vmul_op(op: VMulOp, acc: i64, b1: i64, b2: i64, sew: Sew) -> i64 {
    let bits = i64::from(sew.bits());
    match op {
        VMulOp::Mul => b2.wrapping_mul(b1),
        VMulOp::Mulh => ((i128::from(b2) * i128::from(b1)) >> bits) as i64,
        VMulOp::Mulhu => {
            let ua = (b2 as u64) & mask_for(sew);
            let ub = (b1 as u64) & mask_for(sew);
            ((u128::from(ua) * u128::from(ub)) >> bits) as i64
        }
        VMulOp::Div => {
            if b1 == 0 {
                -1
            } else if b2 == i64::MIN && b1 == -1 {
                b2
            } else {
                b2 / b1
            }
        }
        VMulOp::Divu => {
            let ua = (b2 as u64) & mask_for(sew);
            let ub = (b1 as u64) & mask_for(sew);
            ua.checked_div(ub).map_or(-1, |q| q as i64)
        }
        VMulOp::Rem => {
            if b1 == 0 {
                b2
            } else if b2 == i64::MIN && b1 == -1 {
                0
            } else {
                b2 % b1
            }
        }
        VMulOp::Remu => {
            let ua = (b2 as u64) & mask_for(sew);
            let ub = (b1 as u64) & mask_for(sew);
            if ub == 0 {
                ua as i64
            } else {
                (ua % ub) as i64
            }
        }
        VMulOp::Macc => acc.wrapping_add(b1.wrapping_mul(b2)),
    }
}
