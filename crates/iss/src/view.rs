//! Buffered per-core memory view for the deterministic parallel
//! execute phase.
//!
//! During a parallel cycle every core steps against a read-only
//! snapshot of pre-cycle memory through a [`BufferedMemory`]: reads are
//! answered from the shared base patched with the core's own same-cycle
//! stores, stores land in a private [`StoreBuffer`] instead of the
//! shared memory, and both are logged. After the join the orchestrator
//! uses the logs to detect same-cycle cross-core overlaps (which force
//! a sequential re-execution of the cycle) and, when there are none,
//! commits each store buffer in core order — reproducing the sequential
//! schedule's memory image byte for byte.

use crate::mem::{AddrMap, MemoryIo, SparseMemory};

/// One logged store: up to 8 bytes at `addr`. Wider writes are split
/// into several records by [`BufferedMemory::write_bytes`].
#[derive(Debug, Clone, Copy)]
struct StoreRecord {
    addr: u64,
    len: u32,
    bytes: [u8; 8],
}

/// A core's private same-cycle memory activity: an ordered store log
/// (replayed verbatim at commit), a byte overlay answering the core's
/// own reads, and the read ranges needed for conflict detection.
#[derive(Debug, Default)]
pub struct StoreBuffer {
    overlay: AddrMap<u8>,
    log: Vec<StoreRecord>,
    reads: Vec<(u64, u32)>,
}

impl StoreBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> StoreBuffer {
        StoreBuffer::default()
    }

    /// Whether the core neither read nor wrote data memory this cycle.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.log.is_empty() && self.reads.is_empty()
    }

    /// Byte ranges read this cycle, as `(start, len)` in access order.
    #[must_use]
    pub fn reads(&self) -> &[(u64, u32)] {
        &self.reads
    }

    /// Byte ranges written this cycle, as `(start, len)` in store
    /// order.
    pub fn writes(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.log.iter().map(|r| (r.addr, r.len))
    }

    /// Replays the store log into `mem` in program order. The ordered
    /// log (not the overlay) is the commit source, so the shared memory
    /// sees exactly the writes the sequential schedule would have
    /// performed, in the same order.
    pub fn commit(&self, mem: &mut SparseMemory) {
        for record in &self.log {
            mem.write_bytes(record.addr, &record.bytes[..record.len as usize]);
        }
    }
}

/// Read-only view of shared memory plus a core-private store buffer.
#[derive(Debug)]
pub struct BufferedMemory<'a> {
    base: &'a SparseMemory,
    buf: StoreBuffer,
}

impl<'a> BufferedMemory<'a> {
    /// A fresh view over pre-cycle memory.
    #[must_use]
    pub fn new(base: &'a SparseMemory) -> BufferedMemory<'a> {
        BufferedMemory {
            base,
            buf: StoreBuffer::new(),
        }
    }

    /// Consumes the view, returning the accumulated buffer.
    #[must_use]
    pub fn into_buffer(self) -> StoreBuffer {
        self.buf
    }
}

impl MemoryIo for BufferedMemory<'_> {
    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        self.base.read_bytes(addr, buf);
        if !self.buf.overlay.is_empty() {
            for (i, byte) in buf.iter_mut().enumerate() {
                if let Some(own) = self.buf.overlay.get(&(addr + i as u64)) {
                    *byte = *own;
                }
            }
        }
        self.buf.reads.push((addr, buf.len() as u32));
    }

    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (chunk_no, chunk) in bytes.chunks(8).enumerate() {
            let start = addr + (chunk_no * 8) as u64;
            let mut record = StoreRecord {
                addr: start,
                len: chunk.len() as u32,
                bytes: [0; 8],
            };
            record.bytes[..chunk.len()].copy_from_slice(chunk);
            self.buf.log.push(record);
            for (i, byte) in chunk.iter().enumerate() {
                self.buf.overlay.insert(start + i as u64, *byte);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_base_until_overwritten() {
        let mut base = SparseMemory::new();
        base.write_u64(0x1000, 0xdead_beef_cafe_f00d);
        let mut view = BufferedMemory::new(&base);
        assert_eq!(view.read_u64(0x1000), 0xdead_beef_cafe_f00d);
        view.write_u32(0x1000, 0x1234_5678);
        assert_eq!(view.read_u32(0x1000), 0x1234_5678);
        assert_eq!(view.read_u64(0x1000), 0xdead_beef_1234_5678);
        // Base untouched until commit.
        assert_eq!(base.read_u64(0x1000), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn commit_replays_stores_in_order() {
        let base = SparseMemory::new();
        let mut view = BufferedMemory::new(&base);
        view.write_u64(0x2000, 1);
        view.write_u64(0x2000, 2); // later store wins
        view.write_u8(0x2007, 9);
        let buf = view.into_buffer();
        let mut mem = SparseMemory::new();
        buf.commit(&mut mem);
        assert_eq!(mem.read_u64(0x2000), (9u64 << 56) | 2);
    }

    #[test]
    fn wide_write_splits_into_records() {
        let base = SparseMemory::new();
        let mut view = BufferedMemory::new(&base);
        let data: Vec<u8> = (0..20u8).collect();
        view.write_bytes(0x3000, &data);
        let buf = view.into_buffer();
        assert_eq!(buf.writes().count(), 3); // 8 + 8 + 4
        let mut mem = SparseMemory::new();
        buf.commit(&mut mem);
        let mut out = [0u8; 20];
        mem.read_bytes(0x3000, &mut out);
        assert_eq!(&out[..], &data[..]);
    }

    #[test]
    fn logs_reads_and_writes() {
        let mut base = SparseMemory::new();
        base.write_u32(0x4000, 7);
        let mut view = BufferedMemory::new(&base);
        let _ = view.read_u32(0x4000);
        view.write_u16(0x4100, 3);
        let buf = view.into_buffer();
        assert_eq!(buf.reads(), &[(0x4000, 4)]);
        assert_eq!(buf.writes().collect::<Vec<_>>(), vec![(0x4100, 2)]);
        assert!(!buf.is_empty());
    }
}
