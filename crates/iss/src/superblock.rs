//! Dynamic half of the superblock translation engine: run validation
//! and the fused dispatch state machine.
//!
//! The static half (`coyote_isa::superblock`) classifies every text
//! slot and precomputes `run_len`, the longest straight-line fusable
//! run starting there. This module decides, against the *live* machine
//! state, whether the next `run_len` instructions can retire through
//! the stripped-down fused path with bit-identical observable
//! behaviour:
//!
//! * every instruction line of the run is resident in the L1I (probing
//!   a resident line never evicts, so residency is stable for the
//!   whole run);
//! * no instruction's use/def set is blocked by the scoreboard — exact
//!   because fused runs never *acquire* scoreboard references, so the
//!   pending mask can only shrink mid-run (fills completing), never
//!   grow: an instruction that is unblocked at validation time stays
//!   unblocked when its turn comes;
//! * every memory access is a guaranteed L1D hit whose address is
//!   computable now: base register not written earlier in the run,
//!   line resident, and — crucially — *not* in the pending-fill table
//!   (a hit on an in-flight line must wait for the data);
//! * no store lands in the text segment (self-modifying code takes
//!   the per-instruction path, which detects and invalidates);
//! * no fill-corruption fault is armed (the oracle's mutation hook
//!   rewrites a register mid-flight, which would invalidate the
//!   addresses computed here).
//!
//! A run that fails any check is simply truncated at the first
//! uncertain instruction; prefixes of a valid run are valid runs. The
//! fused path itself lives in [`crate::core::Core`]; this file is
//! pinned by the `predecode-bypass` lint so the dispatch/fallback
//! boundary cannot be silently bypassed.

use coyote_isa::superblock::FuseClass;
use coyote_isa::{sweep_conflicts, AccessInterval};

use crate::cache::Cache;
use crate::core::DecodedText;
use crate::exec::RegSet;
use crate::hart::Hart;
use crate::mem::AddrMap;
use crate::scoreboard::Scoreboard;

/// Cap on validated run length: bounds validation cost per attempt and
/// the staleness window of the residency facts it relies on.
pub const MAX_RUN: u32 = 64;

/// Why a validation or template-arm walk stopped where it did — the
/// window-abort and re-arm reason taxonomy the host profiler reports.
///
/// Purely host-diagnostic: recording a stop never changes what the
/// walk validates, and the counters live outside `CoreStats` so the
/// determinism digest cannot see them. Two further abort reasons exist
/// only at the orchestrator (they involve more than one core):
/// cross-core access conflicts and text-segment invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseStop {
    /// The walk reached the end of the static run: nothing dynamic
    /// truncated it.
    RunEnd,
    /// No fusable run starts here (static run shorter than two
    /// instructions, or the PC is outside the predecoded text).
    TooShort,
    /// An instruction's use/def set was blocked by the scoreboard.
    ScoreboardBusy,
    /// An accessed data line has a fill in flight.
    PendingFill,
    /// An instruction or data line is not resident in its L1.
    LineNotResident,
    /// A memory op's base register is written earlier in the run, so
    /// its address is not knowable at validation time.
    BaseWritten,
    /// A store lands in the text segment (self-modifying code takes
    /// the per-instruction path so invalidation fires).
    TextStore,
}

impl FuseStop {
    /// All stop reasons, in a fixed export order.
    pub const ALL: [FuseStop; 7] = [
        FuseStop::RunEnd,
        FuseStop::TooShort,
        FuseStop::ScoreboardBusy,
        FuseStop::PendingFill,
        FuseStop::LineNotResident,
        FuseStop::BaseWritten,
        FuseStop::TextStore,
    ];

    /// Number of stop reasons (sizes per-reason counter arrays).
    pub const COUNT: usize = FuseStop::ALL.len();

    /// Stable snake_case name used as the JSON key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FuseStop::RunEnd => "run_end",
            FuseStop::TooShort => "too_short",
            FuseStop::ScoreboardBusy => "scoreboard_busy",
            FuseStop::PendingFill => "pending_fill",
            FuseStop::LineNotResident => "line_not_resident",
            FuseStop::BaseWritten => "base_written",
            FuseStop::TextStore => "text_store",
        }
    }
}

/// Host-diagnostic counters for one core's fused dispatch: how often
/// runs were armed, from which path, and why walks stopped. Like
/// `fused_retired`, deliberately outside `CoreStats` so the
/// determinism digest cannot vary with profiling; the orchestrator
/// aggregates these in core-index order when exporting a profile.
#[derive(Debug, Clone)]
pub struct FuseDiag {
    /// Arm attempts that ran the cached-template fast path.
    pub template_arms: u64,
    /// Arm attempts that ran the full validation walk.
    pub full_validations: u64,
    /// Attempts that armed a run of length >= 2.
    pub armed_runs: u64,
    /// Walk-stop counts indexed by `FuseStop as usize`
    /// ([`FuseStop::ALL`] order).
    pub stops: [u64; FuseStop::COUNT],
    /// Reason the most recent walk stopped (what the orchestrator
    /// reports when a multi-core window dies on a failed re-arm).
    pub last_stop: FuseStop,
    /// Exact armed-run-length distribution: `run_len_counts[n]` counts
    /// runs armed at length `n` (lengths are `2..=MAX_RUN`).
    pub run_len_counts: [u64; MAX_RUN as usize + 1],
}

impl Default for FuseDiag {
    fn default() -> FuseDiag {
        FuseDiag {
            template_arms: 0,
            full_validations: 0,
            armed_runs: 0,
            stops: [0; FuseStop::COUNT],
            last_stop: FuseStop::RunEnd,
            run_len_counts: [0; MAX_RUN as usize + 1],
        }
    }
}

impl FuseDiag {
    /// Records the outcome of one arm attempt: the length it armed
    /// (0 = per-instruction path) and why the walk stopped there.
    pub fn record_arm(&mut self, len: u32, stop: FuseStop) {
        self.stops[stop as usize] += 1;
        self.last_stop = stop;
        if len > 0 {
            self.armed_runs += 1;
            if let Some(slot) = self.run_len_counts.get_mut(len as usize) {
                *slot += 1;
            }
        }
    }
}

/// One pre-validated memory access of a fused run.
///
/// `pos` is the instruction's position within the validated run (0 =
/// first). The orchestrator uses these to prove that a multi-cycle
/// window's cross-core accesses are disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedAccess {
    /// Position within the validated run.
    pub pos: u32,
    /// Byte address (computed from pre-run register values, exact
    /// because the base register is not written earlier in the run).
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// `true` for stores.
    pub write: bool,
    /// Flat index of the accessed line in the L1D (from
    /// [`crate::cache::Cache::probe_way`] at validation time; stays
    /// valid for the whole run because nothing evicts mid-run). Lets
    /// the fused retirement replay the guaranteed hit without the
    /// associative scan.
    pub way: u32,
}

/// Live machine state a validation walk reads. Borrowed piecewise so
/// [`crate::core::Core`] can lend its fields without a self-borrow
/// conflict.
pub struct ValidateCtx<'a> {
    /// The hart's architectural registers (for access addresses).
    pub hart: &'a Hart,
    /// L1 instruction cache (residency only).
    pub icache: &'a Cache,
    /// L1 data cache (residency only).
    pub dcache: &'a Cache,
    /// RAW/WAW scoreboard.
    pub scoreboard: &'a Scoreboard,
    /// Data lines with fills in flight.
    pub pending_data: &'a AddrMap<RegSet>,
}

/// Validates the longest fusable run starting at `pc`, recording its
/// pre-computed memory accesses into `accesses` (cleared first).
///
/// Returns the number of instructions that may retire through the
/// fused path — `0` when fusion is not worthwhile (runs shorter than
/// two instructions gain nothing over the per-instruction path).
#[must_use]
pub fn validate_run(
    text: &DecodedText,
    pc: u64,
    ctx: &ValidateCtx<'_>,
    accesses: &mut Vec<FusedAccess>,
) -> u32 {
    validate_run_stop(text, pc, ctx, accesses).0
}

/// [`validate_run`] plus the [`FuseStop`] reason the walk stopped
/// where it did. The length is computed identically; the reason is
/// observation only.
#[must_use]
pub fn validate_run_stop(
    text: &DecodedText,
    pc: u64,
    ctx: &ValidateCtx<'_>,
    accesses: &mut Vec<FusedAccess>,
) -> (u32, FuseStop) {
    accesses.clear();
    let Some(start) = text.index_of(pc) else {
        return (0, FuseStop::TooShort);
    };
    let full = text.plan(start).run_len.min(MAX_RUN);
    if full < 2 {
        return (0, FuseStop::TooShort);
    }

    // Hoisted loop invariants: the walk is pure, so an idle scoreboard
    // stays idle (`blocks` is identically false) and an empty
    // pending-fill table stays empty for the whole validation.
    let scoreboard_idle = ctx.scoreboard.is_clear();
    let no_pending_data = ctx.pending_data.is_empty();
    // I-line residency is line-granular: one probe vouches for every
    // slot sharing the line. `u64::MAX` is unaligned, so it can never
    // collide with a real line address.
    let mut checked_iline = u64::MAX;

    let mut written = RegSet::new();
    let mut len = 0u32;
    let mut stop = FuseStop::RunEnd;
    for i in 0..full {
        let idx = start + i as usize;
        let slot_pc = pc + u64::from(i) * 4;
        // Run slots are non-excluded by construction, hence decoded.
        let Some(entry) = text.slot(idx) else { break };
        let iline = ctx.icache.line_addr(slot_pc);
        if iline != checked_iline {
            if !ctx.icache.contains(slot_pc) {
                stop = FuseStop::LineNotResident;
                break;
            }
            checked_iline = iline;
        }
        // Per-instruction hazard check against the *current* mask.
        // Exact: fused runs never acquire, so the mask only shrinks
        // while the run retires.
        if !scoreboard_idle && ctx.scoreboard.blocks(&entry.uses, &entry.defs) {
            stop = FuseStop::ScoreboardBusy;
            break;
        }
        if let FuseClass::Mem(plan) = text.plan(idx).class {
            // The address is only knowable now if nothing earlier in
            // the run redefines the base register.
            let mut base = RegSet::new();
            base.add_x(plan.base);
            if written.intersects(&base) {
                stop = FuseStop::BaseWritten;
                break;
            }
            let addr = ctx
                .hart
                .x(plan.base)
                .wrapping_add(plan.offset as i64 as u64);
            let Some(way) = ctx.dcache.probe_way(addr) else {
                stop = FuseStop::LineNotResident;
                break;
            };
            // A hit on an in-flight line must wait for the data.
            if !no_pending_data && ctx.pending_data.contains_key(&ctx.dcache.line_addr(addr)) {
                stop = FuseStop::PendingFill;
                break;
            }
            // Self-modifying stores go through the per-instruction
            // path so invalidation fires.
            if plan.write && text.overlaps(addr, u64::from(plan.size)) {
                stop = FuseStop::TextStore;
                break;
            }
            accesses.push(FusedAccess {
                pos: i,
                addr,
                size: plan.size,
                write: plan.write,
                way,
            });
        }
        written.insert_all(&entry.defs);
        len = i + 1;
    }

    if len < 2 {
        accesses.clear();
        return (0, stop);
    }
    // Drop accesses of instructions beyond the validated prefix.
    accesses.retain(|access| access.pos < len);
    (len, stop)
}

/// Whether any access in `a`'s first `a_limit` positions overlaps any
/// access in `b`'s first `b_limit` positions at byte granularity with
/// at least one side writing. Used by the orchestrator to prove that a
/// multi-cycle window's cores touch disjoint memory.
#[must_use]
pub fn accesses_conflict(
    a: &[FusedAccess],
    a_skip: u32,
    a_limit: u32,
    b: &[FusedAccess],
    b_skip: u32,
    b_limit: u32,
) -> bool {
    let mut intervals: Vec<AccessInterval> = Vec::new();
    let windowed = |accesses: &[FusedAccess], skip: u32, limit: u32, owner: usize| {
        accesses
            .iter()
            .filter(move |x| x.pos >= skip && x.pos < skip + limit)
            .map(move |x| AccessInterval::new(x.addr, u64::from(x.size), owner, x.write))
            .collect::<Vec<_>>()
    };
    intervals.extend(windowed(a, a_skip, a_limit, 0));
    intervals.extend(windowed(b, b_skip, b_limit, 1));
    let mut open = Vec::new();
    sweep_conflicts(&mut intervals, &mut open)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(pos: u32, addr: u64, size: u8, write: bool) -> FusedAccess {
        FusedAccess {
            pos,
            addr,
            size,
            write,
            way: 0,
        }
    }

    #[test]
    fn conflict_requires_overlap_and_a_write() {
        let a = [access(0, 0x100, 8, true)];
        let b = [access(0, 0x104, 8, false)];
        assert!(accesses_conflict(&a, 0, 4, &b, 0, 4));
        // Disjoint bytes of the same line: no conflict.
        let c = [access(0, 0x108, 8, false)];
        assert!(!accesses_conflict(&a, 0, 4, &c, 0, 4));
        // Read-read overlap: no conflict.
        let d = [access(0, 0x100, 8, false)];
        assert!(!accesses_conflict(&d, 0, 4, &b, 0, 4));
    }

    #[test]
    fn conflict_window_respects_skip_and_limit() {
        let a = [access(5, 0x100, 8, true)];
        let b = [access(1, 0x100, 8, false)];
        // a's access is outside the first 4 positions.
        assert!(!accesses_conflict(&a, 0, 4, &b, 0, 4));
        assert!(accesses_conflict(&a, 4, 4, &b, 0, 4));
        // b's access is before its skip point.
        assert!(!accesses_conflict(&a, 4, 4, &b, 2, 4));
    }
}
