//! Set-associative L1 cache model (true LRU, write-back,
//! write-allocate).
//!
//! Coyote keeps the L1 instruction and data caches inside the functional
//! simulator (the paper does this "to reduce the number of interactions
//! between Spike and Sparta"); only misses cross into the event-driven
//! hierarchy. This model is therefore *probe-only*: it tracks tags and
//! dirty bits, never data (the functional memory holds the values).

use std::fmt;

/// Geometry of an L1 cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// 32 KiB, 8-way, 64 B lines: the conventional L1D of an HPC core.
    #[must_use]
    pub fn default_l1d() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// 16 KiB, 4-way, 64 B lines: the conventional L1I.
    #[must_use]
    pub fn default_l1i() -> CacheConfig {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::validate`]).
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.validate().expect("invalid cache config");
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Checks that the geometry is consistent: powers of two where
    /// required and a capacity that divides evenly into sets.
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() || self.line_bytes < 8 {
            return Err(format!(
                "line size {} must be a power of two >= 8",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return Err("associativity must be at least 1".to_owned());
        }
        let denom = self.ways * self.line_bytes;
        if denom == 0 || !self.size_bytes.is_multiple_of(denom) {
            return Err(format!(
                "capacity {} not divisible by ways*line ({denom})",
                self.size_bytes
            ));
        }
        let sets = self.size_bytes / denom;
        if sets == 0 || !sets.is_power_of_two() {
            return Err(format!("set count {sets} must be a power of two >= 1"));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// Counters exposed by a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probe count that hit.
    pub hits: u64,
    /// Probe count that missed.
    pub misses: u64,
    /// Dirty lines evicted (writebacks generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total probes.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when there were no accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// Result of probing the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Whether the line was present.
    pub hit: bool,
    /// Line-aligned address of a dirty line evicted by the fill
    /// (write-back traffic for the hierarchy).
    pub writeback: Option<u64>,
}

/// A probe-only set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    set_mask: u64,
    line_shift: u32,
    counter: u64,
    stats: CacheStats,
    /// Residency generation: bumped whenever the resident-line set
    /// changes (miss installs, flushes). Hits never bump it, so
    /// `generation()` staying equal proves every previously-resident
    /// line is still resident — the superblock engine uses this to
    /// reuse residency facts across run re-validations.
    gen: u64,
    /// Memo of the most recently touched line `(tag, index into
    /// `lines`)`: sequential code re-probes the same line many times in
    /// a row, and the memo answers those hits without the associative
    /// scan. Every access (hit or install) refreshes it, so it always
    /// names a valid resident line and stays exactly equivalent to the
    /// full probe (same stats, same LRU update).
    last: Option<(u64, u32)>,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`CacheConfig::validate`]; configs are
    /// validated again at simulation construction, so this is a
    /// programming error by then.
    #[must_use]
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        Cache {
            config,
            lines: vec![Line::default(); (sets * config.ways) as usize],
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            counter: 0,
            stats: CacheStats::default(),
            gen: 0,
            last: None,
        }
    }

    /// Geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Line-aligns an address.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    /// Probes for `addr`; on a miss the line is installed immediately
    /// (the timing of the fill is the hierarchy's business, tracked by
    /// the core's pending-miss table). `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> Probe {
        self.counter += 1;
        let tag = addr >> self.line_shift;

        // Same-line repeat: answer from the memo without scanning the
        // set (identical stats and LRU effect to the full probe).
        if let Some((last_tag, last_idx)) = self.last {
            if last_tag == tag {
                let line = &mut self.lines[last_idx as usize];
                line.lru = self.counter;
                line.dirty |= write;
                self.stats.hits += 1;
                return Probe {
                    hit: true,
                    writeback: None,
                };
            }
        }

        let set = (tag & self.set_mask) as usize;
        let ways = self.config.ways as usize;
        let set_lines = &mut self.lines[set * ways..(set + 1) * ways];

        if let Some(way) = set_lines.iter().position(|l| l.valid && l.tag == tag) {
            let line = &mut set_lines[way];
            line.lru = self.counter;
            line.dirty |= write;
            self.stats.hits += 1;
            self.last = Some((tag, (set * ways + way) as u32));
            return Probe {
                hit: true,
                writeback: None,
            };
        }

        self.stats.misses += 1;
        self.gen += 1;
        // Choose victim: an invalid way, else the least recently used.
        let (way, victim) = set_lines
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru + 1 } else { 0 })
            .expect("at least one way");
        let writeback = (victim.valid && victim.dirty).then(|| victim.tag << self.line_shift);
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.counter,
        };
        self.last = Some((tag, (set * ways + way) as u32));
        Probe {
            hit: false,
            writeback,
        }
    }

    /// The residency generation (see the field doc). Equal generations
    /// bracket a span in which no line was installed or evicted.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Flat index of `addr`'s resident line, if resident (no LRU
    /// update, no stats) — the superblock validation probe. The index
    /// stays valid while the line stays resident: hits never relocate
    /// lines, and a resident line is only displaced by an eviction
    /// (which [`Cache::generation`] / the pre-validated run contract
    /// exclude).
    #[must_use]
    pub fn probe_way(&self, addr: u64) -> Option<u32> {
        let tag = addr >> self.line_shift;
        if let Some((last_tag, last_idx)) = self.last {
            if last_tag == tag {
                return Some(last_idx);
            }
        }
        let set = (tag & self.set_mask) as usize;
        let ways = self.config.ways as usize;
        self.lines[set * ways..(set + 1) * ways]
            .iter()
            .position(|l| l.valid && l.tag == tag)
            .map(|way| (set * ways + way) as u32)
    }

    /// Replays a guaranteed hit on the resident line at flat index
    /// `idx` (obtained from [`Cache::probe_way`]): counter, LRU, stats
    /// and dirty evolution identical to [`Cache::access`] hitting that
    /// line, without the associative scan.
    pub fn touch(&mut self, idx: u32, write: bool) {
        self.counter += 1;
        let line = &mut self.lines[idx as usize];
        line.lru = self.counter;
        line.dirty |= write;
        self.stats.hits += 1;
        self.last = Some((line.tag, idx));
    }

    /// Replays `count` straight-line guaranteed-hit fetches at
    /// `start, start + 4, …`, batched per line: identical counter, LRU,
    /// stats and memo evolution to `count` individual hitting
    /// [`Cache::access`]`(pc, false)` calls (only the final LRU stamp
    /// per line is observable), without the per-access probe. Every
    /// touched line must be resident — the superblock validation
    /// contract.
    pub fn touch_run(&mut self, start: u64, count: u32) {
        let line_bytes = 1u64 << self.line_shift;
        let mut pc = start;
        let mut left = u64::from(count);
        while left > 0 {
            let line = self.line_addr(pc);
            let in_line = ((line + line_bytes - pc) / 4).min(left);
            let idx = self.probe_way(pc).expect("validated run line resident");
            self.counter += in_line;
            let l = &mut self.lines[idx as usize];
            l.lru = self.counter;
            self.stats.hits += in_line;
            self.last = Some((l.tag, idx));
            pc += in_line * 4;
            left -= in_line;
        }
    }

    /// Whether `addr`'s line is currently resident (no LRU update, no
    /// stats) — the superblock validation probe.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let tag = addr >> self.line_shift;
        // The memo always names a resident line (see `last`).
        if let Some((last_tag, _)) = self.last {
            if last_tag == tag {
                return true;
            }
        }
        let set = (tag & self.set_mask) as usize;
        let ways = self.config.ways as usize;
        self.lines[set * ways..(set + 1) * ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates everything (used between benchmark repetitions).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
        self.gen += 1;
        self.last = None;
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B/{}-way/{}B lines: {} hits, {} misses ({:.1}% miss)",
            self.config.size_bytes,
            self.config.ways,
            self.config.line_bytes,
            self.stats.hits,
            self.stats.misses,
            self.stats.miss_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 64 B lines = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::default_l1d().validate().is_ok());
        assert!(CacheConfig {
            size_bytes: 100,
            ways: 2,
            line_bytes: 64
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 256,
            ways: 0,
            line_bytes: 64
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 48
        }
        .validate()
        .is_err());
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x103f, false).hit); // same line
        assert!(!c.access(0x1040, false).hit); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with tag congruent mod 2 == 0: addresses
        // 0x0000, 0x0080, 0x0100 (line 0, 2, 4).
        c.access(0x0000, false);
        c.access(0x0080, false);
        // Touch 0x0000 so 0x0080 is LRU.
        c.access(0x0000, false);
        // Fill a third line in set 0: evicts 0x0080.
        c.access(0x0100, false);
        assert!(c.contains(0x0000));
        assert!(!c.contains(0x0080));
        assert!(c.contains(0x0100));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x0000, true); // dirty
        c.access(0x0080, false);
        c.access(0x0100, false); // evicts 0x0000? No: 0x0080 touched later.
                                 // LRU in set 0 after the two fills is 0x0000 (oldest).
        let probe = c.access(0x0180, false);
        // Two evictions happened; exactly one of them was dirty.
        let _ = probe;
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn writeback_address_is_line_aligned() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 1,
            line_bytes: 64,
        });
        c.access(0x1234, true);
        let probe = c.access(0x5678, false);
        assert_eq!(probe.writeback, Some(0x1200));
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 1,
            line_bytes: 64,
        });
        c.access(0x0000, false); // clean fill
        c.access(0x0008, true); // write hit → dirty
        let probe = c.access(0x1000, false);
        assert_eq!(probe.writeback, Some(0x0000));
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0x0000, true);
        c.flush();
        assert!(!c.contains(0x0000));
        assert!(!c.access(0x0000, false).hit);
    }

    #[test]
    fn miss_rate_math() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.stats().miss_rate(), 0.25);
    }
}
