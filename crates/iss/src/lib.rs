//! Functional RISC-V instruction set simulator with L1 cache models —
//! the Spike substitute of the Coyote reproduction.
//!
//! The paper integrates Spike for functional execution plus L1 modelling
//! and Sparta for everything below; this crate is the former half. It
//! provides:
//!
//! * [`hart::Hart`] — architectural state (scalar, FP and vector files);
//! * [`exec`] — the execution semantics of the supported RV64 subset;
//! * [`mem::SparseMemory`] — the shared functional memory;
//! * [`cache::Cache`] — probe-only L1 I/D models (LRU, write-back);
//! * [`scoreboard::Scoreboard`] — RAW/WAW tracking against in-flight
//!   misses;
//! * [`core::Core`] — the per-cycle stepping contract the Coyote
//!   orchestrator drives.
//!
//! # Examples
//!
//! Run a tiny program on one core with an ideal (zero-latency) memory
//! below the L1s:
//!
//! ```
//! use coyote_iss::core::{Core, CoreConfig, CoreState, DecodedText};
//! use coyote_iss::mem::SparseMemory;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = coyote_asm::assemble(
//!     "_start:
//!         li a0, 42
//!         li a7, 93
//!         ecall",
//! )?;
//! let mut mem = SparseMemory::new();
//! mem.load_program(&program);
//! let text = DecodedText::from_program(&program);
//! let mut core = Core::new(0, program.entry(), &CoreConfig::default());
//!
//! let mut misses = Vec::new();
//! for cycle in 0..100 {
//!     if let CoreState::Halted(code) = core.state() {
//!         assert_eq!(code, 42);
//!         return Ok(());
//!     }
//!     if core.state() == CoreState::Active {
//!         core.step(&mut mem, &text, cycle, &mut misses)?;
//!     }
//!     for miss in misses.drain(..) {
//!         core.complete_fill(miss.line_addr, miss.kind, cycle);
//!     }
//! }
//! panic!("did not halt");
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod core;
pub mod exec;
pub mod hart;
pub mod mem;
pub mod scoreboard;
pub mod superblock;
pub mod view;

pub use crate::core::{
    Core, CoreConfig, CoreSnapshot, CoreState, CoreStats, DecodedText, MissKind, MissRequest,
    SimError, StepEvent,
};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use exec::{Dest, Ecall, Effects, ExecError, MemAccess, RegSet};
pub use hart::{Hart, DEFAULT_VLEN_BITS};
pub use mem::{MemoryIo, SparseMemory};
pub use scoreboard::Scoreboard;
pub use superblock::{accesses_conflict, FuseDiag, FuseStop, FusedAccess};
pub use view::{BufferedMemory, StoreBuffer};
