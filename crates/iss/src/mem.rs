//! Sparse physical memory.
//!
//! Backing store for the functional simulator: a page-granular sparse
//! array so that kernels can use a 4 GiB-style address space without the
//! host allocating it. Reads of never-written memory return zeroes,
//! matching the zero-initialized DRAM the paper's baremetal kernels
//! assume.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use coyote_asm::Program;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Multiplicative hasher for page/line numbers: the simulator hashes
/// billions of `u64` keys on its hot path, where SipHash's DoS
/// resistance buys nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct AddrHasher(u64);

impl Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused on the hot path).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, value: u64) {
        self.0 = value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// `HashMap` keyed by addresses/pages using [`AddrHasher`].
pub type AddrMap<V> = HashMap<u64, V, BuildHasherDefault<AddrHasher>>;

/// Cap on the dense page-table window span (pages). 1 << 16 pages is a
/// 256 MiB address span at 8 bytes of slot overhead per page — far more
/// than any paper kernel's footprint, small enough that the slot vector
/// stays cheap. Pages outside the window fall back to the hash map.
const MAX_DENSE_PAGES: u64 = 1 << 16;

/// Sparse byte-addressable memory with 4 KiB page granularity.
///
/// All harts of a simulated system share one `SparseMemory` (the paper's
/// tiles are not coherence-modelled, but they are functionally shared).
///
/// Internally a hybrid page table: writes establish a *dense window* —
/// a contiguous slot vector starting at the lowest written page — so
/// the hot path (kernel text + data live within a few MiB of each
/// other) resolves a page with one subtraction and one bounds check
/// instead of a hash lookup. Pages further than [`MAX_DENSE_PAGES`]
/// from the window spill into a hash-map fallback, preserving the
/// 4 GiB-style sparse address space.
#[derive(Debug, Default, Clone)]
pub struct SparseMemory {
    /// First page number of the dense window (meaningless while
    /// `slots` is empty).
    base_page: u64,
    /// Dense slots covering pages `[base_page, base_page + len)`.
    slots: Vec<Option<Box<[u8; PAGE_SIZE]>>>,
    /// Populated slots in `slots` (for `resident_pages`).
    dense_resident: usize,
    /// Pages outside the dense window.
    far: AddrMap<Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    /// Resolves a page for reading: dense window first, hash fallback
    /// second, `None` for never-written pages.
    #[inline]
    fn page(&self, page_no: u64) -> Option<&[u8; PAGE_SIZE]> {
        let idx = page_no.wrapping_sub(self.base_page);
        if (idx as usize) < self.slots.len() {
            return self.slots[idx as usize].as_deref();
        }
        self.far.get(&page_no).map(Box::as_ref)
    }

    /// Resolves a page for writing, allocating (and growing the dense
    /// window when the page is within [`MAX_DENSE_PAGES`] of it) on
    /// first touch.
    fn page_mut(&mut self, page_no: u64) -> &mut [u8; PAGE_SIZE] {
        let idx = page_no.wrapping_sub(self.base_page) as usize;
        if idx < self.slots.len() {
            let slot = &mut self.slots[idx];
            if slot.is_none() {
                *slot = Some(Box::new([0; PAGE_SIZE]));
                self.dense_resident += 1;
            }
            return slot.as_deref_mut().expect("just populated");
        }
        self.adopt(page_no)
    }

    /// Cold path of [`Self::page_mut`]: the page is outside the dense
    /// window. Establish or grow the window to cover it when the
    /// resulting span stays within [`MAX_DENSE_PAGES`] (migrating any
    /// far pages the grown window swallows, so they are not shadowed
    /// by fresh zero slots); otherwise fall back to the hash map.
    #[cold]
    fn adopt(&mut self, page_no: u64) -> &mut [u8; PAGE_SIZE] {
        let (new_base, new_end) = if self.slots.is_empty() {
            (page_no, page_no + 1)
        } else {
            (
                self.base_page.min(page_no),
                (self.base_page + self.slots.len() as u64).max(page_no + 1),
            )
        };
        if new_end - new_base <= MAX_DENSE_PAGES {
            if new_base < self.base_page && !self.slots.is_empty() {
                let grow = (self.base_page - new_base) as usize;
                self.slots
                    .splice(0..0, std::iter::repeat_with(|| None).take(grow));
            }
            self.base_page = new_base;
            self.slots
                .resize_with((new_end - new_base) as usize, || None);
            // Migrate far pages the window now covers.
            if !self.far.is_empty() {
                let swallowed: Vec<u64> = self
                    .far
                    .keys()
                    .filter(|p| (new_base..new_end).contains(p))
                    .copied()
                    .collect();
                for p in swallowed {
                    let page = self.far.remove(&p).expect("key just listed");
                    self.slots[(p - new_base) as usize] = Some(page);
                    self.dense_resident += 1;
                }
            }
            let slot = &mut self.slots[(page_no - new_base) as usize];
            if slot.is_none() {
                *slot = Some(Box::new([0; PAGE_SIZE]));
                self.dense_resident += 1;
            }
            return slot.as_deref_mut().expect("just populated");
        }
        self.far
            .entry(page_no)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Loads a program image (text + data sections).
    pub fn load_program(&mut self, program: &Program) {
        let mut addr = program.text_base();
        for word in program.text() {
            self.write_u32(addr, *word);
            addr += 4;
        }
        self.write_bytes(program.data_base(), program.data());
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr >> PAGE_SHIFT) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self.page_mut(addr >> PAGE_SHIFT);
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        // Fast path: the whole range is inside one page.
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + buf.len() <= PAGE_SIZE {
            match self.page(addr >> PAGE_SHIFT) {
                Some(page) => buf.copy_from_slice(&page[offset..offset + buf.len()]),
                None => buf.fill(0),
            }
            return;
        }
        for (i, byte) in buf.iter_mut().enumerate() {
            *byte = self.read_u8(addr + i as u64);
        }
    }

    /// Writes `bytes` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + bytes.len() <= PAGE_SIZE {
            let page = self.page_mut(addr >> PAGE_SHIFT);
            page[offset..offset + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, byte) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *byte);
        }
    }

    /// Reads a little-endian `u16`.
    #[must_use]
    pub fn read_u16(&self, addr: u64) -> u16 {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an `f64` (IEEE-754 bits).
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Number of populated pages (for memory-footprint diagnostics).
    /// Empty dense-window slots do not count: only pages that were
    /// actually written.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.dense_resident + self.far.len()
    }

    /// Order-insensitive digest of the full memory image.
    ///
    /// Two memories with identical contents produce identical digests
    /// regardless of page-map iteration order: each page contributes a
    /// per-page hash (seeded by its page number) and the contributions
    /// are combined with a commutative wrapping sum. Used by
    /// `coyote-audit --race` to compare final architectural state
    /// between schedule-perturbed runs.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fn mix(mut x: u64) -> u64 {
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }
        fn page_hash(page_no: u64, page: &[u8; PAGE_SIZE]) -> u64 {
            let mut h = mix(page_no ^ 0x636f_796f_7465_6d65);
            for chunk in page.chunks_exact(8) {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                h = mix(h ^ u64::from_le_bytes(b));
            }
            mix(h)
        }
        let mut acc = 0u64;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(page) = slot {
                acc = acc.wrapping_add(page_hash(self.base_page + i as u64, page));
            }
        }
        // audit:allow(hashmap-iter): the wrapping sum is commutative,
        // so iteration order cannot leak into the digest.
        for (page_no, page) in &self.far {
            acc = acc.wrapping_add(page_hash(*page_no, page));
        }
        acc
    }
}

/// Byte-addressable memory as seen by the functional execution engine.
///
/// [`execute`](crate::exec::execute) is generic over this trait so the
/// same instruction semantics can run either directly against the shared
/// [`SparseMemory`] (the sequential orchestrator and the oracle's
/// replay) or against a buffered per-core view that logs reads and
/// defers stores (the deterministic parallel execute phase). Reads take
/// `&mut self` precisely so a logging view can record them.
pub trait MemoryIo {
    /// Reads `buf.len()` bytes starting at `addr`.
    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]);

    /// Writes `bytes` starting at `addr`.
    fn write_bytes(&mut self, addr: u64, bytes: &[u8]);

    /// Reads one byte.
    fn read_u8(&mut self, addr: u64) -> u8 {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn read_u16(&mut self, addr: u64) -> u16 {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn read_u32(&mut self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn read_u64(&mut self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Reads an `f64` (IEEE-754 bits).
    fn read_f64(&mut self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes one byte.
    fn write_u8(&mut self, addr: u64, value: u8) {
        self.write_bytes(addr, &[value]);
    }

    /// Writes a little-endian `u16`.
    fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes an `f64`.
    fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }
}

impl MemoryIo for SparseMemory {
    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        SparseMemory::read_bytes(self, addr, buf);
    }

    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        SparseMemory::write_bytes(self, addr, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = SparseMemory::new();
        assert_eq!(mem.read_u64(0xdead_beef), 0);
        assert_eq!(mem.read_u8(0), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn read_back_written_values() {
        let mut mem = SparseMemory::new();
        mem.write_u64(0x1000, 0x0123_4567_89ab_cdef);
        assert_eq!(mem.read_u64(0x1000), 0x0123_4567_89ab_cdef);
        assert_eq!(mem.read_u32(0x1000), 0x89ab_cdef);
        assert_eq!(mem.read_u16(0x1006), 0x0123);
        assert_eq!(mem.read_u8(0x1007), 0x01);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = SparseMemory::new();
        mem.write_u64(0x1ffc, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u64(0x1ffc), 0x1122_3344_5566_7788);
        assert_eq!(mem.resident_pages(), 2);
        let mut buf = [0u8; 16];
        mem.read_bytes(0x1ff8, &mut buf);
        assert_eq!(&buf[4..12], &0x1122_3344_5566_7788u64.to_le_bytes());
    }

    #[test]
    fn far_pages_fall_back_to_the_hash_map() {
        let mut mem = SparseMemory::new();
        // Establish the dense window low, then write far beyond its
        // maximum span: the far page must stay readable and must not
        // be shadowed when the window later grows.
        mem.write_u64(0x1000, 1);
        let far = 0x1000 + (MAX_DENSE_PAGES + 7) * PAGE_SIZE as u64;
        mem.write_u64(far, 2);
        assert_eq!(mem.read_u64(0x1000), 1);
        assert_eq!(mem.read_u64(far), 2);
        assert_eq!(mem.resident_pages(), 2);
        // Growing the dense window (both directions) keeps everything.
        mem.write_u64(0x0, 3);
        mem.write_u64(0x9000, 4);
        assert_eq!(mem.read_u64(0x1000), 1);
        assert_eq!(mem.read_u64(far), 2);
        assert_eq!(mem.read_u64(0x0), 3);
        assert_eq!(mem.read_u64(0x9000), 4);
        assert_eq!(mem.resident_pages(), 4);
    }

    #[test]
    fn digest_is_layout_independent() {
        // Same contents written in different orders (dense window
        // established at different base pages) digest identically.
        let mut a = SparseMemory::new();
        a.write_u64(0x1000, 7);
        a.write_u64(0x8000_0000, 9);
        let mut b = SparseMemory::new();
        b.write_u64(0x8000_0000, 9);
        b.write_u64(0x1000, 7);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), SparseMemory::new().digest());
    }

    #[test]
    fn f64_round_trip() {
        let mut mem = SparseMemory::new();
        mem.write_f64(0x2000, -1.5e300);
        assert_eq!(mem.read_f64(0x2000), -1.5e300);
        // NaN bit patterns preserved exactly.
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        mem.write_f64(0x2008, nan);
        assert_eq!(mem.read_f64(0x2008).to_bits(), nan.to_bits());
    }

    #[test]
    fn load_program_places_sections() {
        let program = coyote_asm::assemble(
            ".data
             v: .dword 42
             .text
             _start: ecall",
        )
        .unwrap();
        let mut mem = SparseMemory::new();
        mem.load_program(&program);
        assert_eq!(mem.read_u32(program.text_base()), 0x0000_0073);
        assert_eq!(mem.read_u64(program.symbol("v").unwrap()), 42);
    }
}
