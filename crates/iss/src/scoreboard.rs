//! RAW-dependency scoreboard.
//!
//! Tracks registers whose values are architecturally present (the
//! functional simulator writes them immediately) but whose *timing* is
//! still pending on outstanding L1 misses. Per the paper, an instruction
//! that reads such a register deactivates its core until the miss is
//! serviced; writes to a pending register (WAW) stall as well so a fill
//! can never be reordered past a younger producer.
//!
//! Registers are reference-counted: a vector gather can miss in several
//! cache lines, and its destination group must stay pending until the
//! *last* line is filled.

use crate::exec::{Dest, RegSet};

/// Pending-register scoreboard for one core.
#[derive(Debug, Clone, Default)]
pub struct Scoreboard {
    x: [u16; 32],
    f: [u16; 32],
    v: [u16; 32],
    mask: RegSet,
}

impl Scoreboard {
    /// Creates an empty scoreboard.
    #[must_use]
    pub fn new() -> Scoreboard {
        Scoreboard::default()
    }

    /// Whether an instruction with the given use/def sets must stall.
    #[must_use]
    pub fn blocks(&self, uses: &RegSet, defs: &RegSet) -> bool {
        self.mask.intersects(uses) || self.mask.intersects(defs)
    }

    /// Adds one pending-fill reference to every register in `regs`.
    pub fn acquire(&mut self, regs: &RegSet) {
        for i in 0..32 {
            if regs.x >> i & 1 == 1 {
                self.x[i] += 1;
            }
            if regs.f >> i & 1 == 1 {
                self.f[i] += 1;
            }
            if regs.v >> i & 1 == 1 {
                self.v[i] += 1;
            }
        }
        self.mask.insert_all(regs);
    }

    /// Drops one reference from every register in `regs`; registers
    /// whose count reaches zero become available again.
    pub fn release(&mut self, regs: &RegSet) {
        for i in 0..32 {
            if regs.x >> i & 1 == 1 {
                self.x[i] = self.x[i].saturating_sub(1);
                if self.x[i] == 0 {
                    self.mask.x &= !(1 << i);
                }
            }
            if regs.f >> i & 1 == 1 {
                self.f[i] = self.f[i].saturating_sub(1);
                if self.f[i] == 0 {
                    self.mask.f &= !(1 << i);
                }
            }
            if regs.v >> i & 1 == 1 {
                self.v[i] = self.v[i].saturating_sub(1);
                if self.v[i] == 0 {
                    self.mask.v &= !(1 << i);
                }
            }
        }
    }

    /// Whether nothing is pending.
    #[must_use]
    pub fn is_clear(&self) -> bool {
        self.mask.is_empty()
    }

    /// The currently pending registers.
    #[must_use]
    pub fn pending(&self) -> RegSet {
        self.mask
    }
}

/// Converts a [`Dest`] into a [`RegSet`] holding just that destination.
#[must_use]
pub fn dest_set(dest: Dest) -> RegSet {
    let mut set = RegSet::new();
    match dest {
        Dest::X(r) => set.add_x(r),
        Dest::F(r) => set.add_f(r),
        Dest::V(r, len) => set.add_v_group(r, len),
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_isa::{FReg, VReg, XReg};

    #[test]
    fn raw_hazard_blocks() {
        let mut sb = Scoreboard::new();
        sb.acquire(&dest_set(Dest::X(XReg::A0)));
        let mut uses = RegSet::new();
        uses.add_x(XReg::A0);
        assert!(sb.blocks(&uses, &RegSet::new()));
        let mut other = RegSet::new();
        other.add_x(XReg::A1);
        assert!(!sb.blocks(&other, &RegSet::new()));
    }

    #[test]
    fn waw_hazard_blocks() {
        let mut sb = Scoreboard::new();
        sb.acquire(&dest_set(Dest::F(FReg::FA0)));
        let mut defs = RegSet::new();
        defs.add_f(FReg::FA0);
        assert!(sb.blocks(&RegSet::new(), &defs));
    }

    #[test]
    fn x0_never_pends() {
        let mut sb = Scoreboard::new();
        sb.acquire(&dest_set(Dest::X(XReg::ZERO)));
        assert!(sb.is_clear());
    }

    #[test]
    fn vector_groups_overlap() {
        let mut sb = Scoreboard::new();
        // v8..v11 pending (LMUL=4 load).
        sb.acquire(&dest_set(Dest::V(VReg::new(8).unwrap(), 4)));
        let mut uses = RegSet::new();
        uses.add_v_group(VReg::new(10).unwrap(), 1);
        assert!(sb.blocks(&uses, &RegSet::new()));
        let mut clear = RegSet::new();
        clear.add_v_group(VReg::new(12).unwrap(), 1);
        assert!(!sb.blocks(&clear, &RegSet::new()));
    }

    #[test]
    fn release_clears_only_named_regs() {
        let mut sb = Scoreboard::new();
        sb.acquire(&dest_set(Dest::X(XReg::A0)));
        sb.acquire(&dest_set(Dest::X(XReg::A1)));
        sb.release(&dest_set(Dest::X(XReg::A0)));
        let mut a0 = RegSet::new();
        a0.add_x(XReg::A0);
        let mut a1 = RegSet::new();
        a1.add_x(XReg::A1);
        assert!(!sb.blocks(&a0, &RegSet::new()));
        assert!(sb.blocks(&a1, &RegSet::new()));
        assert!(!sb.is_clear());
    }

    #[test]
    fn multi_line_fill_requires_all_releases() {
        // A gather whose destination waits on three lines.
        let mut sb = Scoreboard::new();
        let dest = dest_set(Dest::V(VReg::new(4).unwrap(), 1));
        sb.acquire(&dest);
        sb.acquire(&dest);
        sb.acquire(&dest);
        sb.release(&dest);
        assert!(sb.blocks(&dest, &RegSet::new()));
        sb.release(&dest);
        assert!(sb.blocks(&dest, &RegSet::new()));
        sb.release(&dest);
        assert!(!sb.blocks(&dest, &RegSet::new()));
        assert!(sb.is_clear());
    }

    #[test]
    fn release_of_unpending_reg_is_noop() {
        let mut sb = Scoreboard::new();
        sb.release(&dest_set(Dest::X(XReg::A0)));
        assert!(sb.is_clear());
    }
}
