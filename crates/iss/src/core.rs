//! One simulated core: hart + L1 caches + scoreboard + pending-miss
//! table.
//!
//! [`Core::step`] implements exactly the per-cycle contract the paper
//! gives the Orchestrator:
//!
//! * a RAW (or WAW) dependency on a pending memory access deactivates
//!   the core ([`StepEvent::DepStall`]);
//! * executed instructions probe the L1s and report misses for the
//!   event-driven hierarchy ([`MissRequest`]);
//! * once a miss is serviced ([`Core::complete_fill`]) the destination
//!   registers become available and a stalled core reactivates.

use std::fmt;

use coyote_asm::Program;
use coyote_isa::superblock::{build_plans, rebuild_runs, FuseClass, FusePlan, MemPlan};
use coyote_isa::{DecodedInst, Inst, PredecodeStats, XReg};

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::exec::{defs, execute, uses, Ecall, ExecError, MemAccess, RegSet};
use crate::hart::{Hart, DEFAULT_VLEN_BITS};
use crate::mem::{AddrMap, MemoryIo};
use crate::scoreboard::{dest_set, Scoreboard};
use crate::superblock::{validate_run_stop, FuseDiag, FuseStop, FusedAccess, ValidateCtx, MAX_RUN};

/// Configuration of one core.
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Vector register length in bits.
    pub vlen_bits: u64,
    /// Whether [`Core::step`] may retire validated superblock runs
    /// through the fused dispatch. A host-speed knob: observable
    /// behaviour is bit-identical either way.
    pub fusion: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            l1i: CacheConfig::default_l1i(),
            l1d: CacheConfig::default_l1d(),
            vlen_bits: DEFAULT_VLEN_BITS,
            fusion: true,
        }
    }
}

/// Why a miss request is travelling into the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// Instruction fetch miss.
    Ifetch,
    /// Data load miss.
    Load,
    /// Data store miss (write-allocate fill).
    Store,
    /// Dirty-line eviction (fire-and-forget write-back).
    Writeback,
}

/// An L1 miss crossing into the event-driven hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissRequest {
    /// Issuing core index.
    pub core: usize,
    /// Line-aligned physical address.
    pub line_addr: u64,
    /// Request kind.
    pub kind: MissKind,
    /// Program counter of the instruction that caused the miss (the
    /// causal anchor for stall attribution).
    pub pc: u64,
}

/// Result of attempting one instruction on a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// An instruction retired. `branched` reports taken control flow.
    Retired {
        /// Whether control flow was redirected.
        branched: bool,
    },
    /// The core stalled on a register dependency (now inactive).
    DepStall,
    /// The core is waiting for an instruction-line fill (now inactive).
    FetchStall,
    /// The program on this core called exit.
    Halted(i64),
}

/// Core execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Will execute next cycle.
    Active,
    /// Waiting for a register dependency.
    StalledDep,
    /// Waiting for an instruction-line fill.
    StalledFetch,
    /// Exited.
    Halted(i64),
}

/// Per-core counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired: u64,
    /// Cycles spent stalled on register dependencies.
    pub dep_stall_cycles: u64,
    /// Cycles spent stalled on instruction fetch.
    pub fetch_stall_cycles: u64,
    /// Number of times the core entered a dependency stall.
    pub dep_stalls: u64,
    /// Taken branches/jumps.
    pub branches: u64,
    /// Vector instructions retired.
    pub vector_retired: u64,
}

/// Errors surfaced while stepping a core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The PC points at a word that does not decode.
    Decode {
        /// Faulting PC.
        pc: u64,
        /// The word fetched.
        word: u32,
    },
    /// The instruction executed but hit an unsupported configuration.
    Exec {
        /// Faulting PC.
        pc: u64,
        /// Underlying error.
        source: ExecError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Decode { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#x}")
            }
            SimError::Exec { pc, source } => write!(f, "at pc {pc:#x}: {source}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Exec { source, .. } => Some(source),
            SimError::Decode { .. } => None,
        }
    }
}

/// Pre-decoded text segment, shared by all cores of a simulation.
///
/// Decoding (and recomputing use/def sets) on every fetch would
/// dominate simulation time; Coyote's kernels never modify their text,
/// so the loader predecodes the whole segment once into a dense
/// micro-op table ([`DecodedInst`]) that [`Core::step`] indexes by PC.
#[derive(Debug, Clone)]
pub struct DecodedText {
    base: u64,
    insts: Vec<Option<DecodedInst>>,
    /// Per-slot superblock fuse plans (same indexing as `insts`).
    plans: Vec<FusePlan>,
    /// Invalidation generation: bumped exactly when `invalidate`
    /// patches slots, so facts derived from the static tables (per-core
    /// run templates) self-expire when the text changes.
    gen: u64,
    /// Volume counters from the initial predecode pass.
    predecode_stats: PredecodeStats,
}

impl DecodedText {
    /// Pre-decodes a program's text section and builds its superblock
    /// fuse plans.
    #[must_use]
    pub fn from_program(program: &Program) -> DecodedText {
        let (insts, predecode_stats) = coyote_isa::predecode_with_stats(program.text());
        let plans = build_plans(&insts);
        DecodedText {
            base: program.text_base(),
            insts,
            plans,
            gen: 0,
            predecode_stats,
        }
    }

    /// Volume counters from the initial predecode pass (the host
    /// profiler's predecode phase).
    #[must_use]
    pub fn predecode_stats(&self) -> PredecodeStats {
        self.predecode_stats
    }

    /// The invalidation generation: changes exactly when predecoded
    /// slots are patched, so anything derived from the static tables is
    /// reusable while the generation holds still.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// The decoded instruction at `pc`, if it lies in the text section
    /// and decodes.
    #[must_use]
    pub fn get(&self, pc: u64) -> Option<&Inst> {
        self.entry(pc).map(|entry| &entry.inst)
    }

    /// The predecoded micro-op at `pc`, if it lies in the text section
    /// and decodes. The hot-path lookup: one bounds check + one index.
    #[must_use]
    pub fn entry(&self, pc: u64) -> Option<&DecodedInst> {
        self.index_of(pc).and_then(|idx| self.insts[idx].as_ref())
    }

    /// The table index of `pc`, if it lies in the text section.
    #[must_use]
    pub fn index_of(&self, pc: u64) -> Option<usize> {
        if pc < self.base || !pc.is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - self.base) / 4) as usize;
        (idx < self.insts.len()).then_some(idx)
    }

    /// The micro-op at table index `idx` (bounds-checked).
    #[must_use]
    pub fn slot(&self, idx: usize) -> Option<&DecodedInst> {
        self.insts.get(idx).and_then(Option::as_ref)
    }

    /// The fuse plan at table index `idx`; out-of-range indices read
    /// as excluded.
    #[must_use]
    pub fn plan(&self, idx: usize) -> FusePlan {
        self.plans
            .get(idx)
            .copied()
            .unwrap_or_else(FusePlan::excluded)
    }

    /// Whether the byte range `[addr, addr + len)` intersects the text
    /// segment. Stores matching this must invalidate the predecoded
    /// entries they patch (see [`DecodedText::invalidate`]).
    #[must_use]
    pub fn overlaps(&self, addr: u64, len: u64) -> bool {
        let end = self.base + self.insts.len() as u64 * 4;
        addr < end && addr.saturating_add(len) > self.base
    }

    /// Invalidates every predecoded entry the byte range
    /// `[addr, addr + len)` touches: the slots become holes (so the
    /// stepper falls back to fetching and decoding the patched words
    /// from memory) and upstream superblock runs are shortened to stop
    /// before them.
    pub fn invalidate(&mut self, addr: u64, len: u64) {
        if !self.overlaps(addr, len) || len == 0 {
            return;
        }
        self.gen += 1;
        let end = self.base + self.insts.len() as u64 * 4;
        let lo = addr.max(self.base);
        let hi = addr.saturating_add(len).min(end);
        let first = ((lo - self.base) / 4) as usize;
        let last = ((hi - 1 - self.base) / 4) as usize;
        for idx in first..=last {
            self.insts[idx] = None;
            self.plans[idx] = FusePlan::excluded();
        }
        rebuild_runs(&mut self.plans, first, last);
    }
}

/// Point-in-time diagnostic view of one core.
///
/// Embedded in deadlock reports and oracle divergence context so a
/// failure message can show where every core was without dumping the
/// whole machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSnapshot {
    /// Core index.
    pub core: usize,
    /// Execution state at snapshot time.
    pub state: CoreState,
    /// Program counter (next instruction, or the stalled one).
    pub pc: u64,
    /// Outstanding data-line misses.
    pub in_flight_lines: usize,
    /// Instruction line the fetcher is blocked on, if any.
    pub pending_fetch: Option<u64>,
    /// Instructions retired so far.
    pub retired: u64,
}

impl fmt::Display for CoreSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {}: {:?} at pc {:#x}, {} data line(s) in flight",
            self.core, self.state, self.pc, self.in_flight_lines
        )?;
        if let Some(line) = self.pending_fetch {
            write!(f, ", fetch blocked on line {line:#x}")?;
        }
        write!(f, ", {} retired", self.retired)
    }
}

/// Cached static structure of a superblock run, keyed by `(pc, text
/// generation)`.
///
/// The hot runs are short loop bodies (the matmul inner loop validates
/// a ~5-instruction run on every iteration), so the full
/// [`validate_run`] walk — slot loads, plan loads, register-set
/// algebra — re-runs every few retirements and dominates fused-path
/// cost. The template caches everything about the run that cannot
/// change while the text generation holds still (decoded-slot
/// coverage, `run_len`/[`MAX_RUN`] clamping, base-written-earlier
/// truncation, the memory-op list), leaving only the dynamic facts —
/// I/D-line residency, in-flight lines, access addresses — to recheck
/// at arm time. Arming from a template reproduces the full
/// validation's result bit-for-bit whenever its guards pass (same
/// text generation, idle scoreboard); in every other case the full
/// walk runs exactly as before, so observable behaviour is identical.
#[derive(Debug, Clone)]
struct RunTemplate {
    /// Run start PC (`u64::MAX` = nothing cached).
    pc: u64,
    /// Text generation the static walk ran against.
    text_gen: u64,
    /// Static run length: `run_len` clamped by [`MAX_RUN`], slot holes
    /// and base-written-earlier truncation.
    len: u32,
    /// Memory ops at positions `< len`, ascending by position.
    ops: Vec<(u32, MemPlan)>,
    /// Whether `icache_len` is current for `icache_gen`.
    icache_valid: bool,
    /// I-cache residency generation `icache_len` was computed at
    /// (equal generations prove an identical resident-line set).
    icache_gen: u64,
    /// Length of the prefix whose I-lines were resident at
    /// `icache_gen`.
    icache_len: u32,
}

impl RunTemplate {
    fn empty() -> RunTemplate {
        RunTemplate {
            pc: u64::MAX,
            text_gen: 0,
            len: 0,
            ops: Vec::new(),
            icache_valid: false,
            icache_gen: 0,
            icache_len: 0,
        }
    }
}

/// One simulated core.
#[derive(Debug, Clone)]
pub struct Core {
    index: usize,
    hart: Hart,
    icache: Cache,
    dcache: Cache,
    scoreboard: Scoreboard,
    /// In-flight data lines → registers waiting on each.
    pending_data: AddrMap<RegSet>,
    /// In-flight instruction line the fetcher is blocked on.
    pending_fetch: Option<u64>,
    /// Union of the use/def sets of the instruction a dependency stall
    /// is blocked on (precise wake-up test).
    blocked_regs: RegSet,
    state: CoreState,
    stall_started: u64,
    stats: CoreStats,
    console: Vec<u8>,
    access_buf: Vec<MemAccess>,
    /// Fault-injection hook for oracle self-tests: when set, the next
    /// serviced data fill "delivers" into the wrong register,
    /// corrupting this register's architectural value.
    corrupt_fill: Option<XReg>,
    /// Whether the fused dispatch is enabled ([`CoreConfig::fusion`]).
    fusion: bool,
    /// Length of the currently validated superblock run (0 = none).
    fused_len: u32,
    /// Instructions remaining in the validated run; while non-zero,
    /// [`Core::step`] dispatches through the fused fast path.
    fused_left: u32,
    /// Pre-computed memory accesses of the validated run.
    fused_accesses: Vec<FusedAccess>,
    /// Index into `fused_accesses` of the next access to retire (the
    /// run's accesses retire strictly in order).
    fused_cursor: usize,
    /// Cached static structure of the most recent hot run (see
    /// [`RunTemplate`]).
    template: RunTemplate,
    /// PC of the last successful full validation; a template is only
    /// built when the same PC validates twice in a row, so one-shot
    /// cold blocks never pay template construction.
    last_validated_pc: u64,
    /// Instructions retired through the fused path. A host-diagnostic
    /// counter like `conflict_fallbacks`: deliberately outside
    /// [`CoreStats`] so the determinism digest cannot vary with the
    /// fusion knob, while metrics still export it (`block_hit_rate`).
    fused_retired: u64,
    /// Arm/validate outcome counters for the host profiler (same
    /// digest-exclusion contract as `fused_retired`).
    fuse_diag: FuseDiag,
    /// Stores this core made into the text segment this cycle; the
    /// orchestrator drains them into [`DecodedText::invalidate`] at
    /// end of cycle.
    text_writes: Vec<(u64, u8)>,
}

impl Core {
    /// Creates core `index` starting at `entry`.
    ///
    /// # Panics
    ///
    /// Panics if a cache geometry in `config` is invalid; validate
    /// configurations with [`CacheConfig::validate`] first.
    #[must_use]
    pub fn new(index: usize, entry: u64, config: &CoreConfig) -> Core {
        Core {
            index,
            hart: Hart::new(index as u64, entry, config.vlen_bits),
            icache: Cache::new(config.l1i),
            dcache: Cache::new(config.l1d),
            scoreboard: Scoreboard::new(),
            pending_data: AddrMap::default(),
            pending_fetch: None,
            blocked_regs: RegSet::new(),
            state: CoreState::Active,
            stall_started: 0,
            stats: CoreStats::default(),
            console: Vec::new(),
            access_buf: Vec::new(),
            corrupt_fill: None,
            fusion: config.fusion,
            fused_len: 0,
            fused_left: 0,
            fused_accesses: Vec::new(),
            fused_cursor: 0,
            template: RunTemplate::empty(),
            last_validated_pc: u64::MAX,
            fused_retired: 0,
            fuse_diag: FuseDiag::default(),
            text_writes: Vec::new(),
        }
    }

    /// Core index (also its `mhartid`).
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// Architectural state (for result verification).
    #[must_use]
    pub fn hart(&self) -> &Hart {
        &self.hart
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Registers the current dependency stall is blocked on (union of
    /// the blocked instruction's use and def sets). Meaningful only
    /// while the core is in [`CoreState::StalledDep`]; the orchestrator
    /// snapshots it when opening a stall interval so attribution can
    /// report *which* architectural registers the code was waiting for.
    #[must_use]
    pub fn blocked_regs(&self) -> &RegSet {
        &self.blocked_regs
    }

    /// Counters as of `cycle`, folding an in-progress stall's elapsed
    /// cycles in. [`Core::stats`] accumulates stall time only when the
    /// core wakes, which would under-report a mid-stall epoch sample.
    #[must_use]
    pub fn stats_through(&self, cycle: u64) -> CoreStats {
        let mut stats = self.stats;
        let elapsed = cycle.saturating_sub(self.stall_started);
        match self.state {
            CoreState::StalledDep => stats.dep_stall_cycles += elapsed,
            CoreState::StalledFetch => stats.fetch_stall_cycles += elapsed,
            CoreState::Active | CoreState::Halted(_) => {}
        }
        stats
    }

    /// L1I counters.
    #[must_use]
    pub fn icache_stats(&self) -> CacheStats {
        self.icache.stats()
    }

    /// L1D counters.
    #[must_use]
    pub fn dcache_stats(&self) -> CacheStats {
        self.dcache.stats()
    }

    /// Bytes written to the console via the `write` ecall.
    #[must_use]
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// Number of data lines currently in flight.
    #[must_use]
    pub fn in_flight_lines(&self) -> usize {
        self.pending_data.len()
    }

    /// Data line addresses this core is waiting on, ascending (sorted
    /// so the diagnostic output is deterministic). Deadlock reports
    /// and crash dumps use this to show what a stalled core blocks on.
    #[must_use]
    pub fn waiting_lines(&self) -> Vec<u64> {
        let mut lines: Vec<u64> = self.pending_data.keys().copied().collect();
        lines.sort_unstable();
        lines
    }

    /// Instruction line the fetcher is blocked on, if any.
    #[must_use]
    pub fn pending_fetch_line(&self) -> Option<u64> {
        self.pending_fetch
    }

    /// Captures a diagnostic snapshot of this core.
    #[must_use]
    pub fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            core: self.index,
            state: self.state,
            pc: self.hart.pc,
            in_flight_lines: self.pending_data.len(),
            pending_fetch: self.pending_fetch,
            retired: self.stats.retired,
        }
    }

    /// Arms a deliberate timing-model fault: the next data fill this
    /// core services clobbers `reg` instead of delivering cleanly, as
    /// if the hierarchy routed the completion to the wrong register.
    ///
    /// Mutation-testing hook — exists so the co-simulation oracle can
    /// be shown to catch exactly this class of timing-model bug.
    pub fn inject_fill_corruption(&mut self, reg: XReg) {
        self.corrupt_fill = Some(reg);
        // A corrupted register would invalidate the pre-computed
        // access addresses of a validated run.
        self.fused_left = 0;
    }

    /// Instructions retired through the fused superblock path.
    #[must_use]
    pub fn fused_retired(&self) -> u64 {
        self.fused_retired
    }

    /// Host-diagnostic arm/validate outcome counters (see
    /// [`FuseDiag`]): how often this core armed runs, from which path,
    /// and why validation walks stopped.
    #[must_use]
    pub fn fuse_diag(&self) -> &FuseDiag {
        &self.fuse_diag
    }

    /// Instructions remaining in the currently validated run.
    #[must_use]
    pub fn fused_left(&self) -> u32 {
        self.fused_left
    }

    /// Position of the next instruction within the validated run.
    #[must_use]
    pub fn fused_pos(&self) -> u32 {
        self.fused_len - self.fused_left
    }

    /// Pre-computed memory accesses of the validated run (positions
    /// are run-relative; compare against [`Core::fused_pos`]).
    #[must_use]
    pub fn fused_accesses(&self) -> &[FusedAccess] {
        &self.fused_accesses
    }

    /// Abandons the validated run; the next step revalidates from
    /// scratch. Called on text-segment invalidation, which may have
    /// patched instructions inside the run.
    pub fn abort_fused_run(&mut self) {
        self.fused_left = 0;
    }

    /// Stores into the text segment recorded this cycle (drained by
    /// the orchestrator into [`DecodedText::invalidate`]).
    #[must_use]
    pub fn has_text_writes(&self) -> bool {
        !self.text_writes.is_empty()
    }

    /// Drains the recorded text-segment stores.
    pub fn take_text_writes(&mut self) -> Vec<(u64, u8)> {
        std::mem::take(&mut self.text_writes)
    }

    /// Ensures a validated run is armed at the current PC, attempting
    /// validation when none is. Returns the instructions left in the
    /// run (0 = this core cannot fuse from here). The orchestrator
    /// calls this while planning a multi-core fused window.
    pub fn ensure_fused_run(&mut self, text: &DecodedText) -> u32 {
        if self.fused_left == 0 {
            self.try_begin_fused_run(text);
        }
        self.fused_left
    }

    /// Attempts to validate a superblock run starting at the current
    /// PC; on success arms the fused dispatch. Returns the validated
    /// length (0 = per-instruction path).
    fn try_begin_fused_run(&mut self, text: &DecodedText) -> u32 {
        if !self.fusion || self.corrupt_fill.is_some() {
            return 0;
        }
        let pc = self.hart.pc;
        // Hot path: the core keeps re-entering the same run (a loop
        // body). The template already holds the static walk; with the
        // text unchanged and the scoreboard idle, arming from it
        // reproduces the full validation bit-for-bit.
        if self.template.pc == pc
            && self.template.text_gen == text.generation()
            && self.scoreboard.is_clear()
        {
            return self.arm_from_template(text);
        }
        let ctx = ValidateCtx {
            hart: &self.hart,
            icache: &self.icache,
            dcache: &self.dcache,
            scoreboard: &self.scoreboard,
            pending_data: &self.pending_data,
        };
        let (len, stop) = validate_run_stop(text, pc, &ctx, &mut self.fused_accesses);
        self.fuse_diag.full_validations += 1;
        self.fuse_diag.record_arm(len, stop);
        self.fused_len = len;
        self.fused_left = len;
        self.fused_cursor = 0;
        if len >= 2
            && self.last_validated_pc == pc
            && (self.template.pc != pc || self.template.text_gen != text.generation())
        {
            self.build_template(text, pc);
        }
        self.last_validated_pc = pc;
        len
    }

    /// Records the static structure of the run at `pc` into the
    /// template: the walk [`validate_run`] just performed, minus every
    /// dynamic check. Called only after a successful full validation,
    /// so the static length is at least the validated length.
    fn build_template(&mut self, text: &DecodedText, pc: u64) {
        let Some(start) = text.index_of(pc) else {
            return;
        };
        let full = text.plan(start).run_len.min(MAX_RUN);
        let mut ops = std::mem::take(&mut self.template.ops);
        ops.clear();
        let mut written = RegSet::new();
        let mut len = 0u32;
        for i in 0..full {
            let idx = start + i as usize;
            let Some(entry) = text.slot(idx) else { break };
            if let FuseClass::Mem(plan) = text.plan(idx).class {
                let mut base = RegSet::new();
                base.add_x(plan.base);
                if written.intersects(&base) {
                    break;
                }
                ops.push((i, plan));
            }
            written.insert_all(&entry.defs);
            len = i + 1;
        }
        ops.retain(|&(pos, _)| pos < len);
        self.template = RunTemplate {
            pc,
            text_gen: text.generation(),
            len,
            ops,
            icache_valid: false,
            icache_gen: 0,
            icache_len: 0,
        };
    }

    /// Arms the fused dispatch from the cached template, rechecking
    /// only the dynamic facts: I-line residency (cached per I-cache
    /// residency generation — equal generations prove an identical
    /// resident-line set), and per memory op the address, D-line
    /// residency, in-flight table and text overlap. Truncates at the
    /// first failure exactly like the full walk; returns the armed
    /// length (0 = per-instruction path).
    fn arm_from_template(&mut self, text: &DecodedText) -> u32 {
        let tpl = &mut self.template;
        if !tpl.icache_valid || tpl.icache_gen != self.icache.generation() {
            let mut checked_iline = u64::MAX;
            let mut resident = tpl.len;
            for i in 0..tpl.len {
                let slot_pc = tpl.pc + u64::from(i) * 4;
                let iline = self.icache.line_addr(slot_pc);
                if iline != checked_iline {
                    if !self.icache.contains(slot_pc) {
                        resident = i;
                        break;
                    }
                    checked_iline = iline;
                }
            }
            tpl.icache_len = resident;
            tpl.icache_gen = self.icache.generation();
            tpl.icache_valid = true;
        }
        let mut len = tpl.len.min(tpl.icache_len);
        // Observation only: why the arm stops where it does (the
        // re-arm half of the abort-reason taxonomy).
        let mut stop = if tpl.icache_len < tpl.len {
            FuseStop::LineNotResident
        } else {
            FuseStop::RunEnd
        };
        let pending_empty = self.pending_data.is_empty();
        self.fused_accesses.clear();
        for &(pos, plan) in &tpl.ops {
            if pos >= len {
                break;
            }
            let addr = self
                .hart
                .x(plan.base)
                .wrapping_add(plan.offset as i64 as u64);
            let way = self.dcache.probe_way(addr);
            let blocked = match way {
                None => Some(FuseStop::LineNotResident),
                Some(_)
                    if !pending_empty
                        && self.pending_data.contains_key(&self.dcache.line_addr(addr)) =>
                {
                    Some(FuseStop::PendingFill)
                }
                Some(_) if plan.write && text.overlaps(addr, u64::from(plan.size)) => {
                    Some(FuseStop::TextStore)
                }
                Some(_) => None,
            };
            if let Some(reason) = blocked {
                len = pos;
                stop = reason;
                break;
            }
            self.fused_accesses.push(FusedAccess {
                pos,
                addr,
                size: plan.size,
                write: plan.write,
                way: way.expect("blocked covers the non-resident case"),
            });
        }
        if len < 2 {
            self.fused_accesses.clear();
            len = 0;
        }
        self.fuse_diag.template_arms += 1;
        self.fuse_diag.record_arm(len, stop);
        self.fused_len = len;
        self.fused_left = len;
        self.fused_cursor = 0;
        len
    }

    /// Retires one pre-validated instruction through the fused path.
    ///
    /// Validation proved: I-line and every accessed D-line resident
    /// (probing resident lines never evicts, so residency holds for
    /// the whole run), no scoreboard hazard, accessed lines not in
    /// flight, no trap/fence/CSR/AMO/vector op, no text-segment store.
    /// The skipped checks are therefore exactly the ones that cannot
    /// fire; every counter the skipped branches would have touched is
    /// still updated identically (cache probes, retired, branches).
    fn step_fused_one<M: MemoryIo>(
        &mut self,
        mem: &mut M,
        text: &DecodedText,
        cycle: u64,
    ) -> Result<StepEvent, SimError> {
        let pc = self.hart.pc;
        let iprobe = self.icache.access(pc, false);
        debug_assert!(iprobe.hit, "fused fetch missed at {pc:#x}");
        let entry = text
            .entry(pc)
            .expect("validated run left the predecoded text");

        let mut accesses = std::mem::take(&mut self.access_buf);
        let fx = execute(
            &mut self.hart,
            mem,
            &entry.inst,
            cycle,
            self.stats.retired,
            &mut accesses,
        )
        .map_err(|source| SimError::Exec { pc, source })?;
        for access in &accesses {
            // Pre-validated: replay the guaranteed hit via the way
            // resolved at validation time (identical counter/LRU/stats
            // evolution, no associative scan).
            let fa = self.fused_accesses[self.fused_cursor];
            debug_assert_eq!(
                (fa.addr, fa.size, fa.write),
                (access.addr, access.size, access.write),
                "fused access diverged from validation at {pc:#x}"
            );
            self.dcache.touch(fa.way, access.write);
            self.fused_cursor += 1;
        }
        accesses.clear();
        self.access_buf = accesses;

        self.stats.retired += 1;
        if fx.branched {
            self.stats.branches += 1;
        }
        self.fused_retired += 1;
        self.fused_left -= 1;
        Ok(StepEvent::Retired {
            branched: fx.branched,
        })
    }

    /// Retires exactly `n` pre-validated instructions over the cycles
    /// `[cycle, cycle + n)` — the multi-core fused window body. The
    /// caller must have proved `n <= self.fused_left()`.
    ///
    /// Equivalent to `n` [`Core::step_fused_one`] calls with the
    /// per-instruction bookkeeping hoisted to run granularity: the
    /// I-cache evolution for the straight-line fetch sequence is
    /// applied as one batch per line, the D-cache evolution replays the
    /// pre-validated access list directly, predecoded entries are read
    /// by consecutive slot index instead of per-PC lookup, and the
    /// retirement counters are bumped once. Only per-cache *final*
    /// state is observable at the window boundary, and each cache's
    /// own access sequence is preserved exactly, so the evolution is
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from execution (unreachable for
    /// validated runs; kept for defense in depth).
    pub fn step_block<M: MemoryIo>(
        &mut self,
        mem: &mut M,
        text: &DecodedText,
        cycle: u64,
        n: u32,
    ) -> Result<(), SimError> {
        debug_assert!(n <= self.fused_left, "window exceeds validated run");
        if n == 0 {
            return Ok(());
        }
        let start_pc = self.hart.pc;
        self.icache.touch_run(start_pc, n);
        // Replay the pre-validated data accesses of the next `n`
        // positions (validation proved them guaranteed hits; the
        // per-instruction path debug-asserts executed accesses match).
        let pos0 = self.fused_len - self.fused_left;
        while let Some(fa) = self.fused_accesses.get(self.fused_cursor) {
            if fa.pos >= pos0 + n {
                break;
            }
            self.dcache.touch(fa.way, fa.write);
            self.fused_cursor += 1;
        }
        let start_idx = text
            .index_of(start_pc)
            .expect("validated run left the predecoded text");
        let mut branches = 0u64;
        for i in 0..n {
            debug_assert_eq!(
                self.hart.pc,
                start_pc + u64::from(i) * 4,
                "fused run left the straight line"
            );
            let entry = text
                .slot(start_idx + i as usize)
                .expect("validated run slot decoded");
            let fx = execute(
                &mut self.hart,
                mem,
                &entry.inst,
                cycle + u64::from(i),
                self.stats.retired,
                &mut self.access_buf,
            )
            .map_err(|source| SimError::Exec {
                pc: start_pc + u64::from(i) * 4,
                source,
            })?;
            self.stats.retired += 1;
            branches += u64::from(fx.branched);
        }
        self.access_buf.clear();
        self.stats.branches += branches;
        self.fused_retired += u64::from(n);
        self.fused_left -= n;
        Ok(())
    }

    /// Retires up to `budget` instructions through the fused path,
    /// revalidating across run boundaries (branch targets) — the
    /// single-active-core fused chain. Returns the number of cycles
    /// (= instructions) consumed; `0` means nothing could be fused and
    /// the caller must take the per-instruction path.
    ///
    /// Sound only while no other core runs and no hierarchy event or
    /// telemetry boundary falls inside the chained cycles: the machine
    /// state then evolves through this core alone, so mid-chain
    /// revalidation sees exactly what per-cycle stepping would.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from execution.
    pub fn step_block_chain<M: MemoryIo>(
        &mut self,
        mem: &mut M,
        text: &DecodedText,
        cycle: u64,
        budget: u32,
    ) -> Result<u32, SimError> {
        let mut n = 0u32;
        while n < budget {
            if self.fused_left == 0 && self.try_begin_fused_run(text) == 0 {
                break;
            }
            let k = self.fused_left.min(budget - n);
            self.step_block(mem, text, cycle + u64::from(n), k)?;
            n += k;
        }
        Ok(n)
    }

    /// Attempts to execute one instruction at the current cycle.
    ///
    /// Misses that must travel to the hierarchy are appended to
    /// `misses`. Returns the step outcome; on `DepStall`/`FetchStall`
    /// the core becomes inactive and must not be stepped again until a
    /// [`Core::complete_fill`] reactivates it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on undecodable instructions or unsupported
    /// vector configurations.
    ///
    /// # Panics
    ///
    /// Panics if called while the core is not [`CoreState::Active`]
    /// (orchestrator bug).
    pub fn step<M: MemoryIo>(
        &mut self,
        mem: &mut M,
        text: &DecodedText,
        cycle: u64,
        misses: &mut Vec<MissRequest>,
    ) -> Result<StepEvent, SimError> {
        assert!(
            self.state == CoreState::Active,
            "stepped core {} in state {:?}",
            self.index,
            self.state
        );

        // ---- fused dispatch ----
        // Mid-run: the remaining instructions were validated against
        // machine state that can only have relaxed since (fills
        // completing release registers; nothing evicts a probed line).
        // At a run boundary, try to validate a fresh run; on success
        // this very step takes the fast path too.
        if self.fused_left > 0 || self.try_begin_fused_run(text) > 0 {
            return self.step_fused_one(mem, text, cycle);
        }

        // ---- fetch ----
        let pc = self.hart.pc;
        let iline = self.icache.line_addr(pc);
        let iprobe = self.icache.access(pc, false);
        if !iprobe.hit {
            misses.push(MissRequest {
                core: self.index,
                line_addr: iline,
                kind: MissKind::Ifetch,
                pc,
            });
            self.pending_fetch = Some(iline);
            self.state = CoreState::StalledFetch;
            self.stall_started = cycle;
            return Ok(StepEvent::FetchStall);
        }

        // Fast path: predecoded micro-op. Slow path (PC outside the
        // predecoded text segment, e.g. trampolines materialized in
        // data memory): decode the fetched word on the spot.
        let slow;
        let entry = match text.entry(pc) {
            Some(entry) => entry,
            None => {
                let word = mem.read_u32(pc);
                slow = DecodedInst::from_word(word).ok_or(SimError::Decode { pc, word })?;
                &slow
            }
        };

        // ---- hazard check ----
        // Scalar use/def sets were cached at predecode time; vector
        // sets depend on the hart's live LMUL and must be recomputed.
        let (use_set, def_set) = if entry.lmul_sensitive {
            (uses(&entry.inst, &self.hart), defs(&entry.inst, &self.hart))
        } else {
            (entry.uses, entry.defs)
        };
        if self.scoreboard.blocks(&use_set, &def_set) {
            self.state = CoreState::StalledDep;
            self.stall_started = cycle;
            self.stats.dep_stalls += 1;
            self.blocked_regs = use_set;
            self.blocked_regs.insert_all(&def_set);
            return Ok(StepEvent::DepStall);
        }

        // ---- execute ----
        let mut accesses = std::mem::take(&mut self.access_buf);
        let fx = execute(
            &mut self.hart,
            mem,
            &entry.inst,
            cycle,
            self.stats.retired,
            &mut accesses,
        )
        .map_err(|source| SimError::Exec { pc, source })?;

        // ---- probe the D-cache for every access ----
        let dest_regs = fx.dest.map(dest_set).unwrap_or_default();
        for access in &accesses {
            // Self-modifying code: a store landing in the text segment
            // stales the predecoded table. Record it; the orchestrator
            // invalidates the patched entries at end of cycle (the
            // same point for every jobs count, keeping runs
            // bit-identical).
            if access.write && text.overlaps(access.addr, u64::from(access.size)) {
                self.text_writes.push((access.addr, access.size));
            }
            let line = self.dcache.line_addr(access.addr);
            let probe = self.dcache.access(access.addr, access.write);
            if let Some(victim) = probe.writeback {
                misses.push(MissRequest {
                    core: self.index,
                    line_addr: victim,
                    kind: MissKind::Writeback,
                    pc,
                });
            }
            // A destination register must wait for the fill when the
            // access reads memory: plain loads, but also read-modify-
            // write atomics — an AMO's rd carries the *old* memory
            // value, so skipping the scoreboard here let a dependent
            // consume it while the line (including a not-yet-drained
            // store to the same line) was still in flight.
            let waiting = (!access.write || access.rmw) && !dest_regs.is_empty();
            if !probe.hit {
                // New outstanding line (unless an in-flight request to
                // the same line already exists — an MSHR merge).
                let entry = self.pending_data.entry(line);
                let is_new = matches!(entry, std::collections::hash_map::Entry::Vacant(_));
                let regs = entry.or_default();
                if waiting {
                    // Acquire one scoreboard reference per (line, reg)
                    // pair: completion releases each line's set once.
                    let mut delta = dest_regs;
                    delta.remove(regs);
                    regs.insert_all(&dest_regs);
                    self.scoreboard.acquire(&delta);
                }
                if is_new {
                    misses.push(MissRequest {
                        core: self.index,
                        line_addr: line,
                        kind: if access.write {
                            MissKind::Store
                        } else {
                            MissKind::Load
                        },
                        pc,
                    });
                }
            } else if waiting && !self.pending_data.is_empty() {
                // Hit on a line that is still in flight: the data has
                // not arrived yet, so the destination must wait for it.
                // (The empty-map check skips the hash probe on the
                // common nothing-in-flight path.)
                if let Some(regs) = self.pending_data.get_mut(&line) {
                    let mut delta = dest_regs;
                    delta.remove(regs);
                    regs.insert_all(&dest_regs);
                    self.scoreboard.acquire(&delta);
                }
            }
        }
        accesses.clear();
        self.access_buf = accesses;

        // ---- retire ----
        self.stats.retired += 1;
        if entry.vector {
            self.stats.vector_retired += 1;
        }
        if fx.branched {
            self.stats.branches += 1;
        }
        match fx.ecall {
            Some(Ecall::Exit(code)) => {
                self.state = CoreState::Halted(code);
                return Ok(StepEvent::Halted(code));
            }
            Some(Ecall::PutChar(byte)) => self.console.push(byte),
            Some(Ecall::Unknown(_)) | None => {}
        }
        Ok(StepEvent::Retired {
            branched: fx.branched,
        })
    }

    /// Notifies the core that a miss it issued has been serviced.
    ///
    /// Returns `true` if the core transitioned from stalled to active
    /// (the orchestrator should resume stepping it). Writeback
    /// completions never arrive here — they are fire-and-forget.
    pub fn complete_fill(&mut self, line_addr: u64, kind: MissKind, cycle: u64) -> bool {
        match kind {
            MissKind::Ifetch => {
                if self.pending_fetch == Some(line_addr) {
                    self.pending_fetch = None;
                    if self.state == CoreState::StalledFetch {
                        self.stats.fetch_stall_cycles += cycle.saturating_sub(self.stall_started);
                        self.state = CoreState::Active;
                        return true;
                    }
                }
                false
            }
            MissKind::Load | MissKind::Store => {
                if let Some(regs) = self.pending_data.remove(&line_addr) {
                    self.scoreboard.release(&regs);
                    if let Some(reg) = self.corrupt_fill.take() {
                        // Armed fault: deliver the fill into the wrong
                        // register (see `inject_fill_corruption`). The
                        // mutation invalidates any pre-computed fused
                        // access addresses, so abandon the run.
                        let bad = self.hart.x(reg) ^ 0xDEAD_BEEF;
                        self.hart.set_x(reg, bad);
                        self.fused_left = 0;
                    }
                }
                // Wake only when the blocked instruction's registers are
                // actually clear — spurious wake/re-stall churn dominates
                // many-core memory-bound simulations otherwise.
                if self.state == CoreState::StalledDep
                    && !self.scoreboard.blocks(&self.blocked_regs, &RegSet::new())
                {
                    self.stats.dep_stall_cycles += cycle.saturating_sub(self.stall_started);
                    self.state = CoreState::Active;
                    return true;
                }
                false
            }
            MissKind::Writeback => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::SparseMemory;
    use coyote_asm::assemble;

    fn setup(src: &str) -> (Core, SparseMemory, DecodedText) {
        let program = assemble(src).unwrap();
        let mut mem = SparseMemory::new();
        mem.load_program(&program);
        let text = DecodedText::from_program(&program);
        let core = Core::new(0, program.entry(), &CoreConfig::default());
        (core, mem, text)
    }

    /// Steps with immediate fill completion (a perfect hierarchy).
    fn run_to_halt(src: &str, max_steps: u64) -> (Core, SparseMemory) {
        let (mut core, mut mem, text) = setup(src);
        let mut misses = Vec::new();
        for cycle in 0..max_steps {
            if let CoreState::Halted(_) = core.state() {
                return (core, mem);
            }
            if core.state() == CoreState::Active {
                core.step(&mut mem, &text, cycle, &mut misses).unwrap();
            }
            for miss in misses.drain(..) {
                core.complete_fill(miss.line_addr, miss.kind, cycle);
            }
        }
        panic!("program did not halt in {max_steps} steps");
    }

    #[test]
    fn trivial_program_halts_with_code() {
        let (core, _) = run_to_halt("_start:\n li a0, 5\n li a7, 93\n ecall\n", 100);
        assert_eq!(core.state(), CoreState::Halted(5));
        assert_eq!(core.stats().retired, 3);
    }

    #[test]
    fn loop_computes_sum() {
        let (core, mem) = run_to_halt(
            ".data
             result: .dword 0
             .text
             _start:
                li t0, 0        # sum
                li t1, 1        # i
                li t2, 11       # bound
             loop:
                add t0, t0, t1
                addi t1, t1, 1
                bne t1, t2, loop
                la t3, result
                sd t0, 0(t3)
                li a0, 0
                li a7, 93
                ecall",
            1000,
        );
        let addr = 0x8100_0000; // default data base
        assert_eq!(mem.read_u64(addr), 55);
        assert_eq!(core.state(), CoreState::Halted(0));
    }

    #[test]
    fn fetch_miss_stalls_then_resumes() {
        let (mut core, mut mem, text) = setup("_start:\n li a7, 93\n li a0, 0\n ecall\n");
        let mut misses = Vec::new();
        let ev = core.step(&mut mem, &text, 0, &mut misses).unwrap();
        assert_eq!(ev, StepEvent::FetchStall);
        assert_eq!(misses.len(), 1);
        assert_eq!(misses[0].kind, MissKind::Ifetch);
        // Completing the fill reactivates.
        assert!(core.complete_fill(misses[0].line_addr, MissKind::Ifetch, 5));
        assert_eq!(core.state(), CoreState::Active);
        assert_eq!(core.stats().fetch_stall_cycles, 5);
    }

    #[test]
    fn raw_dependency_stalls_until_fill() {
        let (mut core, mut mem, text) = setup(
            ".data
             x: .dword 7
             .text
             _start:
                la t0, x
                ld t1, 0(t0)     # misses
                addi t2, t1, 1   # RAW on t1
                li a7, 93
                li a0, 0
                ecall",
        );
        let mut misses = Vec::new();
        let mut cycle = 0u64;
        // Warm fetch + run la (2 insts) and ld.
        let mut load_line = None;
        loop {
            cycle += 1;
            if core.state() == CoreState::Active {
                core.step(&mut mem, &text, cycle, &mut misses).unwrap();
            }
            for miss in misses.drain(..) {
                match miss.kind {
                    MissKind::Ifetch => {
                        core.complete_fill(miss.line_addr, MissKind::Ifetch, cycle);
                    }
                    MissKind::Load => load_line = Some(miss.line_addr),
                    _ => {}
                }
            }
            // Stop once the RAW instruction is attempted.
            if core.state() == CoreState::StalledDep {
                break;
            }
            assert!(cycle < 100, "never reached the RAW stall");
        }
        // The addi stalled; hart value is already correct functionally.
        let load_line = load_line.expect("ld missed");
        assert!(core.hart().x(coyote_isa::XReg::parse("t1").unwrap()).eq(&7));
        // Completing the data fill wakes the core.
        assert!(core.complete_fill(load_line, MissKind::Load, cycle + 10));
        assert_eq!(core.state(), CoreState::Active);
        assert!(core.stats().dep_stall_cycles > 0);
        assert_eq!(core.stats().dep_stalls, 1);
    }

    #[test]
    fn store_miss_does_not_stall() {
        let (mut core, mut mem, text) = setup(
            "_start:
                li t0, 0x81000000
                sd zero, 0(t0)
                addi t1, zero, 1
                li a7, 93
                li a0, 0
                ecall",
        );
        let mut misses = Vec::new();
        let mut cycle = 0;
        while !matches!(core.state(), CoreState::Halted(_)) {
            cycle += 1;
            if core.state() == CoreState::Active {
                core.step(&mut mem, &text, cycle, &mut misses).unwrap();
            }
            // Only complete ifetch fills: data fills never arrive, yet
            // the program must still finish because nothing reads the
            // stored value.
            for miss in misses.drain(..) {
                if miss.kind == MissKind::Ifetch {
                    core.complete_fill(miss.line_addr, MissKind::Ifetch, cycle);
                }
            }
            assert!(cycle < 1000);
        }
    }

    #[test]
    fn mshr_merge_same_line() {
        let (mut core, mut mem, text) = setup(
            ".data
             x: .dword 1
             y: .dword 2
             .text
             _start:
                la t0, x
                ld t1, 0(t0)
                ld t2, 8(t0)     # same 64 B line: no second request
                li a7, 93
                li a0, 0
                ecall",
        );
        let mut misses = Vec::new();
        let mut data_requests = 0;
        let mut cycle = 0;
        while !matches!(core.state(), CoreState::Halted(_)) && core.state() != CoreState::StalledDep
        {
            cycle += 1;
            if core.state() == CoreState::Active {
                core.step(&mut mem, &text, cycle, &mut misses).unwrap();
            }
            for miss in misses.drain(..) {
                match miss.kind {
                    MissKind::Ifetch => {
                        core.complete_fill(miss.line_addr, MissKind::Ifetch, cycle);
                    }
                    MissKind::Load => data_requests += 1,
                    _ => {}
                }
            }
            assert!(cycle < 1000);
        }
        assert_eq!(data_requests, 1, "second load should merge into the MSHR");
    }

    #[test]
    fn decode_error_reported_with_pc() {
        let program = assemble("_start:\n nop\n").unwrap();
        let mut mem = SparseMemory::new();
        mem.load_program(&program);
        // Corrupt the text after predecode.
        let text = DecodedText::from_program(&program);
        let mut core = Core::new(0, program.entry() + 8, &CoreConfig::default());
        let mut misses = Vec::new();
        // First step: ifetch miss.
        core.step(&mut mem, &text, 0, &mut misses).unwrap();
        for miss in misses.drain(..) {
            core.complete_fill(miss.line_addr, miss.kind, 0);
        }
        let err = core.step(&mut mem, &text, 1, &mut misses).unwrap_err();
        assert!(matches!(err, SimError::Decode { .. }));
        assert!(err.to_string().contains("illegal instruction"));
    }
}
