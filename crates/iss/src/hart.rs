//! Architectural state of one hart: scalar, floating-point and vector
//! register files plus the machine CSR subset.

use coyote_isa::{Csr, FReg, VReg, VType, XReg};

/// A hardware thread's architectural state.
///
/// The vector register file length (VLEN) is configurable per hart; the
/// paper's VPU has 16 lanes of 64 bits, i.e. `vlen_bits = 1024`, which is
/// the default used throughout the workspace.
#[derive(Debug, Clone)]
pub struct Hart {
    /// Program counter.
    pub pc: u64,
    x: [u64; 32],
    f: [u64; 32],
    /// Vector register file: 32 registers of `vlen_bits/8` bytes each.
    v: Vec<u8>,
    vlen_bits: u64,
    /// Current vector length.
    pub vl: u64,
    /// Current vector type.
    pub vtype: VType,
    hart_id: u64,
    mscratch: u64,
}

/// Default VLEN in bits: 16 lanes × 64 bits, the paper's VPU shape.
pub const DEFAULT_VLEN_BITS: u64 = 1024;

/// The architectural mask register (`v0`).
#[must_use]
pub fn mask_reg() -> VReg {
    VReg::V0
}

impl Hart {
    /// Creates a hart with the given ID, entry PC and VLEN.
    ///
    /// # Panics
    ///
    /// Panics if `vlen_bits` is not a power of two ≥ 64.
    #[must_use]
    pub fn new(hart_id: u64, pc: u64, vlen_bits: u64) -> Hart {
        assert!(
            vlen_bits >= 64 && vlen_bits.is_power_of_two(),
            "vlen must be a power of two >= 64"
        );
        Hart {
            pc,
            x: [0; 32],
            f: [0; 32],
            v: vec![0; (vlen_bits as usize / 8) * 32],
            vlen_bits,
            vl: 0,
            vtype: VType::default(),
            hart_id,
            mscratch: 0,
        }
    }

    /// This hart's ID as reported by `mhartid`.
    #[must_use]
    pub fn hart_id(&self) -> u64 {
        self.hart_id
    }

    /// VLEN in bits.
    #[must_use]
    pub fn vlen_bits(&self) -> u64 {
        self.vlen_bits
    }

    /// Reads an integer register (`x0` always reads zero).
    #[must_use]
    pub fn x(&self, reg: XReg) -> u64 {
        self.x[reg.index()]
    }

    /// Writes an integer register (writes to `x0` are dropped).
    pub fn set_x(&mut self, reg: XReg, value: u64) {
        if reg != XReg::ZERO {
            self.x[reg.index()] = value;
        }
    }

    /// Reads an FP register as raw bits.
    #[must_use]
    pub fn f_bits(&self, reg: FReg) -> u64 {
        self.f[reg.index()]
    }

    /// Reads an FP register as `f64`.
    #[must_use]
    pub fn f(&self, reg: FReg) -> f64 {
        f64::from_bits(self.f[reg.index()])
    }

    /// Writes an FP register from raw bits.
    pub fn set_f_bits(&mut self, reg: FReg, bits: u64) {
        self.f[reg.index()] = bits;
    }

    /// Writes an FP register from an `f64`.
    pub fn set_f(&mut self, reg: FReg, value: f64) {
        self.f[reg.index()] = value.to_bits();
    }

    /// Reads vector element `idx` of `reg` as a 64-bit value
    /// (zero-extended for narrower element widths).
    ///
    /// # Panics
    ///
    /// Panics if the element lies outside the register.
    #[must_use]
    pub fn v_elem(&self, reg: VReg, idx: u64, elem_bytes: u64) -> u64 {
        let offset = self.v_offset(reg, idx, elem_bytes);
        let mut buf = [0u8; 8];
        buf[..elem_bytes as usize].copy_from_slice(&self.v[offset..offset + elem_bytes as usize]);
        u64::from_le_bytes(buf)
    }

    /// Writes vector element `idx` of `reg` (truncating to the element
    /// width).
    ///
    /// # Panics
    ///
    /// Panics if the element lies outside the register.
    pub fn set_v_elem(&mut self, reg: VReg, idx: u64, elem_bytes: u64, value: u64) {
        let offset = self.v_offset(reg, idx, elem_bytes);
        self.v[offset..offset + elem_bytes as usize]
            .copy_from_slice(&value.to_le_bytes()[..elem_bytes as usize]);
    }

    /// Element index into the flat vector file. Element indices past the
    /// end of `reg` spill into the next architectural register, giving
    /// LMUL>1 register groups for free.
    fn v_offset(&self, reg: VReg, idx: u64, elem_bytes: u64) -> usize {
        let vlen_bytes = self.vlen_bits / 8;
        let offset = reg.index() as u64 * vlen_bytes + idx * elem_bytes;
        assert!(
            offset + elem_bytes <= self.v.len() as u64,
            "vector element {idx} of {reg:?} out of file"
        );
        offset as usize
    }

    /// Mask bit `idx` from `v0` (LSB-first packing per the V spec).
    #[must_use]
    pub fn v0_mask_bit(&self, idx: u64) -> bool {
        self.v_bit(crate::hart::mask_reg(), idx)
    }

    /// Mask bit `idx` of an arbitrary vector register.
    ///
    /// # Panics
    ///
    /// Panics if the bit lies outside the register file.
    #[must_use]
    pub fn v_bit(&self, reg: VReg, idx: u64) -> bool {
        let vlen_bytes = self.vlen_bits / 8;
        let byte = self.v[(reg.index() as u64 * vlen_bytes + idx / 8) as usize];
        (byte >> (idx % 8)) & 1 == 1
    }

    /// Sets mask bit `idx` of an arbitrary vector register.
    ///
    /// # Panics
    ///
    /// Panics if the bit lies outside the register file.
    pub fn set_v_bit(&mut self, reg: VReg, idx: u64, value: bool) {
        let vlen_bytes = self.vlen_bits / 8;
        let byte = &mut self.v[(reg.index() as u64 * vlen_bytes + idx / 8) as usize];
        if value {
            *byte |= 1 << (idx % 8);
        } else {
            *byte &= !(1 << (idx % 8));
        }
    }

    /// `VLMAX` for the current `vtype`.
    #[must_use]
    pub fn vlmax(&self) -> u64 {
        self.vtype.vlmax(self.vlen_bits)
    }

    /// Reads a CSR.
    ///
    /// `cycle`/`instret`/`time` are owned by the orchestrator, which
    /// passes the current counts in.
    #[must_use]
    pub fn read_csr(&self, csr: Csr, cycle: u64, instret: u64) -> u64 {
        match csr {
            Csr::MHARTID => self.hart_id,
            Csr::MSCRATCH => self.mscratch,
            Csr::CYCLE | Csr::TIME => cycle,
            Csr::INSTRET => instret,
            Csr::VL => self.vl,
            Csr::VTYPE => self.vtype.to_bits(),
            Csr::VLENB => self.vlen_bits / 8,
            _ => 0,
        }
    }

    /// Writes a CSR (read-only and unknown CSRs are ignored, as the
    /// baremetal kernels never depend on trapping).
    pub fn write_csr(&mut self, csr: Csr, value: u64) {
        if csr == Csr::MSCRATCH {
            self.mscratch = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hart() -> Hart {
        Hart::new(3, 0x8000_0000, DEFAULT_VLEN_BITS)
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut h = hart();
        h.set_x(XReg::ZERO, 99);
        assert_eq!(h.x(XReg::ZERO), 0);
        h.set_x(XReg::A0, 99);
        assert_eq!(h.x(XReg::A0), 99);
    }

    #[test]
    fn fp_bits_round_trip() {
        let mut h = hart();
        let r = FReg::new(7).unwrap();
        h.set_f(r, 2.5);
        assert_eq!(h.f(r), 2.5);
        h.set_f_bits(r, 0x7ff8_0000_0000_1234);
        assert_eq!(h.f_bits(r), 0x7ff8_0000_0000_1234);
    }

    #[test]
    fn vector_elements_round_trip() {
        let mut h = hart();
        let v3 = VReg::new(3).unwrap();
        for i in 0..16 {
            h.set_v_elem(v3, i, 8, 1000 + i);
        }
        for i in 0..16 {
            assert_eq!(h.v_elem(v3, i, 8), 1000 + i);
        }
        // 32-bit elements: 32 of them per 1024-bit register.
        let v4 = VReg::new(4).unwrap();
        h.set_v_elem(v4, 31, 4, 0xdead_beef_aabb_ccdd);
        assert_eq!(h.v_elem(v4, 31, 4), 0xaabb_ccdd); // truncated
    }

    #[test]
    fn lmul_groups_spill_into_next_register() {
        let mut h = hart();
        let v8 = VReg::new(8).unwrap();
        let v9 = VReg::new(9).unwrap();
        // Element 16 of v8 with SEW=64 is element 0 of v9.
        h.set_v_elem(v8, 16, 8, 777);
        assert_eq!(h.v_elem(v9, 0, 8), 777);
    }

    #[test]
    fn mask_bits_lsb_first() {
        let mut h = hart();
        h.set_v_elem(VReg::V0, 0, 1, 0b0000_0101);
        assert!(h.v0_mask_bit(0));
        assert!(!h.v0_mask_bit(1));
        assert!(h.v0_mask_bit(2));
        assert!(!h.v0_mask_bit(8));
    }

    #[test]
    fn arbitrary_register_bits() {
        let mut h = hart();
        let v7 = VReg::new(7).unwrap();
        h.set_v_bit(v7, 0, true);
        h.set_v_bit(v7, 9, true);
        h.set_v_bit(v7, 127, true);
        assert!(h.v_bit(v7, 0));
        assert!(!h.v_bit(v7, 1));
        assert!(h.v_bit(v7, 9));
        assert!(h.v_bit(v7, 127));
        h.set_v_bit(v7, 9, false);
        assert!(!h.v_bit(v7, 9));
        // Other registers untouched.
        assert!(!h.v_bit(VReg::new(8).unwrap(), 0));
    }

    #[test]
    fn csr_reads() {
        let h = hart();
        assert_eq!(h.read_csr(Csr::MHARTID, 0, 0), 3);
        assert_eq!(h.read_csr(Csr::VLENB, 0, 0), 128);
        assert_eq!(h.read_csr(Csr::CYCLE, 42, 7), 42);
        assert_eq!(h.read_csr(Csr::INSTRET, 42, 7), 7);
    }

    #[test]
    fn mscratch_writable_others_ignored() {
        let mut h = hart();
        h.write_csr(Csr::MSCRATCH, 0x1234);
        assert_eq!(h.read_csr(Csr::MSCRATCH, 0, 0), 0x1234);
        h.write_csr(Csr::MHARTID, 0xffff);
        assert_eq!(h.read_csr(Csr::MHARTID, 0, 0), 3);
    }

    #[test]
    #[should_panic(expected = "vlen")]
    fn bad_vlen_rejected() {
        let _ = Hart::new(0, 0, 48);
    }
}
