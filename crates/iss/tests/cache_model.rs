//! Property test: the L1 cache model agrees with a naive reference
//! implementation (fully explicit LRU lists) on hit/miss/writeback
//! behaviour for arbitrary access streams and geometries.

use coyote_iss::cache::{Cache, CacheConfig};
use proptest::prelude::*;

/// Obviously-correct reference: per-set `Vec` ordered most-recent-first.
struct RefCache {
    sets: Vec<Vec<(u64, bool)>>, // (line_addr, dirty), MRU at index 0
    ways: usize,
    line_shift: u32,
    set_count: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> RefCache {
        RefCache {
            sets: vec![Vec::new(); config.sets() as usize],
            ways: config.ways as usize,
            line_shift: config.line_bytes.trailing_zeros(),
            set_count: config.sets(),
        }
    }

    /// Returns (hit, writeback_line_addr).
    fn access(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        let line = addr >> self.line_shift << self.line_shift;
        let set = ((line >> self.line_shift) % self.set_count) as usize;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&(l, _)| l == line) {
            let (l, dirty) = entries.remove(pos);
            entries.insert(0, (l, dirty || write));
            return (true, None);
        }
        let mut writeback = None;
        if entries.len() == self.ways {
            let (victim, dirty) = entries.pop().expect("full set");
            if dirty {
                writeback = Some(victim);
            }
        }
        entries.insert(0, (line, write));
        (false, writeback)
    }
}

fn config_strategy() -> impl Strategy<Value = CacheConfig> {
    (
        prop_oneof![Just(1u64), Just(2), Just(4), Just(8)], // ways
        prop_oneof![Just(2u64), Just(8), Just(64)],         // sets
        prop_oneof![Just(16u64), Just(64)],                 // line bytes
    )
        .prop_map(|(ways, sets, line_bytes)| CacheConfig {
            size_bytes: ways * sets * line_bytes,
            ways,
            line_bytes,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn matches_reference_model(
        config in config_strategy(),
        accesses in prop::collection::vec((0u64..4096, prop::bool::ANY), 1..300),
    ) {
        let mut cache = Cache::new(config);
        let mut reference = RefCache::new(config);
        for (i, &(addr, write)) in accesses.iter().enumerate() {
            let probe = cache.access(addr, write);
            let (ref_hit, ref_writeback) = reference.access(addr, write);
            prop_assert_eq!(probe.hit, ref_hit, "access {} ({:#x})", i, addr);
            prop_assert_eq!(probe.writeback, ref_writeback, "access {} ({:#x})", i, addr);
        }
        // Stats agree with the replayed outcomes.
        let hits = accesses.len() as u64 - cache.stats().misses;
        prop_assert_eq!(cache.stats().hits, hits);
    }
}
