//! Execution-semantics tests: assembled programs run on a [`Core`] with
//! an ideal memory below the L1s, and the architectural results are
//! checked against host-computed oracles.

use coyote_iss::core::{Core, CoreConfig, CoreState, DecodedText};
use coyote_iss::mem::SparseMemory;
use proptest::prelude::*;

/// Runs `src` to completion with immediate miss servicing; returns the
/// halted core and memory.
fn run(src: &str) -> (Core, SparseMemory) {
    let program = coyote_asm::assemble(src).unwrap_or_else(|e| panic!("asm: {e}"));
    let mut mem = SparseMemory::new();
    mem.load_program(&program);
    let text = DecodedText::from_program(&program);
    let mut core = Core::new(0, program.entry(), &CoreConfig::default());
    let mut misses = Vec::new();
    for cycle in 0..2_000_000u64 {
        if matches!(core.state(), CoreState::Halted(_)) {
            return (core, mem);
        }
        if core.state() == CoreState::Active {
            core.step(&mut mem, &text, cycle, &mut misses)
                .unwrap_or_else(|e| panic!("step: {e}"));
        }
        for miss in misses.drain(..) {
            core.complete_fill(miss.line_addr, miss.kind, cycle);
        }
    }
    panic!("program did not halt");
}

fn exit_code(src: &str) -> i64 {
    let (core, _) = run(src);
    match core.state() {
        CoreState::Halted(code) => code,
        other => panic!("not halted: {other:?}"),
    }
}

/// Exit with the value of a computed expression in a0.
fn compute(body: &str) -> i64 {
    exit_code(&format!("_start:\n{body}\n li a7, 93\n ecall\n"))
}

#[test]
fn alu_edge_cases() {
    // Division by zero yields all-ones / dividend per the spec.
    assert_eq!(compute("li t0, 5\n li t1, 0\n div a0, t0, t1"), -1);
    assert_eq!(compute("li t0, 5\n li t1, 0\n rem a0, t0, t1"), 5);
    // Signed overflow: MIN / -1 = MIN, MIN % -1 = 0.
    assert_eq!(
        compute("li t0, 0x8000000000000000\n li t1, -1\n div a0, t0, t1"),
        i64::MIN
    );
    assert_eq!(
        compute("li t0, 0x8000000000000000\n li t1, -1\n rem a0, t0, t1"),
        0
    );
    // mulh of large values.
    assert_eq!(
        compute("li t0, 0x4000000000000000\n li t1, 4\n mulh a0, t0, t1"),
        1
    );
    // sraw sign-extends through the word boundary.
    assert_eq!(compute("li t0, 0x80000000\n sraiw a0, t0, 4"), -0x0800_0000);
    // sltu/slt distinction.
    assert_eq!(compute("li t0, -1\n li t1, 1\n slt a0, t0, t1"), 1);
    assert_eq!(compute("li t0, -1\n li t1, 1\n sltu a0, t0, t1"), 0);
}

#[test]
fn load_store_sign_extension() {
    let src = "
        .data
        b: .dword 0xfffffffffffffff0
        .text
        _start:
            la t0, b
            lb t1, 0(t0)
            lbu t2, 0(t0)
            add a0, t1, t2
            li a7, 93
            ecall";
    // lb = -16, lbu = 240 → sum 224.
    assert_eq!(exit_code(src), 224);
}

#[test]
fn fp_arithmetic_matches_host() {
    let src = "
        .data
        a: .double 1.5
        b: .double 2.25
        out: .double 0.0
        .text
        _start:
            la t0, a
            fld fa0, 0(t0)
            fld fa1, 8(t0)
            fmul.d fa2, fa0, fa1           # 3.375
            fmadd.d fa3, fa0, fa1, fa2     # 6.75
            fsd fa3, 16(t0)
            li a0, 0
            li a7, 93
            ecall";
    let (_, mem) = run(src);
    let out = mem.read_f64(0x8100_0000 + 16);
    assert_eq!(out, 1.5f64.mul_add(2.25, 1.5 * 2.25));
}

#[test]
fn fp_compare_and_convert() {
    assert_eq!(compute("li t0, 7\n fcvt.d.l fa0, t0\n fcvt.l.d a0, fa0"), 7);
    // Conversion truncates toward zero.
    let src = "
        .data
        v: .double -2.75
        .text
        _start:
            la t0, v
            fld fa0, 0(t0)
            fcvt.l.d a0, fa0
            li a7, 93
            ecall";
    assert_eq!(exit_code(src), -2);
}

#[test]
fn csr_mhartid_and_counters() {
    // Hart 0 → mhartid reads 0.
    assert_eq!(compute("csrr a0, mhartid"), 0);
    // instret grows monotonically.
    assert_eq!(
        compute("csrr t0, instret\n csrr t1, instret\n sub a0, t1, t0"),
        1
    );
}

#[test]
fn amoadd_read_modify_write() {
    let src = "
        .data
        counter: .dword 10
        .text
        _start:
            la t0, counter
            li t1, 5
            amoadd.d a0, t1, (t0)   # a0 = old (10), mem = 15
            ld t2, 0(t0)
            add a0, a0, t2          # 10 + 15
            li a7, 93
            ecall";
    assert_eq!(exit_code(src), 25);
}

#[test]
fn vector_unit_stride_add() {
    let src = "
        .data
        a: .dword 1, 2, 3, 4, 5, 6, 7, 8
        b: .dword 10, 20, 30, 40, 50, 60, 70, 80
        out: .zero 64
        .text
        _start:
            li t0, 8
            vsetvli t1, t0, e64,m1,ta,ma
            la t2, a
            la t3, b
            vle64.v v1, (t2)
            vle64.v v2, (t3)
            vadd.vv v3, v1, v2
            la t4, out
            vse64.v v3, (t4)
            li a0, 0
            li a7, 93
            ecall";
    let (_, mem) = run(src);
    let out_base = 0x8100_0000u64 + 128;
    for i in 0..8u64 {
        assert_eq!(mem.read_u64(out_base + i * 8), (i + 1) + (i + 1) * 10);
    }
}

#[test]
fn vector_strip_mining_handles_remainder() {
    // 21 elements with VLMAX=16: two strips of 16 and 5.
    let mut data = String::from(".data\nsrc:\n");
    for i in 0..21 {
        data.push_str(&format!(".dword {}\n", i * 3));
    }
    data.push_str("dst: .zero 168\n");
    let src = format!(
        "{data}
        .text
        _start:
            li t0, 21          # remaining
            la t1, src
            la t2, dst
        strip:
            vsetvli t3, t0, e64,m1,ta,ma
            vle64.v v1, (t1)
            vadd.vi v1, v1, 1
            vse64.v v1, (t2)
            slli t4, t3, 3
            add t1, t1, t4
            add t2, t2, t4
            sub t0, t0, t3
            bnez t0, strip
            li a0, 0
            li a7, 93
            ecall"
    );
    let (_, mem) = run(&src);
    let dst = 0x8100_0000u64 + 21 * 8;
    for i in 0..21u64 {
        assert_eq!(mem.read_u64(dst + i * 8), i * 3 + 1, "element {i}");
    }
}

#[test]
fn vector_gather_indexed_load() {
    let src = "
        .data
        table: .dword 100, 101, 102, 103, 104, 105, 106, 107
        idx:   .dword 7, 0, 3, 3
        out:   .zero 32
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64,m1,ta,ma
            la t2, idx
            vle64.v v2, (t2)
            vsll.vi v2, v2, 3       # element index -> byte offset
            la t3, table
            vluxei64.v v1, (t3), v2
            la t4, out
            vse64.v v1, (t4)
            li a0, 0
            li a7, 93
            ecall";
    let (_, mem) = run(src);
    let out = 0x8100_0000u64 + 64 + 32;
    assert_eq!(mem.read_u64(out), 107);
    assert_eq!(mem.read_u64(out + 8), 100);
    assert_eq!(mem.read_u64(out + 16), 103);
    assert_eq!(mem.read_u64(out + 24), 103);
}

#[test]
fn vector_fp_dot_product_via_macc_and_reduction() {
    let src = "
        .data
        a: .double 1.0, 2.0, 3.0, 4.0
        b: .double 0.5, 0.25, 2.0, 1.5
        out: .double 0.0
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64,m1,ta,ma
            la t2, a
            la t3, b
            vle64.v v1, (t2)
            vle64.v v2, (t3)
            vmv.v.i v3, 0
            vfmacc.vv v3, v1, v2      # v3 += a*b elementwise
            vmv.v.i v4, 0
            vfredusum.vs v4, v3, v4
            la t4, out
            vfmv.f.s fa0, v4
            fsd fa0, 0(t4)
            li a0, 0
            li a7, 93
            ecall";
    let (_, mem) = run(src);
    let out = mem.read_f64(0x8100_0000 + 64);
    assert_eq!(
        out,
        1.0f64.mul_add(0.5, 2.0f64.mul_add(0.25, 3.0f64.mul_add(2.0, 4.0 * 1.5))) - 0.0
    );
}

#[test]
fn vector_strided_load() {
    let src = "
        .data
        m: .dword 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11
        out: .zero 32
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64,m1,ta,ma
            la t2, m
            li t3, 24            # stride: every third dword
            vlse64.v v1, (t2), t3
            la t4, out
            vse64.v v1, (t4)
            li a0, 0
            li a7, 93
            ecall";
    let (_, mem) = run(src);
    let out = 0x8100_0000u64 + 96;
    for (i, want) in [0u64, 3, 6, 9].iter().enumerate() {
        assert_eq!(mem.read_u64(out + i as u64 * 8), *want);
    }
}

#[test]
fn vector_masked_op_skips_inactive_elements() {
    let src = "
        .data
        v: .dword 1, 2, 3, 4
        out: .dword 9, 9, 9, 9
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64,m1,ta,ma
            la t2, v
            vle64.v v1, (t2)
            li t3, 0b0101
            vmv.s.x v0, t3            # mask: elements 0 and 2 active
            la t4, out
            vse64.v v1, (t4), v0.t
            li a0, 0
            li a7, 93
            ecall";
    let (_, mem) = run(src);
    let out = 0x8100_0000u64 + 32;
    assert_eq!(mem.read_u64(out), 1);
    assert_eq!(mem.read_u64(out + 8), 9); // untouched
    assert_eq!(mem.read_u64(out + 16), 3);
    assert_eq!(mem.read_u64(out + 24), 9);
}

#[test]
fn console_output_via_write_ecall() {
    let src = "
        _start:
            li a0, 72      # 'H'
            li a7, 64
            ecall
            li a0, 105     # 'i'
            ecall
            li a0, 0
            li a7, 93
            ecall";
    let (core, _) = run(src);
    assert_eq!(core.console(), b"Hi");
}

proptest! {
    /// Random operand pairs through every scalar ALU op agree with a
    /// host-computed oracle.
    #[test]
    fn scalar_alu_matches_oracle(a in any::<i64>(), b in any::<i64>()) {
        type Oracle = fn(i64, i64) -> i64;
        let ops: &[(&str, Oracle)] = &[
            ("add", |a, b| a.wrapping_add(b)),
            ("sub", |a, b| a.wrapping_sub(b)),
            ("xor", |a, b| a ^ b),
            ("or", |a, b| a | b),
            ("and", |a, b| a & b),
            ("sll", |a, b| a.wrapping_shl(b as u32 & 63)),
            ("srl", |a, b| ((a as u64) >> (b as u32 & 63)) as i64),
            ("sra", |a, b| a >> (b as u32 & 63)),
            ("slt", |a, b| i64::from(a < b)),
            ("sltu", |a, b| i64::from((a as u64) < (b as u64))),
            ("mul", |a, b| a.wrapping_mul(b)),
            ("mulhu", |a, b| (((a as u64 as u128) * (b as u64 as u128)) >> 64) as i64),
        ];
        // One program computing all ops, XOR-reducing into a0 so a single
        // simulated run checks every operation.
        let mut body = format!("li t0, {a}\n li t1, {b}\n li a0, 0\n");
        let mut expected = 0i64;
        for (name, oracle) in ops {
            body.push_str(&format!("{name} t2, t0, t1\n xor a0, a0, t2\n"));
            expected ^= oracle(a, b);
        }
        let got = compute(&body);
        prop_assert_eq!(got, expected);
    }

    /// Division/remainder agree with RISC-V semantics for arbitrary
    /// operands including zero divisors.
    #[test]
    fn div_rem_matches_oracle(a in any::<i64>(), b in any::<i64>()) {
        let div = if b == 0 { -1 } else if a == i64::MIN && b == -1 { a } else { a / b };
        let rem = if b == 0 { a } else if a == i64::MIN && b == -1 { 0 } else { a % b };
        let got = compute(&format!("li t0, {a}\n li t1, {b}\n div t2, t0, t1\n rem t3, t0, t1\n xor a0, t2, t3"));
        prop_assert_eq!(got, div ^ rem);
    }
}

#[test]
fn vector_e32_elements_and_indexed_gather() {
    // 32-bit element width: 32 lanes per 1024-bit register; gather with
    // 32-bit indices via vluxei32.
    let src = "
        .data
        table: .word 10, 11, 12, 13, 14, 15, 16, 17
        idx:   .word 28, 0, 8, 8, 4, 12, 20, 16   # byte offsets
        out:   .zero 32
        .text
        _start:
            li t0, 8
            vsetvli t1, t0, e32,m1,ta,ma
            la t2, idx
            vle32.v v2, (t2)
            la t3, table
            vluxei32.v v1, (t3), v2
            la t4, out
            vse32.v v1, (t4)
            li a0, 0
            li a7, 93
            ecall";
    let (_, mem) = run(src);
    let out = 0x8100_0000u64 + 64;
    let expected = [17u32, 10, 12, 12, 11, 13, 15, 14];
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(mem.read_u32(out + i as u64 * 4), *want, "element {i}");
    }
}

#[test]
fn vector_int_ops_at_e32_wrap_correctly() {
    let src = "
        .data
        a: .word 0x7fffffff, 1, 0xffffffff, 100
        out: .zero 16
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e32,m1,ta,ma
            la t2, a
            vle32.v v1, (t2)
            vadd.vi v1, v1, 1
            la t3, out
            vse32.v v1, (t3)
            li a0, 0
            li a7, 93
            ecall";
    let (_, mem) = run(src);
    let out = 0x8100_0000u64 + 16;
    assert_eq!(mem.read_u32(out), 0x8000_0000); // i32::MAX + 1 wraps
    assert_eq!(mem.read_u32(out + 4), 2);
    assert_eq!(mem.read_u32(out + 8), 0); // u32 wrap
    assert_eq!(mem.read_u32(out + 12), 101);
}

#[test]
fn vector_lmul2_group_operations() {
    // LMUL=2: 32 e64 elements spanning two architectural registers.
    let mut data = String::from(".data\nsrc:\n");
    for i in 0..32 {
        data.push_str(&format!(".dword {i}\n"));
    }
    data.push_str("dst: .zero 256\n");
    let src = format!(
        "{data}
        .text
        _start:
            li t0, 32
            vsetvli t1, t0, e64,m2,ta,ma
            la t2, src
            vle64.v v2, (t2)
            vadd.vi v2, v2, 5
            la t3, dst
            vse64.v v2, (t3)
            mv a0, zero
            li a7, 93
            ecall"
    );
    let (core, mem) = run(&src);
    // vsetvli must have granted all 32 elements in one go (VLMAX = 32
    // at e64/m2 with VLEN=1024).
    assert_eq!(core.hart().vl, 32);
    let dst = 0x8100_0000u64 + 32 * 8;
    for i in 0..32u64 {
        assert_eq!(mem.read_u64(dst + i * 8), i + 5, "element {i}");
    }
}

#[test]
fn mask_compare_merge_and_cpop() {
    let src = "
        .data
        v: .dword 5, 12, 3, 20, 7, 15, 1, 9
        out: .zero 64
        counts: .zero 16
        .text
        _start:
            li t0, 8
            vsetvli t1, t0, e64,m1,ta,ma
            la t2, v
            vle64.v v1, (t2)
            li t3, 10
            vmslt.vx v0, v1, t3      # mask: v[i] < 10
            vcpop.m t4, v0           # how many small elements
            vfirst.m t5, v0          # index of the first small one
            # replace small elements by zero
            vmerge.vim v2, v1, 0, v0 # mask set -> 0, else keep
            la t6, out
            vse64.v v2, (t6)
            la a1, counts
            sd t4, 0(a1)
            sd t5, 8(a1)
            li a0, 0
            li a7, 93
            ecall";
    let (_, mem) = run(src);
    let out = 0x8100_0000u64 + 64;
    let expected = [0u64, 12, 0, 20, 0, 15, 0, 0];
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(mem.read_u64(out + i as u64 * 8), *want, "element {i}");
    }
    let counts = out + 64;
    assert_eq!(mem.read_u64(counts), 5, "five elements below 10");
    assert_eq!(mem.read_u64(counts + 8), 0, "first small element at 0");
}

#[test]
fn fp_mask_compare_and_vfmerge() {
    let src = "
        .data
        v: .double -1.5, 2.0, -0.25, 3.0
        out: .zero 32
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64,m1,ta,ma
            la t2, v
            vle64.v v1, (t2)
            fmv.d.x fa0, zero
            vmflt.vf v0, v1, fa0     # mask: v[i] < 0.0
            vfmerge.vfm v2, v1, fa0, v0   # ReLU: negatives -> 0.0
            la t3, out
            vse64.v v2, (t3)
            li a0, 0
            li a7, 93
            ecall";
    let (_, mem) = run(src);
    let out = 0x8100_0000u64 + 32;
    let expected = [0.0f64, 2.0, 0.0, 3.0];
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(mem.read_f64(out + i as u64 * 8), *want, "element {i}");
    }
}

#[test]
fn mask_logicals_combine() {
    let src = "
        .data
        a: .dword 1, 5, 2, 8, 3, 9, 4, 6
        out: .zero 16
        .text
        _start:
            li t0, 8
            vsetvli t1, t0, e64,m1,ta,ma
            la t2, a
            vle64.v v1, (t2)
            li t3, 3
            vmsgt.vx v2, v1, t3      # > 3
            li t3, 8
            vmslt.vx v3, v1, t3      # < 8
            vmand.mm v4, v2, v3      # 3 < x < 8: {5, 6} and {4}? values 5,4,6
            vcpop.m t4, v4
            vmxor.mm v5, v2, v3      # exactly one side
            vcpop.m t5, v5
            la t6, out
            sd t4, 0(t6)
            sd t5, 8(t6)
            li a0, 0
            li a7, 93
            ecall";
    let (_, mem) = run(src);
    let out = 0x8100_0000u64 + 64;
    // values: 1 5 2 8 3 9 4 6 → >3: {5,8,9,4,6}=5 elems; <8: {1,5,2,3,4,6}=6
    // and: {5,4,6}=3 ; xor: (5-3)+(6-3)=2+3=5
    assert_eq!(mem.read_u64(out), 3);
    assert_eq!(mem.read_u64(out + 8), 5);
}

#[test]
fn vfirst_returns_minus_one_when_empty() {
    let src = "
        _start:
            li t0, 8
            vsetvli t1, t0, e64,m1,ta,ma
            vmv.v.i v1, 0            # zero mask register
            vfirst.m a0, v1
            li a7, 93
            ecall";
    let (core, _) = run(src);
    match core.state() {
        coyote_iss::CoreState::Halted(code) => assert_eq!(code, -1),
        other => panic!("{other:?}"),
    }
}
