//! `coyote-check`: the workload gate.
//!
//! ```text
//! coyote-check PROGRAM.s [--cores N] [--check] [--json] [--baseline FILE]
//! ```
//!
//! Assembles `PROGRAM.s`, runs the static analysis for `N` harts and
//! prints the diagnostics. With `--check` the exit code becomes a CI
//! gate: 1 when any error is present, or when a warning appears that
//! the baseline file does not already acknowledge; 2 on usage or I/O
//! problems. A baseline is a plain text file of `rule pc` keys (one
//! per line, `#` comments allowed) — commit it to acknowledge known
//! warnings without letting new ones in.

use std::path::PathBuf;
use std::process::ExitCode;

use coyote_analysis::check::{check, Severity};
use coyote_asm::Assembler;

const USAGE: &str =
    "usage: coyote-check PROGRAM.s [--cores N] [--check] [--json] [--baseline FILE]";

struct Args {
    program: PathBuf,
    cores: usize,
    gate: bool,
    json: bool,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut program = None;
    let mut cores = 4usize;
    let mut gate = false;
    let mut json = false;
    let mut baseline = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cores" => {
                cores = take(&mut it, "--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?;
                if cores == 0 {
                    return Err("--cores must be at least 1".to_owned());
                }
            }
            "--check" => gate = true,
            "--json" => json = true,
            "--baseline" => baseline = Some(PathBuf::from(take(&mut it, "--baseline")?)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with("--") && program.is_none() => {
                program = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Args {
        program: program.ok_or_else(|| format!("missing PROGRAM.s\n{USAGE}"))?,
        cores,
        gate,
        json,
        baseline,
    })
}

fn take(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn load_baseline(path: &PathBuf) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading baseline {}: {e}", path.display()))?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect())
}

fn run(args: &Args) -> Result<bool, String> {
    let source = std::fs::read_to_string(&args.program)
        .map_err(|e| format!("reading {}: {e}", args.program.display()))?;
    let program = Assembler::new()
        .assemble(&source)
        .map_err(|e| format!("{}:{}: {}", args.program.display(), e.line, e.message))?;
    let baseline = match &args.baseline {
        Some(path) => load_baseline(path)?,
        None => Vec::new(),
    };

    let report = check(&program, args.cores);
    let errors = report.count(Severity::Error);
    let new_warnings = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning && !baseline.contains(&d.baseline_key()))
        .count();
    let suppressed = report.count(Severity::Warning) - new_warnings;

    if args.json {
        let doc = report
            .to_json()
            .with("program", args.program.display().to_string())
            .with("new_warnings", new_warnings)
            .with("baseline_suppressed", suppressed);
        println!("{}", doc.to_string_pretty());
    } else {
        for d in &report.diagnostics {
            let acknowledged =
                d.severity == Severity::Warning && baseline.contains(&d.baseline_key());
            println!("{}{}", d, if acknowledged { " (baselined)" } else { "" });
        }
        println!(
            "coyote-check: {} error(s), {} new warning(s), {} baseline-suppressed \
             over {} core(s)",
            errors, new_warnings, suppressed, args.cores
        );
    }
    Ok(!args.gate || (errors == 0 && new_warnings == 0))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("coyote-check: {message}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("coyote-check: {message}");
            ExitCode::from(2)
        }
    }
}
