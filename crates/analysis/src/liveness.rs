//! Block-level register liveness over a recovered CFG.
//!
//! The abstract interpreter masks registers that are dead on entry to
//! a block to `Top` before joining states: dead registers cannot
//! influence any address computation downstream, and collapsing them
//! removes spurious join failures (two paths that differ only in a
//! scratch register still meet in a representable state).

use coyote_isa::cfg::Cfg;
use coyote_isa::predecode::{DecodedInst, RegSet};

/// Per-block liveness summary.
#[derive(Clone, Debug, Default)]
pub struct BlockLiveness {
    /// Registers read somewhere in the block before being written
    /// there (upward-exposed uses).
    pub uses: RegSet,
    /// Registers written anywhere in the block.
    pub defs: RegSet,
    /// Registers live on entry to the block.
    pub live_in: RegSet,
    /// Registers live on exit from the block.
    pub live_out: RegSet,
}

/// Computes live-in/live-out register sets for every block of `cfg`
/// by backward fixpoint over the block graph.
#[must_use]
pub fn block_liveness(insts: &[Option<DecodedInst>], cfg: &Cfg) -> Vec<BlockLiveness> {
    let mut info: Vec<BlockLiveness> = cfg
        .blocks
        .iter()
        .map(|block| {
            let mut uses = RegSet::new();
            let mut defs = RegSet::new();
            for inst in &insts[block.start..block.start + block.len] {
                let Some(d) = inst.as_ref() else { break };
                let mut fresh = d.uses;
                fresh.remove(&defs);
                uses.insert_all(&fresh);
                defs.insert_all(&d.defs);
            }
            BlockLiveness {
                uses,
                defs,
                ..BlockLiveness::default()
            }
        })
        .collect();

    // Backward dataflow: postorder (reverse of RPO) converges fastest.
    let mut order = cfg.reverse_postorder();
    order.reverse();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let mut out = RegSet::new();
            for &s in &cfg.blocks[b].succs {
                out.insert_all(&info[s].live_in);
            }
            let mut live_in = out;
            live_in.remove(&info[b].defs);
            live_in.insert_all(&info[b].uses);
            if live_in != info[b].live_in || out != info[b].live_out {
                info[b].live_out = out;
                info[b].live_in = live_in;
                changed = true;
            }
        }
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_isa::predecode::predecode;

    #[test]
    fn loop_carried_register_is_live_at_head() {
        // 0: addi ra, ra, 1 ; 1: beq zero, zero, -4 (loop) ; 2: ecall
        let table = predecode(&[0x0010_8093, 0xfe00_0ee3, 0x0000_0073]);
        let cfg = Cfg::build(&table, 0, 0);
        let live = block_liveness(&table, &cfg);
        // ra feeds its own increment around the back edge.
        assert_ne!(live[0].live_in.x & (1 << 1), 0);
        assert_ne!(live[0].uses.x & (1 << 1), 0);
        assert_ne!(live[0].defs.x & (1 << 1), 0);
    }

    #[test]
    fn dead_scratch_is_not_live_in() {
        // 0: addi ra, zero, 1 (ra never read) ; 1: ecall
        let table = predecode(&[0x0010_0093, 0x0000_0073]);
        let cfg = Cfg::build(&table, 0, 0);
        let live = block_liveness(&table, &cfg);
        assert_eq!(live[0].live_in.x, 0);
    }
}
