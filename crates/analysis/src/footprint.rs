//! Per-core static memory footprints and disjointness proofs.
//!
//! A footprint is a set of [`AccessPattern`]s — strided address sets
//! tagged with an access width and direction. Two patterns are proven
//! disjoint through a cascade of increasingly expensive tiers:
//!
//! 1. **Dense ranges**: both patterns collapse to contiguous byte
//!    ranges that do not overlap.
//! 2. **Modular**: both patterns live on a common stride lattice
//!    (`gcd` of all steps) and their footprints occupy disjoint
//!    residue intervals modulo that stride. This is the tier that
//!    certifies round-robin work splits (`core i` touches row
//!    `i, i+H, i+2H, …`) even when trip counts are unbounded.
//! 3. **Exhaustive**: small bounded patterns are materialized into a
//!    [`ByteIntervalSet`] and intersected exactly.
//! 4. Otherwise: conservatively *maybe overlapping*.
//!
//! Tier 2 requires the modulus to be a power of two unless both
//! patterns are bounded *and non-wrapping*: address arithmetic is
//! modulo 2⁶⁴, and wraparound only preserves residues mod `g` when
//! `g` divides 2⁶⁴, so for other moduli every touched byte must be
//! reachable without overflowing `u64`.

use crate::domain::{gcd, StridedSet, UNBOUNDED};
use coyote_isa::ByteIntervalSet;

/// Tuple-count budget for the exhaustive tier (per pattern pair).
const EXHAUSTIVE_BUDGET: u64 = 4096;

/// One access pattern of a core's static footprint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessPattern {
    /// Abstract start addresses.
    pub addr: StridedSet,
    /// Bytes covered from each start address.
    pub width: u64,
    /// `true` for stores.
    pub write: bool,
    /// PC of the originating instruction (diagnostics).
    pub pc: u64,
}

impl AccessPattern {
    /// Collapses trailing dimensions whose step is ≤ the access width
    /// into a wider contiguous access (`count` 8-byte stores at
    /// stride 8 are one 8·count-byte range). Bounded dims only.
    #[must_use]
    pub fn densified(&self) -> AccessPattern {
        let mut addr = self.addr.clone();
        let mut width = self.width;
        while let Some(&(s, c)) = addr.dims.last() {
            if c == UNBOUNDED || s > width {
                break;
            }
            let Some(span) = (c - 1).checked_mul(s).and_then(|e| e.checked_add(width)) else {
                break;
            };
            width = span;
            addr.dims.pop();
        }
        addr = StridedSet::with_dims(addr.base, addr.dims);
        AccessPattern {
            addr,
            width,
            write: self.write,
            pc: self.pc,
        }
    }

    /// The contiguous `[start, end)` range covered, when the whole
    /// pattern is one dense block (no sparse dims survive
    /// densification).
    #[must_use]
    pub fn dense_range(&self) -> Option<(u64, u64)> {
        let d = self.densified();
        if !d.addr.dims.is_empty() {
            return None;
        }
        Some((d.addr.base, d.addr.base.checked_add(d.width)?))
    }

    /// Conservative "may this pattern touch `[start, end)`" test.
    /// Unbounded patterns extend upward from their base.
    #[must_use]
    pub fn overlaps_range(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        let base = self.addr.base;
        match self.addr.extent() {
            Some(extent) => {
                let Some(top) = base
                    .checked_add(extent)
                    .and_then(|m| m.checked_add(self.width))
                else {
                    return true; // wraps: give up precision
                };
                base < end && top > start
            }
            // Unbounded upward: misses the range only when it starts
            // entirely above it.
            None => base < end,
        }
    }

    /// Materializes every covered byte range. `None` when the pattern
    /// is unbounded or larger than `budget` index tuples.
    fn enumerate(&self, budget: u64) -> Option<Vec<(u64, u64)>> {
        let d = self.densified();
        let tuples = d.addr.tuple_count()?;
        if tuples > budget {
            return None;
        }
        let mut starts = vec![d.addr.base];
        for &(s, c) in &d.addr.dims {
            let mut next = Vec::with_capacity(starts.len() * c as usize);
            for &b in &starts {
                for k in 0..c {
                    next.push(b.wrapping_add(s.wrapping_mul(k)));
                }
            }
            starts = next;
        }
        Some(
            starts
                .into_iter()
                .map(|b| (b, b.wrapping_add(d.width)))
                .collect(),
        )
    }
}

/// Residue interval `[lo, lo+len)` modulo `m` (may wrap around `m`).
fn residue_interval(p: &AccessPattern, m: u64) -> Option<(u64, u64)> {
    // Every element of the pattern is base + k·(multiple of m), so all
    // start addresses share the residue `base mod m`; the bytes then
    // span `width` residues (must not cover the full ring).
    if p.width >= m {
        return None;
    }
    let d = p.densified();
    // After densification each remaining step must be a multiple of m
    // for the single-residue argument to hold.
    if d.addr.dims.iter().any(|&(s, _)| s % m != 0) {
        return None;
    }
    if d.width >= m {
        return None;
    }
    Some((d.addr.base % m, d.width))
}

/// Whether two (possibly wrapping) residue intervals mod `m` are
/// disjoint. Both `a.0` and `b.0` must already be reduced mod `m`.
fn residues_disjoint(a: (u64, u64), b: (u64, u64), m: u64) -> bool {
    // Ring distances from a.0 up to b.0 and back. `wrapping_sub % m`
    // would be wrong here: 2⁶⁴ mod m ≠ 0 for non-power-of-two m.
    let fwd = if b.0 >= a.0 {
        b.0 - a.0
    } else {
        m - (a.0 - b.0)
    };
    let bwd = if a.0 >= b.0 {
        a.0 - b.0
    } else {
        m - (b.0 - a.0)
    };
    fwd >= a.1 && bwd >= b.1
}

/// Whether every byte the pattern touches is reachable without
/// mod-2⁶⁴ wraparound (bounded, and the largest start address plus
/// the access width stays within `u64`). Required for the modular
/// tier when the modulus does not divide 2⁶⁴. Densification keeps
/// `max + width` invariant, so checking the raw pattern suffices.
fn non_wrapping(p: &AccessPattern) -> bool {
    p.addr
        .max()
        .and_then(|mx| mx.checked_add(p.width))
        .is_some()
}

/// Result of a pairwise disjointness query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disjoint {
    /// Statically proven non-overlapping.
    Proven,
    /// Could not be proven (not necessarily a real overlap).
    Unknown,
}

/// Tries to prove that `a` and `b` can never touch the same byte.
#[must_use]
pub fn disjoint(a: &AccessPattern, b: &AccessPattern) -> Disjoint {
    // Tier 1: dense, contiguous ranges.
    if let (Some((s1, e1)), Some((s2, e2))) = (a.dense_range(), b.dense_range()) {
        return if e1 <= s2 || e2 <= s1 {
            Disjoint::Proven
        } else {
            Disjoint::Unknown
        };
    }
    // Tier 2: common stride lattice with disjoint residues.
    let mut g = 0u64;
    for p in [a, b] {
        for &(s, _) in &p.densified().addr.dims {
            g = gcd(g, s);
        }
    }
    if g > 1 && (g.is_power_of_two() || (non_wrapping(a) && non_wrapping(b))) {
        if let (Some(ra), Some(rb)) = (residue_interval(a, g), residue_interval(b, g)) {
            if residues_disjoint(ra, rb, g) {
                return Disjoint::Proven;
            }
        }
    }
    // Tier 3: exhaustive enumeration of small bounded patterns.
    if let (Some(ra), Some(rb)) = (
        a.enumerate(EXHAUSTIVE_BUDGET),
        b.enumerate(EXHAUSTIVE_BUDGET),
    ) {
        // A range with `e < s` wrapped past `u64::MAX`; dropping it
        // would treat its bytes as absent and could mis-certify the
        // pair, so give up instead. (`e == s` is a genuinely empty
        // zero-width range and is safe to skip.)
        if ra.iter().chain(rb.iter()).any(|&(s, e)| e < s) {
            return Disjoint::Unknown;
        }
        let mut set = ByteIntervalSet::new();
        for (s, e) in ra {
            if e > s {
                set.insert(s, e);
            }
        }
        let hit = rb.iter().any(|&(s, e)| e > s && set.overlaps_range(s, e));
        return if hit {
            Disjoint::Unknown
        } else {
            Disjoint::Proven
        };
    }
    Disjoint::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(addr: StridedSet, width: u64, write: bool) -> AccessPattern {
        AccessPattern {
            addr,
            width,
            write,
            pc: 0,
        }
    }

    #[test]
    fn densify_collapses_unit_stride() {
        let p = pat(StridedSet::with_dims(0x1000, vec![(8, 16)]), 8, true);
        let d = p.densified();
        assert_eq!(d.addr.as_const(), Some(0x1000));
        assert_eq!(d.width, 128);
        assert_eq!(p.dense_range(), Some((0x1000, 0x1080)));
    }

    #[test]
    fn dense_ranges_prove_block_splits() {
        let a = pat(StridedSet::with_dims(0x1000, vec![(8, 16)]), 8, true);
        let b = pat(StridedSet::with_dims(0x1080, vec![(8, 16)]), 8, true);
        assert_eq!(disjoint(&a, &b), Disjoint::Proven);
        let c = pat(StridedSet::with_dims(0x1078, vec![(8, 16)]), 8, true);
        assert_eq!(disjoint(&a, &c), Disjoint::Unknown);
    }

    #[test]
    fn modular_tier_proves_round_robin_even_unbounded() {
        // Core 0 touches bytes ≡ 0 (mod 32), core 1 bytes ≡ 8 (mod 32),
        // with no static trip bound.
        let a = pat(
            StridedSet::with_dims(0x1000, vec![(32, UNBOUNDED)]),
            8,
            true,
        );
        let b = pat(
            StridedSet::with_dims(0x1008, vec![(32, UNBOUNDED)]),
            8,
            true,
        );
        assert_eq!(disjoint(&a, &b), Disjoint::Proven);
        // Same residue: cannot be proven apart.
        let c = pat(
            StridedSet::with_dims(0x1020, vec![(32, UNBOUNDED)]),
            8,
            true,
        );
        assert_eq!(disjoint(&a, &c), Disjoint::Unknown);
    }

    #[test]
    fn modular_tier_requires_power_of_two_when_unbounded() {
        // Stride 24 lattice: sound for bounded patterns, refused when
        // either side is unbounded (wraparound breaks residues).
        let a = pat(StridedSet::with_dims(0, vec![(24, UNBOUNDED)]), 8, true);
        let b = pat(StridedSet::with_dims(8, vec![(24, UNBOUNDED)]), 8, true);
        assert_eq!(disjoint(&a, &b), Disjoint::Unknown);
        let ab = pat(StridedSet::with_dims(0, vec![(24, 1000)]), 8, true);
        let bb = pat(StridedSet::with_dims(8, vec![(24, 1000)]), 8, true);
        assert_eq!(disjoint(&ab, &bb), Disjoint::Proven);
    }

    #[test]
    fn modular_tier_handles_wrapping_residues_mod_non_pow2() {
        // Stride-24 lattice, residue intervals (20, 6) and (1, 1):
        // the first wraps the ring (residues 20..24 ∪ {0, 1}) and
        // shares residue 1 with the second — byte 49 is touched by
        // both. Counts exceed the exhaustive budget so tier 2 decides.
        let a = pat(StridedSet::with_dims(44, vec![(24, 5000)]), 6, true);
        let b = pat(StridedSet::with_dims(49, vec![(24, 5000)]), 1, true);
        assert_eq!(disjoint(&a, &b), Disjoint::Unknown);
        // Shrinking the first interval to (20, 4) clears residue 1:
        // now genuinely disjoint, and the wrap-aware ring distance
        // (5, not the bogus wrapping_sub value 21) still proves it.
        let a4 = pat(StridedSet::with_dims(44, vec![(24, 5000)]), 4, true);
        assert_eq!(disjoint(&a4, &b), Disjoint::Proven);
    }

    #[test]
    fn modular_tier_refuses_wrapping_patterns_mod_non_pow2() {
        // Bounded but wrapping mod 2⁶⁴: the second element of `a` is
        // (u64::MAX - 3) + 24 = 20, whose true residue mod 24 is 20,
        // not base % 24 = 12 — the residue argument is invalid, and
        // the patterns really do collide on bytes 20..24.
        let a = pat(StridedSet::with_dims(u64::MAX - 3, vec![(24, 2)]), 4, true);
        let b = pat(StridedSet::with_dims(20, vec![(24, 2)]), 4, true);
        assert_eq!(disjoint(&a, &b), Disjoint::Unknown);
    }

    #[test]
    fn exhaustive_tier_is_conservative_on_wrapped_ranges() {
        // `a` covers [u64::MAX-3, u64::MAX] ∪ [0, 4) via wraparound;
        // dropping the wrapped range would "prove" it disjoint from
        // [0, 4).
        let a = pat(StridedSet::constant(u64::MAX - 3), 8, true);
        let b = pat(StridedSet::constant(0), 4, true);
        assert_eq!(disjoint(&a, &b), Disjoint::Unknown);
    }

    #[test]
    fn exhaustive_tier_handles_irregular_interleavings() {
        // {0, 24} with width 8 vs {8, 40}: no common lattice proof, but
        // enumeration shows no byte is shared.
        let a = pat(StridedSet::with_dims(0, vec![(24, 2)]), 8, true);
        let b = pat(StridedSet::with_dims(8, vec![(40, 2), (3, 2)]), 1, true);
        assert_eq!(disjoint(&a, &b), Disjoint::Proven);
        let c = pat(StridedSet::with_dims(7, vec![(41, 2)]), 2, true);
        assert_eq!(disjoint(&a, &c), Disjoint::Unknown);
    }

    #[test]
    fn overlaps_range_is_conservative_for_unbounded() {
        let p = pat(
            StridedSet::with_dims(0x2000, vec![(64, UNBOUNDED)]),
            8,
            true,
        );
        assert!(p.overlaps_range(0x3000, 0x3008));
        assert!(!p.overlaps_range(0x1000, 0x2000));
        let q = pat(StridedSet::constant(0x100), 4, false);
        assert!(q.overlaps_range(0x102, 0x110));
        assert!(!q.overlaps_range(0x104, 0x110));
    }
}
