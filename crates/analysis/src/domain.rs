//! The abstract value domain: multi-dimensional strided sets.
//!
//! A [`StridedSet`] represents `{ base + Σ kᵢ·stepᵢ : 0 ≤ kᵢ < countᵢ }`
//! — exactly the address shapes HPC kernels build out of nested
//! counted loops (row pointer = base + i·row_bytes + j·elem_bytes).
//! A count of [`UNBOUNDED`] marks a dimension whose trip count the
//! analysis could not bound; the set is then infinite upward but still
//! carries its stride structure, which is what the modular tier of the
//! disjointness check consumes.
//!
//! [`AbsVal`] lifts the set with a `Top` element (unknown value); the
//! lattice join lives in [`StridedSet::join`] and falls back to `Top`
//! when two sets have incompatible shapes.
//!
//! Soundness caveat (documented in `DESIGN.md` §15): arithmetic is
//! modelled without 64-bit wraparound. Counters that overflow `u64`
//! mid-loop (≥ 2⁶³ iterations) are outside the model; at simulator
//! scale such runs are unreachable, and the dynamic digest cross-check
//! in the certification property tests guards the integration anyway.

/// Sentinel count for a dimension with no static bound.
pub const UNBOUNDED: u64 = u64::MAX;

/// Maximum number of stride dimensions tracked per value; deeper
/// nesting collapses to `Top`.
pub const MAX_DIMS: usize = 4;

/// Saturating count addition for merging two runs of the same stride:
/// `{0..a}·s ⊕ {0..b}·s = {0..a+b-1}·s`.
fn merge_counts(a: u64, b: u64) -> u64 {
    if a == UNBOUNDED || b == UNBOUNDED {
        UNBOUNDED
    } else {
        a.saturating_add(b - 1)
    }
}

/// `{ base + Σ kᵢ·stepᵢ : 0 ≤ kᵢ < countᵢ }` in canonical form:
/// steps strictly descending, every count ≥ 2, no zero steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StridedSet {
    /// Smallest element (under the no-wrap assumption).
    pub base: u64,
    /// `(step, count)` pairs, steps strictly descending.
    pub dims: Vec<(u64, u64)>,
}

impl StridedSet {
    /// The singleton set `{v}`.
    #[must_use]
    pub fn constant(v: u64) -> StridedSet {
        StridedSet {
            base: v,
            dims: Vec::new(),
        }
    }

    /// Builds a set from raw dims, canonicalizing.
    #[must_use]
    pub fn with_dims(base: u64, dims: Vec<(u64, u64)>) -> StridedSet {
        let mut set = StridedSet { base, dims };
        set.canonicalize();
        set
    }

    fn canonicalize(&mut self) {
        self.dims.retain(|&(s, c)| s != 0 && c >= 2);
        self.dims
            .sort_unstable_by_key(|&(s, _)| std::cmp::Reverse(s));
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.dims.len());
        for &(s, c) in &self.dims {
            match merged.last_mut() {
                Some(last) if last.0 == s => last.1 = merge_counts(last.1, c),
                _ => merged.push((s, c)),
            }
        }
        self.dims = merged;
    }

    /// `Some(v)` when the set is the singleton `{v}`.
    #[must_use]
    pub fn as_const(&self) -> Option<u64> {
        self.dims.is_empty().then_some(self.base)
    }

    /// Whether every dimension has a finite count.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.dims.iter().all(|&(_, c)| c != UNBOUNDED)
    }

    /// `Σ (countᵢ-1)·stepᵢ`: distance from `base` to the largest
    /// element. `None` when unbounded or the arithmetic overflows.
    #[must_use]
    pub fn extent(&self) -> Option<u64> {
        let mut total: u64 = 0;
        for &(s, c) in &self.dims {
            if c == UNBOUNDED {
                return None;
            }
            total = total.checked_add((c - 1).checked_mul(s)?)?;
        }
        Some(total)
    }

    /// Largest element, when bounded and non-wrapping.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.base.checked_add(self.extent()?)
    }

    /// Number of `(kᵢ)` index tuples (an upper bound on the number of
    /// distinct elements). `None` when unbounded or huge.
    #[must_use]
    pub fn tuple_count(&self) -> Option<u64> {
        let mut total: u64 = 1;
        for &(_, c) in &self.dims {
            if c == UNBOUNDED {
                return None;
            }
            total = total.checked_mul(c)?;
        }
        Some(total)
    }

    /// Pointwise `+ d` (wrapping).
    #[must_use]
    pub fn add_const(&self, d: u64) -> StridedSet {
        StridedSet {
            base: self.base.wrapping_add(d),
            dims: self.dims.clone(),
        }
    }

    /// Pointwise sum of the two sets. `None` when the result needs
    /// more than [`MAX_DIMS`] dimensions.
    #[must_use]
    pub fn add(&self, other: &StridedSet) -> Option<StridedSet> {
        let mut dims = self.dims.clone();
        dims.extend_from_slice(&other.dims);
        let set = StridedSet::with_dims(self.base.wrapping_add(other.base), dims);
        (set.dims.len() <= MAX_DIMS).then_some(set)
    }

    /// The pointwise negation `{ -x }`. Requires a bounded set: the
    /// negated set is `{ -max + Σ kᵢ·stepᵢ }`.
    #[must_use]
    pub fn negated(&self) -> Option<StridedSet> {
        let max = self.max()?;
        Some(StridedSet {
            base: 0u64.wrapping_sub(max),
            dims: self.dims.clone(),
        })
    }

    /// Pointwise difference `self - other`.
    #[must_use]
    pub fn sub(&self, other: &StridedSet) -> Option<StridedSet> {
        if let Some(c) = other.as_const() {
            return Some(self.add_const(0u64.wrapping_sub(c)));
        }
        self.add(&other.negated()?)
    }

    /// Pointwise multiplication by a constant. `None` on stride
    /// overflow (the structure is no longer representable).
    #[must_use]
    pub fn mul_const(&self, m: u64) -> Option<StridedSet> {
        if m == 0 {
            return Some(StridedSet::constant(0));
        }
        let mut dims = Vec::with_capacity(self.dims.len());
        for &(s, c) in &self.dims {
            dims.push((s.checked_mul(m)?, c));
        }
        Some(StridedSet::with_dims(self.base.wrapping_mul(m), dims))
    }

    /// Pointwise left shift.
    #[must_use]
    pub fn shl_const(&self, sh: u32) -> Option<StridedSet> {
        if sh >= 64 {
            return Some(StridedSet::constant(0));
        }
        self.mul_const(1u64 << sh)
    }

    /// Least-upper-bound join. `None` means the shapes are
    /// incompatible and the caller must go to `Top`.
    #[must_use]
    pub fn join(&self, other: &StridedSet) -> Option<StridedSet> {
        if self == other {
            return Some(self.clone());
        }
        self.cover(other).or_else(|| other.cover(self))
    }

    /// A superset of `self ∪ other` anchored at `self.base`, when
    /// `other` sits a representable offset above `self`.
    fn cover(&self, other: &StridedSet) -> Option<StridedSet> {
        let d = other.base.wrapping_sub(self.base);
        if d == 0 || d >= 1 << 63 {
            // Equal bases with different dims are handled below only
            // via the dims comparison; `other` below `self` is the
            // mirrored call.
            if d != 0 {
                return None;
            }
        }
        if self.dims == other.dims {
            if d == 0 {
                return Some(self.clone());
            }
            // Same shape, shifted: extend the count of a dividing
            // stride, or add a fresh dimension for the shift.
            for (i, &(s, _)) in self.dims.iter().enumerate() {
                if d.is_multiple_of(s) {
                    let mut out = self.clone();
                    let hops = d / s;
                    out.dims[i].1 = if out.dims[i].1 == UNBOUNDED {
                        UNBOUNDED
                    } else {
                        out.dims[i].1.saturating_add(hops)
                    };
                    out.canonicalize();
                    return Some(out);
                }
            }
            if self.dims.len() < MAX_DIMS {
                let mut dims = self.dims.clone();
                dims.push((d, 2));
                return Some(StridedSet::with_dims(self.base, dims));
            }
            return None;
        }
        if self.dims.is_empty() {
            // Constant below a strided set: re-anchor the strided set
            // at the constant.
            for (i, &(s, _)) in other.dims.iter().enumerate() {
                if d.is_multiple_of(s) {
                    let mut out = other.clone();
                    out.base = self.base;
                    let hops = d / s;
                    out.dims[i].1 = if out.dims[i].1 == UNBOUNDED {
                        UNBOUNDED
                    } else {
                        out.dims[i].1.saturating_add(hops)
                    };
                    out.canonicalize();
                    return Some(out);
                }
            }
            if other.dims.len() < MAX_DIMS {
                let mut dims = other.dims.clone();
                dims.push((d, 2));
                return Some(StridedSet::with_dims(self.base, dims));
            }
            return None;
        }
        if other.dims.is_empty() {
            // Strided set with a constant above it: grow a dividing
            // stride far enough to reach the constant.
            for (i, &(s, c)) in self.dims.iter().enumerate() {
                if d.is_multiple_of(s) {
                    let hops = d / s;
                    let mut out = self.clone();
                    out.dims[i].1 = if c == UNBOUNDED {
                        UNBOUNDED
                    } else {
                        c.max(hops.saturating_add(1))
                    };
                    out.canonicalize();
                    return Some(out);
                }
            }
            if self.dims.len() < MAX_DIMS {
                let mut dims = self.dims.clone();
                dims.push((d, 2));
                return Some(StridedSet::with_dims(self.base, dims));
            }
        }
        None
    }

    /// Refines the set under the constraint `value < bound`
    /// (interpreting elements as unsigned, no-wrap).
    #[must_use]
    pub fn clamp_below(&self, bound: u64) -> Clamp {
        if self.base >= bound {
            return Clamp::Empty;
        }
        if self.dims.is_empty() {
            return Clamp::Unchanged;
        }
        let (s0, c0) = self.dims[0];
        let avail = bound - 1 - self.base;
        let new_c0 = (avail / s0).saturating_add(1);
        if c0 != UNBOUNDED && new_c0 >= c0 {
            return Clamp::Unchanged;
        }
        let mut out = self.clone();
        out.dims[0].1 = new_c0;
        out.canonicalize();
        Clamp::Refined(out)
    }
}

/// Result of [`StridedSet::clamp_below`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Clamp {
    /// The constraint removes nothing representable.
    Unchanged,
    /// A strictly smaller set satisfying the constraint.
    Refined(StridedSet),
    /// No element can satisfy the constraint: the edge is infeasible.
    Empty,
}

/// An abstract register value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsVal {
    /// Unknown.
    Top,
    /// Some element of the set.
    Set(StridedSet),
}

impl AbsVal {
    /// The singleton `{v}`.
    #[must_use]
    pub fn constant(v: u64) -> AbsVal {
        AbsVal::Set(StridedSet::constant(v))
    }

    /// `Some(v)` when the value is the known constant `v`.
    #[must_use]
    pub fn as_const(&self) -> Option<u64> {
        match self {
            AbsVal::Set(s) => s.as_const(),
            AbsVal::Top => None,
        }
    }

    /// The underlying set, if any.
    #[must_use]
    pub fn as_set(&self) -> Option<&StridedSet> {
        match self {
            AbsVal::Set(s) => Some(s),
            AbsVal::Top => None,
        }
    }

    /// Lattice join (`Top` absorbs).
    #[must_use]
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Set(a), AbsVal::Set(b)) => a.join(b).map_or(AbsVal::Top, AbsVal::Set),
            _ => AbsVal::Top,
        }
    }

    /// Maps a binary set operation over two values, `Top`-absorbing.
    #[must_use]
    pub fn lift2(
        &self,
        other: &AbsVal,
        f: impl FnOnce(&StridedSet, &StridedSet) -> Option<StridedSet>,
    ) -> AbsVal {
        match (self, other) {
            (AbsVal::Set(a), AbsVal::Set(b)) => f(a, b).map_or(AbsVal::Top, AbsVal::Set),
            _ => AbsVal::Top,
        }
    }
}

/// Greatest common divisor (0 is the identity: `gcd(0, x) = x`).
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_merges_and_sorts() {
        let s = StridedSet::with_dims(100, vec![(8, 4), (64, 2), (8, 3), (0, 9), (16, 1)]);
        assert_eq!(s.dims, vec![(64, 2), (8, 6)]);
        assert_eq!(s.max(), Some(100 + 64 + 40));
        assert_eq!(s.tuple_count(), Some(12));
    }

    #[test]
    fn arithmetic_preserves_structure() {
        let s = StridedSet::with_dims(16, vec![(8, 4)]);
        assert_eq!(s.add_const(8).base, 24);
        let scaled = s.mul_const(3).expect("scales");
        assert_eq!(scaled.base, 48);
        assert_eq!(scaled.dims, vec![(24, 4)]);
        let shifted = s.shl_const(1).expect("shifts");
        assert_eq!(shifted.dims, vec![(16, 4)]);
        let neg = s.negated().expect("bounded");
        assert_eq!(neg.base, 0u64.wrapping_sub(40));
        let diff = StridedSet::constant(100).sub(&s).expect("bounded rhs");
        assert_eq!(diff.base, 60);
        assert_eq!(diff.dims, vec![(8, 4)]);
    }

    #[test]
    fn join_extends_counts_and_adds_dims() {
        // Same shape shifted by one stride hop: count grows.
        let a = StridedSet::with_dims(0, vec![(8, 4)]);
        let b = StridedSet::with_dims(16, vec![(8, 4)]);
        let j = a.join(&b).expect("covers");
        assert_eq!(j, StridedSet::with_dims(0, vec![(8, 6)]));

        // Constant joined with its own successor: a new dimension.
        let c = StridedSet::constant(0)
            .join(&StridedSet::constant(8))
            .expect("covers");
        assert_eq!(c, StridedSet::with_dims(0, vec![(8, 2)]));

        // That set joined with the next step widens the count again.
        let c2 = c.join(&StridedSet::constant(16)).expect("covers");
        assert_eq!(c2, StridedSet::with_dims(0, vec![(8, 3)]));

        // Incompatible base offset with full dims: gives up.
        let full = StridedSet::with_dims(0, vec![(64, 2), (16, 2), (4, 2), (2, 2)]);
        let off = full.add_const(1);
        assert!(full.join(&off).is_none());
    }

    #[test]
    fn clamp_below_trims_the_major_dimension() {
        let s = StridedSet::with_dims(0, vec![(8, UNBOUNDED)]);
        match s.clamp_below(64) {
            Clamp::Refined(r) => assert_eq!(r, StridedSet::with_dims(0, vec![(8, 8)])),
            other => panic!("expected refinement, got {other:?}"),
        }
        assert_eq!(StridedSet::constant(100).clamp_below(50), Clamp::Empty);
        assert_eq!(StridedSet::constant(10).clamp_below(50), Clamp::Unchanged);
        let small = StridedSet::with_dims(0, vec![(8, 4)]);
        assert_eq!(small.clamp_below(1000), Clamp::Unchanged);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 8), 8);
        assert_eq!(gcd(24, 36), 12);
        assert_eq!(gcd(7, 5), 1);
    }
}
