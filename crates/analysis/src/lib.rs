//! Guest-binary static analysis for the Coyote simulator.
//!
//! The simulator's parallel orchestrator proves at *runtime*, every
//! window, that concurrently executed cores never touched the same
//! byte. This crate moves that proof to *load time* when the workload
//! allows: it recovers a control-flow graph from the predecoded text,
//! runs a strided-interval abstract interpretation per core (with
//! `mhartid` concretized, so one SPMD image yields per-core
//! footprints), and tries to prove all cross-core write/any pairs
//! disjoint. A granted certificate lets the runtime skip its dynamic
//! conflict sweep wholesale; any condition the static story cannot
//! cover (indirect jumps, escapes from text, unresolvable addresses,
//! atomics, vector memory) denies the certificate and the runtime
//! keeps its sweep — certification is a pure fast path, never a
//! soundness trade.
//!
//! The same artifacts power `coyote-check`, a workload linter that
//! reports dead code, misaligned accesses, stores into the text
//! segment, cross-core false sharing and a static stack estimate —
//! see [`check`].
//!
//! Pipeline: [`Cfg`](coyote_isa::Cfg) recovery →
//! [`liveness`] → [`absint`] (per core) → [`footprint`] disjointness
//! tiers → [`certify`] / [`check`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod certify;
pub mod check;
pub mod domain;
pub mod footprint;
pub mod liveness;

pub use absint::{CoreAnalysis, MemAccess, Poison};
pub use certify::{analyze, certify, certify_analysis, Analysis, CertifyOutcome};
pub use check::{check, CheckReport, Diagnostic, Severity};
pub use domain::{AbsVal, StridedSet, UNBOUNDED};
pub use footprint::{disjoint, AccessPattern, Disjoint};
