//! Workload diagnostics for `coyote-check`.
//!
//! [`check`] runs the full static analysis over an assembled program
//! and turns its artifacts into actionable findings: dead code,
//! misaligned scalar accesses, stores into the text segment,
//! cross-core cache-line sharing, a static stack estimate, and the
//! disjointness-certificate verdict. Each [`Diagnostic`] carries a
//! severity so CI gates can fail on errors while tracking warnings
//! through a committed baseline.

use crate::certify::{analyze, certify_analysis, Analysis, CertifyOutcome};
use crate::domain::UNBOUNDED;
use crate::footprint::{disjoint, AccessPattern, Disjoint};
use coyote_asm::Program;
use coyote_isa::Inst;
use coyote_telemetry::JsonValue;

/// Cache-line size assumed by the sharing heuristic, matching the
/// simulator's memory hierarchy.
const LINE_BYTES: u64 = 64;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Neutral information (stack estimate, certificate verdict).
    Info,
    /// Probably a performance or hygiene problem.
    Warning,
    /// Almost certainly a bug (e.g. a store into the text segment).
    Error,
}

impl Severity {
    /// Lowercase label used in reports and baselines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding about the workload.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// Stable rule identifier (baseline key).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Guest PC the finding anchors to, when it has one.
    pub pc: Option<u64>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pc {
            Some(pc) => write!(
                f,
                "{}: [{}] {:#x}: {}",
                self.severity.label(),
                self.rule,
                pc,
                self.message
            ),
            None => write!(
                f,
                "{}: [{}] {}",
                self.severity.label(),
                self.rule,
                self.message
            ),
        }
    }
}

impl Diagnostic {
    /// Stable one-line form used as the baseline key (no counts, no
    /// per-run noise).
    #[must_use]
    pub fn baseline_key(&self) -> String {
        match self.pc {
            Some(pc) => format!("{} {:#x}", self.rule, pc),
            None => self.rule.to_owned(),
        }
    }

    /// JSON form for `--json` output.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let doc = JsonValue::object()
            .with("severity", self.severity.label())
            .with("rule", self.rule)
            .with("message", self.message.clone());
        match self.pc {
            Some(pc) => doc.with("pc", pc),
            None => doc,
        }
    }
}

/// Full report of one `coyote-check` run.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Findings, stable order (rule groups in document order).
    pub diagnostics: Vec<Diagnostic>,
    /// The certification verdict the diagnostics refer to.
    pub certificate: CertifyOutcome,
}

impl CheckReport {
    /// Number of findings at `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// JSON form for `--json` output.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let items: Vec<JsonValue> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        let reasons: Vec<JsonValue> = self
            .certificate
            .reasons
            .iter()
            .map(|r| JsonValue::Str(r.clone()))
            .collect();
        JsonValue::object()
            .with("errors", self.count(Severity::Error))
            .with("warnings", self.count(Severity::Warning))
            .with(
                "certificate",
                JsonValue::object()
                    .with("cores", self.certificate.cores)
                    .with("granted", self.certificate.granted)
                    .with("reasons", JsonValue::Array(reasons)),
            )
            .with("diagnostics", JsonValue::Array(items))
    }
}

/// Coalesces sorted word indices into inclusive `(start, end)` runs.
fn coalesce(words: &[usize]) -> Vec<(usize, usize)> {
    let mut runs: Vec<(usize, usize)> = Vec::new();
    for &w in words {
        match runs.last_mut() {
            Some(run) if run.1 + 1 == w => run.1 = w,
            _ => runs.push((w, w)),
        }
    }
    runs
}

/// Runs every diagnostic pass over `program` analyzed for `cores`
/// harts.
#[must_use]
pub fn check(program: &Program, cores: usize) -> CheckReport {
    let analysis = analyze(program, cores);
    let certificate = certify_analysis(&analysis, cores);
    let mut diagnostics = Vec::new();

    unreachable_code(&analysis, program, &mut diagnostics);
    misaligned_accesses(&analysis, &mut diagnostics);
    text_writes(&analysis, program, &mut diagnostics);
    shared_lines(&analysis, program, &mut diagnostics);
    stack_estimate(program, &mut diagnostics);
    diagnostics.push(Diagnostic {
        severity: Severity::Info,
        rule: "certificate",
        message: if certificate.granted {
            format!(
                "disjointness certificate GRANTED for {} core(s): runtime conflict sweep is skippable",
                certificate.cores
            )
        } else {
            format!(
                "disjointness certificate denied for {} core(s): {}",
                certificate.cores,
                certificate
                    .reasons
                    .first()
                    .map_or("no accesses analyzed", String::as_str)
            )
        },
        pc: None,
    });

    CheckReport {
        diagnostics,
        certificate,
    }
}

fn unreachable_code(analysis: &Analysis, program: &Program, out: &mut Vec<Diagnostic>) {
    let base = program.text_base();
    // Interpreter reachability beats CFG reachability: a block behind
    // a proven `exit` syscall is dead even though the CFG keeps the
    // ecall fallthrough edge.
    let mut covered = vec![false; analysis.cfg.words];
    for (b, block) in analysis.cfg.blocks.iter().enumerate() {
        if analysis
            .cores
            .iter()
            .any(|c| c.reached.get(b) == Some(&true))
        {
            for flag in covered.iter_mut().skip(block.start).take(block.len) {
                *flag = true;
            }
        }
    }
    let dead: Vec<usize> = covered
        .iter()
        .enumerate()
        .filter_map(|(i, &c)| (!c).then_some(i))
        .collect();
    for (start, end) in coalesce(&dead) {
        let words = end - start + 1;
        out.push(Diagnostic {
            severity: Severity::Warning,
            rule: "unreachable-code",
            message: format!(
                "{words} instruction word(s) never reachable from the entry point \
                 (through {:#x})",
                base + 4 * end as u64
            ),
            pc: Some(base + 4 * start as u64),
        });
    }
}

fn misaligned_accesses(analysis: &Analysis, out: &mut Vec<Diagnostic>) {
    // Dedup by pc: every core shares the text, and a misalignment is a
    // property of the instruction, not the hart.
    let mut seen: Vec<u64> = Vec::new();
    for core in &analysis.cores {
        for access in &core.accesses {
            if access.width <= 1 || seen.contains(&access.pc) {
                continue;
            }
            let base_off = access.addr.base % access.width != 0;
            let step_off = access.addr.dims.iter().any(|&(s, _)| s % access.width != 0);
            if base_off || step_off {
                seen.push(access.pc);
                out.push(Diagnostic {
                    severity: Severity::Warning,
                    rule: "misaligned-access",
                    message: format!(
                        "{}-byte {} not aligned to its width (base {:#x}{})",
                        access.width,
                        if access.write { "store" } else { "load" },
                        access.addr.base,
                        if step_off { ", stride misaligned" } else { "" }
                    ),
                    pc: Some(access.pc),
                });
            }
        }
    }
}

fn text_writes(analysis: &Analysis, program: &Program, out: &mut Vec<Diagnostic>) {
    let start = program.text_base();
    let end = start + 4 * program.text().len() as u64;
    let mut seen: Vec<u64> = Vec::new();
    for core in &analysis.cores {
        for access in core.accesses.iter().filter(|a| a.write) {
            if seen.contains(&access.pc) {
                continue;
            }
            let pattern = AccessPattern {
                addr: access.addr.clone(),
                width: access.width,
                write: true,
                pc: access.pc,
            };
            if pattern.overlaps_range(start, end) {
                seen.push(access.pc);
                out.push(Diagnostic {
                    severity: Severity::Error,
                    rule: "text-write",
                    message: format!(
                        "store may hit the text segment [{start:#x}, {end:#x}): \
                         self-modifying code forces the simulator onto the slow path"
                    ),
                    pc: Some(access.pc),
                });
            }
        }
    }
}

/// Rounds a pattern out to whole cache lines.
fn to_lines(p: &AccessPattern) -> AccessPattern {
    // Densify first: a stride-8 walk over a row is one contiguous
    // range, and rounding THAT to line granularity is exact. Rounding
    // the strided form element-by-uniform-shift would widen every
    // element past its neighbour and fabricate overlaps inside
    // line-aligned partitions.
    let dense = p.densified();
    let mut addr = dense.addr;
    let shift = addr.base % LINE_BYTES;
    addr.base -= shift;
    let width = (shift + dense.width).div_ceil(LINE_BYTES) * LINE_BYTES;
    AccessPattern {
        addr,
        width,
        write: p.write,
        pc: p.pc,
    }
}

fn shared_lines(analysis: &Analysis, program: &Program, out: &mut Vec<Diagnostic>) {
    // A program that synchronizes explicitly shares lines on purpose.
    let table = coyote_isa::predecode::predecode(program.text());
    let synchronizes = analysis.cfg.blocks.iter().any(|b| {
        (b.start..b.start + b.len).any(|idx| {
            matches!(
                table.get(idx).and_then(|d| d.as_ref()).map(|d| d.inst),
                Some(Inst::Amo { .. } | Inst::Fence)
            )
        })
    });
    if synchronizes || analysis.cores.len() < 2 {
        return;
    }
    let per_core: Vec<Vec<AccessPattern>> = analysis
        .cores
        .iter()
        .map(|c| {
            c.accesses
                .iter()
                .map(|m| AccessPattern {
                    addr: m.addr.clone(),
                    width: m.width,
                    write: m.write,
                    pc: m.pc,
                })
                .collect()
        })
        .collect();
    let mut seen: Vec<(u64, u64)> = Vec::new();
    for i in 0..per_core.len() {
        for j in i + 1..per_core.len() {
            for w in per_core[i].iter().filter(|p| p.write) {
                for q in &per_core[j] {
                    // Byte-disjoint but same cache line: false sharing.
                    if disjoint(w, q) == Disjoint::Proven
                        && disjoint(&to_lines(w), &to_lines(q)) == Disjoint::Unknown
                        && !seen.contains(&(w.pc, q.pc))
                    {
                        seen.push((w.pc, q.pc));
                        out.push(Diagnostic {
                            severity: Severity::Warning,
                            rule: "shared-line",
                            message: format!(
                                "write may share a {LINE_BYTES}-byte line with another \
                                 core's access at pc {:#x} (false sharing)",
                                q.pc
                            ),
                            pc: Some(w.pc),
                        });
                    }
                }
            }
        }
    }
}

fn stack_estimate(program: &Program, out: &mut Vec<Diagnostic>) {
    // Syntactic upper bound: the sum of every static `addi sp, sp, -N`
    // frame allocation. Recursion would need an indirect call, which
    // already surfaces as an indirect-jump certificate denial.
    let table = coyote_isa::predecode::predecode(program.text());
    let mut total: u64 = 0;
    for slot in table.iter().flatten() {
        if let Inst::OpImm {
            op: coyote_isa::inst::AluOp::Add,
            rd,
            rs1,
            imm,
        } = slot.inst
        {
            if rd == coyote_isa::XReg::SP && rs1 == coyote_isa::XReg::SP && imm < 0 {
                total += imm.unsigned_abs();
            }
        }
    }
    if total > 0 {
        out.push(Diagnostic {
            severity: Severity::Info,
            rule: "stack-bound",
            message: format!("static stack frame allocations total {total} bytes"),
            pc: None,
        });
    }
}

/// True when a pattern's extent suggests an unbounded loop (used by
/// callers that want to annotate reports).
#[must_use]
pub fn is_unbounded(p: &AccessPattern) -> bool {
    p.addr.dims.iter().any(|&(_, c)| c == UNBOUNDED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_asm::Assembler;

    fn program(src: &str) -> Program {
        Assembler::new()
            .text_base(0x1000)
            .data_base(0x0010_0000)
            .assemble(src)
            .expect("assembles")
    }

    #[test]
    fn clean_partitioned_kernel_reports_only_infos() {
        let report = check(
            &program(
                "csrr t0, mhartid\n\
                 slli t0, t0, 6\n\
                 li t1, 0x100000\n\
                 add t1, t1, t0\n\
                 sd zero, 0(t1)\n\
                 li a7, 93\n\
                 ecall\n",
            ),
            2,
        );
        assert_eq!(report.count(Severity::Error), 0, "{:?}", report.diagnostics);
        assert_eq!(
            report.count(Severity::Warning),
            0,
            "{:?}",
            report.diagnostics
        );
        assert!(report.certificate.granted);
    }

    #[test]
    fn dead_code_after_exit_is_flagged() {
        let report = check(
            &program(
                "li a7, 93\n\
                 ecall\n\
                 li t0, 1\n\
                 li t0, 2\n",
            ),
            1,
        );
        let dead: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "unreachable-code")
            .collect();
        assert_eq!(dead.len(), 1);
        assert!(dead[0].message.contains("2 instruction word(s)"));
    }

    #[test]
    fn misaligned_store_is_flagged() {
        let report = check(
            &program(
                "li t0, 0x100001\n\
                 sd zero, 0(t0)\n\
                 li a7, 93\n\
                 ecall\n",
            ),
            1,
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "misaligned-access"));
    }

    #[test]
    fn store_into_text_is_an_error() {
        let report = check(
            &program(
                "li t0, 0x1000\n\
                 sw zero, 0(t0)\n\
                 li a7, 93\n\
                 ecall\n",
            ),
            1,
        );
        assert_eq!(report.count(Severity::Error), 1);
        assert!(report.diagnostics.iter().any(|d| d.rule == "text-write"));
    }

    #[test]
    fn false_sharing_is_flagged_without_sync() {
        // Two cores write adjacent doublewords of one 64-byte line.
        let report = check(
            &program(
                "csrr t0, mhartid\n\
                 slli t0, t0, 3\n\
                 li t1, 0x100000\n\
                 add t1, t1, t0\n\
                 sd zero, 0(t1)\n\
                 li a7, 93\n\
                 ecall\n",
            ),
            2,
        );
        assert!(report.diagnostics.iter().any(|d| d.rule == "shared-line"));
        // Byte-level disjointness still holds.
        assert!(report.certificate.granted);
    }

    #[test]
    fn fence_suppresses_the_sharing_warning() {
        let report = check(
            &program(
                "csrr t0, mhartid\n\
                 slli t0, t0, 3\n\
                 li t1, 0x100000\n\
                 add t1, t1, t0\n\
                 sd zero, 0(t1)\n\
                 fence\n\
                 li a7, 93\n\
                 ecall\n",
            ),
            2,
        );
        assert!(!report.diagnostics.iter().any(|d| d.rule == "shared-line"));
    }

    #[test]
    fn stack_frames_produce_an_info_estimate() {
        let report = check(
            &program(
                "addi sp, sp, -64\n\
                 addi sp, sp, 64\n\
                 li a7, 93\n\
                 ecall\n",
            ),
            1,
        );
        let stack = report
            .diagnostics
            .iter()
            .find(|d| d.rule == "stack-bound")
            .expect("stack info");
        assert!(stack.message.contains("64 bytes"));
    }

    #[test]
    fn json_report_shape_is_stable() {
        let report = check(&program("li a7, 93\necall\n"), 1);
        let doc = report.to_json();
        assert!(doc.get("errors").is_some());
        assert!(doc.get("warnings").is_some());
        assert!(doc
            .get("certificate")
            .and_then(|c| c.get("granted"))
            .is_some());
        assert!(doc.get("diagnostics").is_some());
    }
}
