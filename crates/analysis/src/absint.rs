//! Abstract interpretation of one core's execution over the CFG.
//!
//! A forward dataflow fixpoint propagates per-register [`AbsVal`]
//! states block to block. Loops are handled by *widen-and-freeze*:
//! after a loop head has been revisited [`FREEZE_AT`] times without
//! converging, the interpreter builds a syntactic [`FrozenPlan`] for
//! the loop — classifying every register as invariant, a simple
//! induction variable (`addi r, r, imm` / `add r, r, invariant`), or
//! clobbered — and from then on computes the head state *functionally*
//! from the entry join alone, ignoring back edges. Counted exits
//! (`blt iv, bound` dominating all latches) give induction variables a
//! finite trip count; otherwise the widened dimension is
//! [`UNBOUNDED`], which poisons nothing by itself — the modular tier
//! of the disjointness check still exploits the stride.
//!
//! `csrr rd, mhartid` concretizes to the core index, which is how one
//! SPMD text image yields per-core footprints.
//!
//! A second, single pass over the converged states extracts the
//! [`MemAccess`] footprint and the [`Poison`] taxonomy: conditions
//! under which the static footprint cannot be trusted to cover the
//! dynamic one (indirect jumps, escapes from the predecoded text,
//! unresolvable addresses, atomics, vector memory).

use crate::domain::{AbsVal, Clamp, StridedSet, UNBOUNDED};
use crate::liveness::{block_liveness, BlockLiveness};
use coyote_isa::cfg::{BlockExit, Cfg};
use coyote_isa::inst::{AluOp, AluWOp, BranchOp, Inst};
use coyote_isa::predecode::DecodedInst;
use coyote_isa::superblock::{classify, FuseClass};
use coyote_isa::{Csr, XReg};

/// Loop-head revisit count that triggers widening.
const FREEZE_AT: u32 = 8;
/// Absolute per-block revisit cap: beyond this the in-state collapses
/// to all-`Top` to force termination.
const HARD_CAP: u32 = 48;
/// Global fixpoint step budget across all blocks.
const GLOBAL_STEPS: usize = 50_000;
/// Cap on recorded access patterns per core.
const MAX_ACCESSES: usize = 4096;

/// One static memory access: an abstract address set, a width and a
/// direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// PC of the instruction.
    pub pc: u64,
    /// Abstract byte address of the access start.
    pub addr: StridedSet,
    /// Bytes per dynamic access.
    pub width: u64,
    /// `true` for stores.
    pub write: bool,
}

/// Why a core's static footprint cannot be certified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Poison {
    /// A reachable `jalr`: the CFG under-approximates control flow.
    IndirectJump {
        /// PC of the jump.
        pc: u64,
    },
    /// Execution can leave the predecoded text segment.
    Escape {
        /// PC of the escaping block end (entry PC when the entry
        /// itself was outside the text).
        pc: u64,
    },
    /// A memory access whose address is unknown (`Top`).
    TopAddress {
        /// PC of the access.
        pc: u64,
    },
    /// An atomic memory operation: cross-core ordering intent.
    Amo {
        /// PC of the AMO.
        pc: u64,
    },
    /// A vector memory operation: element addresses depend on live
    /// `vl`/`vtype` state the scalar domain does not model.
    VectorMem {
        /// PC of the access.
        pc: u64,
    },
    /// The fixpoint or pattern budget was exhausted.
    Budget,
}

impl std::fmt::Display for Poison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Poison::IndirectJump { pc } => write!(f, "indirect jump at {pc:#x}"),
            Poison::Escape { pc } => write!(f, "execution escapes text segment near {pc:#x}"),
            Poison::TopAddress { pc } => write!(f, "unresolvable address at {pc:#x}"),
            Poison::Amo { pc } => write!(f, "atomic memory operation at {pc:#x}"),
            Poison::VectorMem { pc } => write!(f, "vector memory operation at {pc:#x}"),
            Poison::Budget => write!(f, "analysis budget exhausted"),
        }
    }
}

/// Result of interpreting one core.
#[derive(Clone, Debug)]
pub struct CoreAnalysis {
    /// Static memory accesses, in block/program order.
    pub accesses: Vec<MemAccess>,
    /// Reasons the footprint is untrustworthy (empty = clean).
    pub poisons: Vec<Poison>,
    /// Blocks proven reachable for this core (some blocks are
    /// core-gated by `mhartid` comparisons).
    pub reached_blocks: usize,
    /// Per-block reachability under the abstract semantics — strictly
    /// finer than CFG reachability (a proven `exit` syscall stops
    /// propagation where the CFG keeps a fallthrough edge).
    pub reached: Vec<bool>,
}

/// Abstract integer register file. `x0` is pinned to the constant 0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Regs {
    x: Vec<AbsVal>,
}

impl Regs {
    fn zeroed() -> Regs {
        Regs {
            x: vec![AbsVal::constant(0); 32],
        }
    }

    fn get(&self, r: XReg) -> &AbsVal {
        &self.x[r.index()]
    }

    fn set(&mut self, r: XReg, v: AbsVal) {
        if r != XReg::ZERO {
            self.x[r.index()] = v;
        }
    }

    fn join_with(&mut self, other: &Regs) {
        for i in 1..32 {
            self.x[i] = self.x[i].join(&other.x[i]);
        }
    }

    fn mask_dead(&mut self, live: &BlockLiveness) {
        for i in 1..32 {
            if live.live_in.x & (1 << i) == 0 {
                self.x[i] = AbsVal::Top;
            }
        }
    }
}

/// How a register evolves across one loop iteration.
#[derive(Clone, Copy, Debug)]
enum RegPlan {
    /// No definition inside the loop.
    Invariant,
    /// Exactly one `addi r, r, imm`-shaped definition dominating all
    /// latches.
    Iv(IvDelta),
    /// Anything else.
    Clobbered,
}

/// The per-iteration increment of an induction variable.
#[derive(Clone, Copy, Debug)]
enum IvDelta {
    /// Immediate increment.
    Const(i64),
    /// `add r, r, k`: increment is the (invariant) value of `k`.
    Reg(usize),
    /// `sub r, r, k`: decrement by the value of `k`.
    NegReg(usize),
}

/// Continue-predicate of a counted loop exit, normalized onto the
/// counter: the loop continues while `counter <cond> bound`.
#[derive(Clone, Copy, Debug)]
enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Clone, Copy, Debug)]
struct CounterPlan {
    reg: usize,
    bound_reg: usize,
    cond: Cond,
    unsigned: bool,
    /// Whether the increment executes before the test within the same
    /// iteration (inc and test in the same block).
    inc_before_test: bool,
}

#[derive(Clone, Debug)]
struct FrozenPlan {
    latches: Vec<usize>,
    plan: Vec<RegPlan>,
    counters: Vec<CounterPlan>,
}

struct Interp<'a> {
    insts: &'a [Option<DecodedInst>],
    cfg: &'a Cfg,
    core: u64,
    idom: Vec<usize>,
    live: Vec<BlockLiveness>,
    loop_heads: Vec<Option<coyote_isa::cfg::NaturalLoop>>,
    in_states: Vec<Option<Regs>>,
    edge_out: Vec<Vec<Option<Regs>>>,
    visits: Vec<u32>,
    frozen: Vec<Option<FrozenPlan>>,
    budget_hit: bool,
}

/// Interprets one core over a prebuilt CFG.
#[must_use]
pub fn interpret(insts: &[Option<DecodedInst>], cfg: &Cfg, core: u64) -> CoreAnalysis {
    if cfg.blocks.is_empty() {
        return CoreAnalysis {
            accesses: Vec::new(),
            poisons: vec![Poison::Escape { pc: cfg.base }],
            reached_blocks: 0,
            reached: Vec::new(),
        };
    }
    let n = cfg.blocks.len();
    let mut loop_heads: Vec<Option<coyote_isa::cfg::NaturalLoop>> = vec![None; n];
    for l in cfg.natural_loops() {
        let head = l.head;
        loop_heads[head] = Some(l);
    }
    let mut interp = Interp {
        insts,
        cfg,
        core,
        idom: cfg.immediate_dominators(),
        live: block_liveness(insts, cfg),
        loop_heads,
        in_states: vec![None; n],
        edge_out: cfg
            .blocks
            .iter()
            .map(|b| vec![None; b.succs.len()])
            .collect(),
        visits: vec![0; n],
        frozen: vec![None; n],
        budget_hit: false,
    };
    interp.run();
    interp.extract()
}

impl Interp<'_> {
    fn pc_of(&self, idx: usize) -> u64 {
        self.cfg.base + 4 * idx as u64
    }

    /// Block id whose leader sits at `pc`, if any.
    fn block_at(&self, pc: u64) -> Option<usize> {
        if pc < self.cfg.base || !(pc - self.cfg.base).is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - self.cfg.base) / 4) as usize;
        self.cfg
            .block_of(idx)
            .filter(|&b| self.cfg.blocks[b].start == idx)
    }

    fn run(&mut self) {
        let rpo = self.cfg.reverse_postorder();
        let mut dirty = vec![false; self.cfg.blocks.len()];
        dirty[0] = true;
        let mut steps = 0usize;
        while let Some(&b) = rpo.iter().find(|&&b| dirty[b]) {
            dirty[b] = false;
            steps += 1;
            if steps > GLOBAL_STEPS {
                self.budget_hit = true;
                break;
            }
            let Some(mut input) = self.compute_in(b) else {
                continue;
            };
            if self.visits[b] > 0 && self.in_states[b].as_ref() == Some(&input) {
                continue;
            }
            self.visits[b] += 1;
            if self.frozen[b].is_none()
                && self.visits[b] >= FREEZE_AT
                && self.loop_heads[b].is_some()
            {
                self.frozen[b] = Some(self.build_plan(b));
                match self.compute_in(b) {
                    Some(widened) => input = widened,
                    None => continue,
                }
            }
            if self.visits[b] >= HARD_CAP {
                let mut top = Regs::zeroed();
                for i in 1..32 {
                    top.x[i] = AbsVal::Top;
                }
                input = top;
            }
            self.in_states[b] = Some(input.clone());
            let outs = self.transfer(b, &input);
            let mut changed: Vec<usize> = Vec::new();
            for (slot, succ, state) in outs {
                if self.edge_out[b][slot].as_ref() != Some(&state) {
                    self.edge_out[b][slot] = Some(state);
                    changed.push(succ);
                }
            }
            for succ in changed {
                dirty[succ] = true;
            }
        }
    }

    /// Joins the incoming states of `b` (entry state for block 0;
    /// frozen heads ignore latch edges and apply the widening plan).
    fn compute_in(&self, b: usize) -> Option<Regs> {
        let skip_latches: &[usize] = self.frozen[b].as_ref().map_or(&[], |p| &p.latches);
        let mut acc: Option<Regs> = (b == 0).then(Regs::zeroed);
        for &p in &self.cfg.blocks[b].preds {
            if skip_latches.contains(&p) {
                continue;
            }
            for (slot, &succ) in self.cfg.blocks[p].succs.iter().enumerate() {
                if succ != b {
                    continue;
                }
                if let Some(state) = &self.edge_out[p][slot] {
                    match &mut acc {
                        Some(a) => a.join_with(state),
                        None => acc = Some(state.clone()),
                    }
                }
            }
        }
        let mut state = acc?;
        if let Some(plan) = &self.frozen[b] {
            state = self.widen(plan, &state);
        }
        state.mask_dead(&self.live[b]);
        Some(state)
    }

    /// Builds the syntactic loop plan for head `b`.
    fn build_plan(&self, b: usize) -> FrozenPlan {
        let looped = self.loop_heads[b].as_ref().expect("head has a loop");
        let in_loop = |blk: usize| looped.blocks.binary_search(&blk).is_ok();
        // Definition sites per x register inside the loop.
        let mut defs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); 32]; // (block, inst idx)
        for &blk in &looped.blocks {
            let block = &self.cfg.blocks[blk];
            for idx in block.start..block.start + block.len {
                let Some(d) = self.insts[idx].as_ref() else {
                    break;
                };
                for (r, def) in defs.iter_mut().enumerate().skip(1) {
                    if d.defs.x & (1 << r) != 0 {
                        def.push((blk, idx));
                    }
                }
            }
        }
        let dominates_latches = |blk: usize| {
            looped
                .latches
                .iter()
                .all(|&l| Cfg::dominates(&self.idom, blk, l))
        };
        let mut plan = vec![RegPlan::Clobbered; 32];
        for r in 1..32 {
            plan[r] = match defs[r].as_slice() {
                [] => RegPlan::Invariant,
                [(blk, idx)] if dominates_latches(*blk) => {
                    match self.insts[*idx].as_ref().map(|d| d.inst) {
                        Some(Inst::OpImm {
                            op: AluOp::Add,
                            rd,
                            rs1,
                            imm,
                        }) if rd == rs1 && rd.index() == r => RegPlan::Iv(IvDelta::Const(imm)),
                        Some(Inst::Op {
                            op: AluOp::Add,
                            rd,
                            rs1,
                            rs2,
                        }) if rd.index() == r && (rs1 == rd) != (rs2 == rd) && {
                            let k = if rs1 == rd { rs2 } else { rs1 };
                            defs[k.index()].is_empty() && k != XReg::ZERO
                        } =>
                        {
                            let k = if rs1 == rd { rs2 } else { rs1 };
                            RegPlan::Iv(IvDelta::Reg(k.index()))
                        }
                        Some(Inst::Op {
                            op: AluOp::Sub,
                            rd,
                            rs1,
                            rs2,
                        }) if rd.index() == r
                            && rs1 == rd
                            && rs2 != rd
                            && defs[rs2.index()].is_empty() =>
                        {
                            RegPlan::Iv(IvDelta::NegReg(rs2.index()))
                        }
                        _ => RegPlan::Clobbered,
                    }
                }
                _ => RegPlan::Clobbered,
            };
        }
        // Counted exits: conditional blocks dominating all latches with
        // an edge leaving the loop.
        let mut counters = Vec::new();
        for &eb in &looped.blocks {
            let block = &self.cfg.blocks[eb];
            let BlockExit::Branch { taken, fall } = block.exit else {
                continue;
            };
            if !dominates_latches(eb) {
                continue;
            }
            let taken_in = self.block_at(taken).is_some_and(in_loop);
            let fall_in = self.block_at(fall).is_some_and(in_loop);
            // Exactly one continuation must stay in the loop.
            if taken_in == fall_in {
                continue;
            }
            let continue_on_taken = taken_in;
            let end = block.start + block.len - 1;
            let Some(Inst::Branch { op, rs1, rs2, .. }) = self.insts[end].as_ref().map(|d| d.inst)
            else {
                continue;
            };
            let r1 = rs1.index();
            let r2 = rs2.index();
            let iv1 = matches!(plan[r1], RegPlan::Iv(_)) && r1 != 0;
            let iv2 = matches!(plan[r2], RegPlan::Iv(_)) && r2 != 0;
            let inv1 = matches!(plan[r1], RegPlan::Invariant) || r1 == 0;
            let inv2 = matches!(plan[r2], RegPlan::Invariant) || r2 == 0;
            let (counter, bound, counter_is_rs1) = if iv1 && inv2 {
                (r1, r2, true)
            } else if iv2 && inv1 {
                (r2, r1, false)
            } else {
                continue;
            };
            let (raw, unsigned) = match op {
                BranchOp::Eq => (Cond::Eq, false),
                BranchOp::Ne => (Cond::Ne, false),
                BranchOp::Lt => (Cond::Lt, false),
                BranchOp::Ge => (Cond::Ge, false),
                BranchOp::Ltu => (Cond::Lt, true),
                BranchOp::Geu => (Cond::Ge, true),
            };
            // Mirror when the counter is rs2, negate when the loop
            // continues on the fallthrough.
            let mirrored = if counter_is_rs1 { raw } else { mirror(raw) };
            let cond = if continue_on_taken {
                mirrored
            } else {
                negate(mirrored)
            };
            let inc_before_test = matches!(defs[counter].as_slice(), [(blk, _)] if *blk == eb);
            counters.push(CounterPlan {
                reg: counter,
                bound_reg: bound,
                cond,
                unsigned,
                inc_before_test,
            });
        }
        FrozenPlan {
            latches: looped.latches.clone(),
            plan,
            counters,
        }
    }

    /// Applies a frozen plan to the entry join, producing the widened
    /// head state.
    fn widen(&self, plan: &FrozenPlan, entry: &Regs) -> Regs {
        let delta_of = |d: IvDelta| -> Option<i64> {
            match d {
                IvDelta::Const(c) => Some(c),
                IvDelta::Reg(k) => entry.x[k].as_const().map(|v| v as i64),
                IvDelta::NegReg(k) => entry.x[k].as_const().map(|v| (v as i64).wrapping_neg()),
            }
        };
        // Head entry count: 1 + back-edge traversals, bounded by the
        // tightest counted exit.
        let mut head_count = UNBOUNDED;
        for c in &plan.counters {
            let Some(RegPlan::Iv(d)) = plan.plan.get(c.reg).copied() else {
                continue;
            };
            let Some(delta) = delta_of(d) else { continue };
            if delta == 0 {
                continue;
            }
            let Some(bound) = entry.x[c.bound_reg].as_const() else {
                continue;
            };
            let v0 = match entry.x[c.reg].as_set() {
                Some(s) if delta > 0 => s.base,
                Some(s) => match s.max() {
                    Some(m) => m,
                    None => continue,
                },
                None => continue,
            };
            let Some(passes) = continue_prefix(v0, delta, bound, c.cond, c.unsigned) else {
                continue;
            };
            let skip = u128::from(c.inc_before_test);
            let count = passes.saturating_sub(skip).saturating_add(1);
            let count = u64::try_from(count).unwrap_or(UNBOUNDED);
            head_count = head_count.min(count.max(1));
        }
        let mut out = Regs::zeroed();
        for r in 1..32 {
            out.x[r] = match plan.plan[r] {
                RegPlan::Invariant => entry.x[r].clone(),
                RegPlan::Clobbered => AbsVal::Top,
                RegPlan::Iv(d) => {
                    let widened = (|| {
                        let delta = delta_of(d)?;
                        let e = entry.x[r].as_set()?;
                        if delta == 0 {
                            return Some(e.clone());
                        }
                        let step = delta.unsigned_abs();
                        let hops = StridedSet::with_dims(0, vec![(step, head_count)]);
                        if delta > 0 {
                            e.add(&hops)
                        } else {
                            if head_count == UNBOUNDED {
                                return None;
                            }
                            let shift = (head_count - 1).checked_mul(step)?;
                            e.add_const(shift.wrapping_neg()).add(&hops)
                        }
                    })();
                    widened.map_or(AbsVal::Top, AbsVal::Set)
                }
            };
        }
        out
    }

    /// Runs the transfer function of block `b`, returning the state
    /// for each successor edge slot `(slot, succ, state)`.
    fn transfer(&self, b: usize, input: &Regs) -> Vec<(usize, usize, Regs)> {
        let block = &self.cfg.blocks[b];
        let mut regs = input.clone();
        for idx in block.start..block.start + block.len {
            let Some(d) = self.insts[idx].as_ref() else {
                break;
            };
            eval_inst(&mut regs, d, self.pc_of(idx), self.core);
        }
        let mut out = Vec::new();
        let mut slot = 0usize;
        match block.exit {
            BlockExit::Fallthrough | BlockExit::Jump(_) => {
                if let Some(&succ) = block.succs.first() {
                    out.push((0, succ, regs));
                }
            }
            BlockExit::Ecall => {
                // a7 == 93 is a proven clean halt; anything else may
                // continue at the fallthrough.
                let halts = regs.get(XReg::new(17).unwrap_or(XReg::ZERO)).as_const() == Some(93);
                if !halts {
                    if let Some(&succ) = block.succs.first() {
                        out.push((0, succ, regs));
                    }
                }
            }
            BlockExit::Branch { taken, fall } => {
                let end = block.start + block.len - 1;
                let Some(Inst::Branch { op, rs1, rs2, .. }) =
                    self.insts[end].as_ref().map(|d| d.inst)
                else {
                    return out;
                };
                let known = match (regs.get(rs1).as_const(), regs.get(rs2).as_const()) {
                    (Some(a), Some(b)) => Some(eval_branch(op, a, b)),
                    _ => None,
                };
                for (pc, is_taken) in [(taken, true), (fall, false)] {
                    let Some(succ) = self.block_at(pc) else {
                        continue; // escaped edge, no slot
                    };
                    let this_slot = slot;
                    slot += 1;
                    if let Some(taken_val) = known {
                        if taken_val != is_taken {
                            continue; // statically infeasible edge
                        }
                    }
                    let mut state = regs.clone();
                    if refine_edge(&mut state, op, rs1, rs2, is_taken) == EdgeFeasibility::Dead {
                        continue;
                    }
                    out.push((this_slot, succ, state));
                }
            }
            BlockExit::Indirect | BlockExit::Trap => {}
        }
        out
    }

    /// Post-fixpoint pass collecting the footprint and poisons.
    fn extract(&self) -> CoreAnalysis {
        let mut accesses = Vec::new();
        let mut poisons = Vec::new();
        let mut reached = 0usize;
        if self.budget_hit {
            poisons.push(Poison::Budget);
        }
        for (b, block) in self.cfg.blocks.iter().enumerate() {
            let Some(input) = &self.in_states[b] else {
                continue;
            };
            reached += 1;
            let mut regs = input.clone();
            for idx in block.start..block.start + block.len {
                let Some(d) = self.insts[idx].as_ref() else {
                    break;
                };
                let pc = self.pc_of(idx);
                match classify(Some(d)) {
                    FuseClass::Mem(plan) => match regs.get(plan.base).as_set() {
                        Some(s) => accesses.push(MemAccess {
                            pc,
                            addr: s.add_const(plan.offset as i64 as u64),
                            width: u64::from(plan.size),
                            write: plan.write,
                        }),
                        None => poisons.push(Poison::TopAddress { pc }),
                    },
                    _ => match d.inst {
                        Inst::Amo { width, rs1, .. } => {
                            poisons.push(Poison::Amo { pc });
                            if let Some(s) = regs.get(rs1).as_set() {
                                for write in [false, true] {
                                    accesses.push(MemAccess {
                                        pc,
                                        addr: s.clone(),
                                        width: width.bytes(),
                                        write,
                                    });
                                }
                            }
                        }
                        Inst::VLoad { .. } | Inst::VStore { .. } => {
                            poisons.push(Poison::VectorMem { pc });
                        }
                        _ => {}
                    },
                }
                eval_inst(&mut regs, d, pc, self.core);
            }
            let end_pc = self.pc_of(block.start + block.len - 1);
            if block.exit == BlockExit::Indirect {
                poisons.push(Poison::IndirectJump { pc: end_pc });
            }
            if block.escapes {
                poisons.push(Poison::Escape { pc: end_pc });
            }
            if block.exit == BlockExit::Ecall && block.succs.is_empty() {
                // No in-text fallthrough: only a proven exit is clean.
                let a7 = regs.get(XReg::new(17).unwrap_or(XReg::ZERO));
                if a7.as_const() != Some(93) {
                    poisons.push(Poison::Escape { pc: end_pc });
                }
            }
        }
        if accesses.len() > MAX_ACCESSES {
            accesses.truncate(MAX_ACCESSES);
            poisons.push(Poison::Budget);
        }
        CoreAnalysis {
            accesses,
            poisons,
            reached_blocks: reached,
            reached: self.in_states.iter().map(Option::is_some).collect(),
        }
    }
}

fn mirror(c: Cond) -> Cond {
    match c {
        Cond::Lt => Cond::Gt,
        Cond::Gt => Cond::Lt,
        Cond::Le => Cond::Ge,
        Cond::Ge => Cond::Le,
        Cond::Eq => Cond::Eq,
        Cond::Ne => Cond::Ne,
    }
}

fn negate(c: Cond) -> Cond {
    match c {
        Cond::Lt => Cond::Ge,
        Cond::Ge => Cond::Lt,
        Cond::Gt => Cond::Le,
        Cond::Le => Cond::Gt,
        Cond::Eq => Cond::Ne,
        Cond::Ne => Cond::Eq,
    }
}

/// Number of consecutive `k ≥ 0` for which `v0 + k·delta <cond>
/// bound` holds (the continue-prefix of a counted loop). `None` means
/// the prefix is infinite (the exit can never fire this way).
fn continue_prefix(v0: u64, delta: i64, bound: u64, cond: Cond, unsigned: bool) -> Option<u128> {
    let (v, c) = if unsigned {
        (i128::from(v0), i128::from(bound))
    } else {
        (i128::from(v0 as i64), i128::from(bound as i64))
    };
    let d = i128::from(delta);
    let ceil_div = |num: i128, den: i128| -> u128 {
        // num, den > 0 at every call site.
        ((num + den - 1) / den) as u128
    };
    match cond {
        Cond::Lt => {
            if v >= c {
                Some(0)
            } else if d > 0 {
                Some(ceil_div(c - v, d))
            } else {
                None
            }
        }
        Cond::Le => continue_prefix_le(v, d, c),
        Cond::Gt => {
            if v <= c {
                Some(0)
            } else if d < 0 {
                Some(ceil_div(v - c, -d))
            } else {
                None
            }
        }
        Cond::Ge => {
            if v < c {
                Some(0)
            } else if d < 0 {
                Some(((v - c) / -d) as u128 + 1)
            } else {
                None
            }
        }
        Cond::Ne => {
            if v == c {
                Some(0)
            } else if (c - v) % d == 0 && (c - v) / d > 0 {
                Some(((c - v) / d) as u128)
            } else {
                None
            }
        }
        Cond::Eq => Some(u128::from(v == c)),
    }
}

fn continue_prefix_le(v: i128, d: i128, c: i128) -> Option<u128> {
    if v > c {
        Some(0)
    } else if d > 0 {
        Some(((c - v) / d) as u128 + 1)
    } else {
        None
    }
}

#[derive(PartialEq, Eq)]
enum EdgeFeasibility {
    Live,
    Dead,
}

/// Refines `state` under the branch outcome: currently `x < C`-shaped
/// constraints clamp the strided set of `x`.
fn refine_edge(
    state: &mut Regs,
    op: BranchOp,
    rs1: XReg,
    rs2: XReg,
    taken: bool,
) -> EdgeFeasibility {
    // Normalize to "rs1 < rs2 holds on this edge", signed or not.
    let (holds_lt, unsigned) = match op {
        BranchOp::Lt => (taken, false),
        BranchOp::Ge => (!taken, false),
        BranchOp::Ltu => (taken, true),
        BranchOp::Geu => (!taken, true),
        BranchOp::Eq | BranchOp::Ne => return EdgeFeasibility::Live,
    };
    if !holds_lt {
        return EdgeFeasibility::Live;
    }
    let Some(bound) = state.get(rs2).as_const() else {
        return EdgeFeasibility::Live;
    };
    // Signed comparisons are only clamped in the common non-negative
    // regime (see the module-level no-wrap caveat).
    if !unsigned && bound >= 1 << 63 {
        return EdgeFeasibility::Live;
    }
    let Some(set) = state.get(rs1).as_set() else {
        return EdgeFeasibility::Live;
    };
    if !unsigned && set.base >= 1 << 63 {
        return EdgeFeasibility::Live;
    }
    match set.clamp_below(bound) {
        Clamp::Unchanged => EdgeFeasibility::Live,
        Clamp::Refined(r) => {
            state.set(rs1, AbsVal::Set(r));
            EdgeFeasibility::Live
        }
        Clamp::Empty => EdgeFeasibility::Dead,
    }
}

fn eval_branch(op: BranchOp, a: u64, b: u64) -> bool {
    match op {
        BranchOp::Eq => a == b,
        BranchOp::Ne => a != b,
        BranchOp::Lt => (a as i64) < (b as i64),
        BranchOp::Ge => (a as i64) >= (b as i64),
        BranchOp::Ltu => a < b,
        BranchOp::Geu => a >= b,
    }
}

/// Constant evaluation of the unambiguous ALU subset; division and
/// high-multiply families conservatively return `None` (→ `Top`).
fn const_eval(op: AluOp, a: u64, b: u64) -> Option<u64> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl((b & 63) as u32),
        AluOp::Srl => a.wrapping_shr((b & 63) as u32),
        AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        AluOp::Slt => u64::from((a as i64) < (b as i64)),
        AluOp::Sltu => u64::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        _ => return None,
    })
}

fn const_eval_w(op: AluWOp, a: u64, b: u64) -> Option<u64> {
    let (a32, b32) = (a as i32, b as i32);
    let r: i32 = match op {
        AluWOp::Addw => a32.wrapping_add(b32),
        AluWOp::Subw => a32.wrapping_sub(b32),
        AluWOp::Sllw => a32.wrapping_shl((b & 31) as u32),
        AluWOp::Srlw => ((a as u32).wrapping_shr((b & 31) as u32)) as i32,
        AluWOp::Sraw => a32.wrapping_shr((b & 31) as u32),
        AluWOp::Mulw => a32.wrapping_mul(b32),
        _ => return None,
    };
    Some(r as i64 as u64)
}

/// Applies one instruction's effect on the abstract register file.
fn eval_inst(regs: &mut Regs, d: &DecodedInst, pc: u64, core: u64) {
    match d.inst {
        Inst::Lui { rd, imm } => regs.set(rd, AbsVal::constant(imm as u64)),
        Inst::Auipc { rd, imm } => {
            regs.set(rd, AbsVal::constant(pc.wrapping_add(imm as u64)));
        }
        Inst::Jal { rd, .. } | Inst::Jalr { rd, .. } => {
            regs.set(rd, AbsVal::constant(pc.wrapping_add(4)));
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            let a = regs.get(rs1).clone();
            let v = match op {
                AluOp::Add => match a.as_set() {
                    Some(s) => AbsVal::Set(s.add_const(imm as u64)),
                    None => AbsVal::Top,
                },
                AluOp::Sll => match a.as_set() {
                    Some(s) => s
                        .shl_const((imm & 63) as u32)
                        .map_or(AbsVal::Top, AbsVal::Set),
                    None => AbsVal::Top,
                },
                _ => a
                    .as_const()
                    .and_then(|c| const_eval(op, c, imm as u64))
                    .map_or(AbsVal::Top, AbsVal::constant),
            };
            regs.set(rd, v);
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let a = regs.get(rs1).clone();
            let b = regs.get(rs2).clone();
            let v = match op {
                AluOp::Add => a.lift2(&b, StridedSet::add),
                AluOp::Sub => a.lift2(&b, StridedSet::sub),
                AluOp::Mul => match (a.as_set(), b.as_set()) {
                    (Some(x), Some(y)) => match (x.as_const(), y.as_const()) {
                        (Some(c), _) => y.mul_const(c).map_or(AbsVal::Top, AbsVal::Set),
                        (_, Some(c)) => x.mul_const(c).map_or(AbsVal::Top, AbsVal::Set),
                        _ => AbsVal::Top,
                    },
                    _ => AbsVal::Top,
                },
                AluOp::Sll => match (a.as_set(), b.as_const()) {
                    (Some(x), Some(sh)) => x
                        .shl_const((sh & 63) as u32)
                        .map_or(AbsVal::Top, AbsVal::Set),
                    _ => AbsVal::Top,
                },
                _ => match (a.as_const(), b.as_const()) {
                    (Some(x), Some(y)) => {
                        const_eval(op, x, y).map_or(AbsVal::Top, AbsVal::constant)
                    }
                    _ => AbsVal::Top,
                },
            };
            regs.set(rd, v);
        }
        Inst::OpImm32 { op, rd, rs1, imm } => {
            let v = regs
                .get(rs1)
                .as_const()
                .and_then(|c| const_eval_w(op, c, imm as u64))
                .map_or(AbsVal::Top, AbsVal::constant);
            regs.set(rd, v);
        }
        Inst::Op32 { op, rd, rs1, rs2 } => {
            let v = match (regs.get(rs1).as_const(), regs.get(rs2).as_const()) {
                (Some(a), Some(b)) => const_eval_w(op, a, b).map_or(AbsVal::Top, AbsVal::constant),
                _ => AbsVal::Top,
            };
            regs.set(rd, v);
        }
        Inst::Load { rd, .. } | Inst::Amo { rd, .. } => regs.set(rd, AbsVal::Top),
        Inst::Csr { rd, csr, .. } => {
            let v = if csr == Csr::MHARTID {
                AbsVal::constant(core)
            } else {
                AbsVal::Top
            };
            regs.set(rd, v);
        }
        Inst::Branch { .. }
        | Inst::Store { .. }
        | Inst::Fsd { .. }
        | Inst::Fld { .. }
        | Inst::Fence
        | Inst::Ecall
        | Inst::Ebreak => {}
        _ => {
            // Generic clobber through the cached def set: anything the
            // instruction may write to an x register becomes unknown.
            let defs = d.defs.x;
            for r in 1..32 {
                if defs & (1 << r) != 0 {
                    regs.x[r] = AbsVal::Top;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_asm::Assembler;
    use coyote_isa::predecode::predecode;

    fn analyze_src(src: &str, core: u64) -> (CoreAnalysis, Cfg) {
        let program = Assembler::new()
            .text_base(0x1000)
            .data_base(0x9000)
            .assemble(src)
            .expect("assembles");
        let table = predecode(program.text());
        let cfg = Cfg::build(&table, program.text_base(), program.entry());
        let analysis = interpret(&table, &cfg, core);
        (analysis, cfg)
    }

    #[test]
    fn straight_line_constant_addresses() {
        let (a, _) = analyze_src(
            "li t0, 0x9000\n\
             sd zero, 0(t0)\n\
             sd zero, 8(t0)\n\
             li a7, 93\n\
             ecall\n",
            0,
        );
        assert!(a.poisons.is_empty(), "poisons: {:?}", a.poisons);
        assert_eq!(a.accesses.len(), 2);
        assert_eq!(a.accesses[0].addr.as_const(), Some(0x9000));
        assert_eq!(a.accesses[1].addr.as_const(), Some(0x9008));
        assert!(a.accesses.iter().all(|m| m.write));
    }

    #[test]
    fn counted_loop_recovers_exact_stride() {
        // for (i = 0; i != 16; i++) buf[i] = 0  (countdown via bne)
        let (a, _) = analyze_src(
            "li t0, 0x9000\n\
             li t1, 16\n\
             li t2, 0\n\
             loop:\n\
             sd zero, 0(t0)\n\
             addi t0, t0, 8\n\
             addi t2, t2, 1\n\
             bne t2, t1, loop\n\
             li a7, 93\n\
             ecall\n",
            0,
        );
        assert!(a.poisons.is_empty(), "poisons: {:?}", a.poisons);
        let writes: Vec<_> = a.accesses.iter().filter(|m| m.write).collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].addr, StridedSet::with_dims(0x9000, vec![(8, 16)]));
        assert_eq!(writes[0].width, 8);
    }

    #[test]
    fn mhartid_concretizes_per_core() {
        // Each core writes its own doubleword slot.
        let src = "csrr t0, mhartid\n\
                   slli t0, t0, 3\n\
                   li t1, 0x9000\n\
                   add t0, t0, t1\n\
                   sd zero, 0(t0)\n\
                   li a7, 93\n\
                   ecall\n";
        let (a0, _) = analyze_src(src, 0);
        let (a3, _) = analyze_src(src, 3);
        assert_eq!(a0.accesses[0].addr.as_const(), Some(0x9000));
        assert_eq!(a3.accesses[0].addr.as_const(), Some(0x9000 + 24));
    }

    #[test]
    fn hart_gated_block_is_unreachable_for_other_cores() {
        // Core 0 writes; every other core goes straight to exit.
        let src = "csrr t0, mhartid\n\
                   bne t0, zero, done\n\
                   li t1, 0x9000\n\
                   sd zero, 0(t1)\n\
                   done:\n\
                   li a7, 93\n\
                   ecall\n";
        let (a0, _) = analyze_src(src, 0);
        let (a1, _) = analyze_src(src, 1);
        assert_eq!(a0.accesses.len(), 1);
        assert!(a1.accesses.is_empty());
        assert!(a1.reached_blocks < a0.reached_blocks);
    }

    #[test]
    fn jalr_poisons_the_analysis() {
        let (a, _) = analyze_src(
            "la t0, done\n\
             jalr ra, t0, 0\n\
             done:\n\
             li a7, 93\n\
             ecall\n",
            0,
        );
        assert!(a
            .poisons
            .iter()
            .any(|p| matches!(p, Poison::IndirectJump { .. })));
    }

    #[test]
    fn amo_and_vector_poison() {
        let (a, _) = analyze_src(
            "li t0, 0x9000\n\
             li t1, 1\n\
             amoadd.d t2, t1, (t0)\n\
             li a7, 93\n\
             ecall\n",
            0,
        );
        assert!(a.poisons.iter().any(|p| matches!(p, Poison::Amo { .. })));
        // The AMO's read and write footprints are still recorded.
        assert_eq!(a.accesses.len(), 2);
    }

    #[test]
    fn unknown_store_address_is_top_poison() {
        let (a, _) = analyze_src(
            "li t0, 0x9000\n\
             ld t1, 0(t0)\n\
             sd zero, 0(t1)\n\
             li a7, 93\n\
             ecall\n",
            0,
        );
        assert!(a
            .poisons
            .iter()
            .any(|p| matches!(p, Poison::TopAddress { .. })));
    }

    #[test]
    fn widening_bounds_a_long_counted_loop() {
        // 4096 iterations: far beyond the freeze budget, so the trip
        // count must come from the counter plan, exactly.
        let (a, _) = analyze_src(
            "li t0, 0x9000\n\
             li t1, 4096\n\
             li t2, 0\n\
             loop:\n\
             sd zero, 0(t0)\n\
             addi t0, t0, 8\n\
             addi t2, t2, 1\n\
             blt t2, t1, loop\n\
             li a7, 93\n\
             ecall\n",
            0,
        );
        assert!(a.poisons.is_empty(), "poisons: {:?}", a.poisons);
        let w = a.accesses.iter().find(|m| m.write).expect("store");
        assert_eq!(w.addr, StridedSet::with_dims(0x9000, vec![(8, 4096)]));
    }
}
