//! Whole-program analysis and disjointness certificates.
//!
//! [`analyze`] predecodes a program once, recovers its CFG and runs
//! the abstract interpreter once per core (`mhartid` is the only
//! per-core input, so the text is shared). [`certify`] then tries to
//! prove that no two cores can ever touch the same byte with at least
//! one write involved — the exact property the runtime conflict sweep
//! checks dynamically. A granted certificate lets the simulator skip
//! that sweep wholesale.

use crate::absint::{interpret, CoreAnalysis, MemAccess};
use crate::footprint::{disjoint, AccessPattern, Disjoint};
use coyote_asm::Program;
use coyote_isa::predecode::predecode;
use coyote_isa::Cfg;

/// Cap on footprint patterns per core; beyond it certification is
/// refused (the pairwise proof would be quadratic in this).
const MAX_PATTERNS_PER_CORE: usize = 256;

/// Static analysis of one program over `cores` harts.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The recovered control-flow graph (shared across cores).
    pub cfg: Cfg,
    /// Per-core interpretation results, indexed by hart id.
    pub cores: Vec<CoreAnalysis>,
}

/// Runs the full static analysis for `cores` harts.
#[must_use]
pub fn analyze(program: &Program, cores: usize) -> Analysis {
    let table = predecode(program.text());
    let cfg = Cfg::build(&table, program.text_base(), program.entry());
    let cores = (0..cores)
        .map(|core| interpret(&table, &cfg, core as u64))
        .collect();
    Analysis { cfg, cores }
}

/// Outcome of a certification attempt.
#[derive(Clone, Debug)]
pub struct CertifyOutcome {
    /// Number of harts analyzed.
    pub cores: usize,
    /// Whether the disjointness certificate was granted.
    pub granted: bool,
    /// Human-readable denial reasons (empty when granted).
    pub reasons: Vec<String>,
}

fn patterns(core: &CoreAnalysis) -> Vec<AccessPattern> {
    core.accesses
        .iter()
        .map(|m: &MemAccess| AccessPattern {
            addr: m.addr.clone(),
            width: m.width,
            write: m.write,
            pc: m.pc,
        })
        .collect()
}

/// Attempts to prove all cross-core write/any conflicts impossible.
#[must_use]
pub fn certify(program: &Program, cores: usize) -> CertifyOutcome {
    certify_analysis(&analyze(program, cores), cores)
}

/// [`certify`] over a precomputed [`Analysis`].
#[must_use]
pub fn certify_analysis(analysis: &Analysis, cores: usize) -> CertifyOutcome {
    let mut reasons = Vec::new();
    for (hart, core) in analysis.cores.iter().enumerate() {
        for p in &core.poisons {
            reasons.push(format!("core {hart}: {p}"));
        }
        if core.accesses.len() > MAX_PATTERNS_PER_CORE {
            reasons.push(format!(
                "core {hart}: {} access patterns exceed the certification cap of {MAX_PATTERNS_PER_CORE}",
                core.accesses.len()
            ));
        }
    }
    if reasons.is_empty() {
        let per_core: Vec<Vec<AccessPattern>> = analysis.cores.iter().map(patterns).collect();
        'outer: for i in 0..per_core.len() {
            for j in i + 1..per_core.len() {
                // Writes of i vs everything of j, and vice versa.
                for (wa, pb) in [(i, j), (j, i)] {
                    for w in per_core[wa].iter().filter(|p| p.write) {
                        for q in &per_core[pb] {
                            if disjoint(w, q) == Disjoint::Unknown {
                                reasons.push(format!(
                                    "cores {i}/{j}: cannot separate write at pc {:#x} \
                                     from access at pc {:#x}",
                                    w.pc, q.pc
                                ));
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
    }
    CertifyOutcome {
        cores,
        granted: reasons.is_empty(),
        reasons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_asm::Assembler;

    fn program(src: &str) -> Program {
        Assembler::new()
            .text_base(0x1000)
            .data_base(0x0010_0000)
            .assemble(src)
            .expect("assembles")
    }

    /// Each hart writes its own 64-byte-strided slot sequence: a
    /// round-robin split over 4 cores, one doubleword per core per
    /// block of 32 bytes.
    const PARTITIONED: &str = "\
        csrr t0, mhartid\n\
        slli t0, t0, 3\n\
        li t1, 0x100000\n\
        add t1, t1, t0\n\
        li t2, 16\n\
        loop:\n\
        sd zero, 0(t1)\n\
        addi t1, t1, 32\n\
        addi t2, t2, -1\n\
        bnez t2, loop\n\
        li a7, 93\n\
        ecall\n";

    /// All harts hammer the same counter location.
    const CONTENDED: &str = "\
        li t0, 0x100000\n\
        ld t1, 0(t0)\n\
        addi t1, t1, 1\n\
        sd t1, 0(t0)\n\
        li a7, 93\n\
        ecall\n";

    #[test]
    fn partitioned_round_robin_earns_a_certificate() {
        let out = certify(&program(PARTITIONED), 4);
        assert!(out.granted, "denied: {:?}", out.reasons);
    }

    #[test]
    fn contended_counter_is_refused() {
        let out = certify(&program(CONTENDED), 4);
        assert!(!out.granted);
        assert!(out.reasons.iter().any(|r| r.contains("cannot separate")));
    }

    #[test]
    fn single_core_is_trivially_disjoint() {
        let out = certify(&program(CONTENDED), 1);
        assert!(out.granted, "denied: {:?}", out.reasons);
    }

    #[test]
    fn indirect_jump_denies_with_a_poison_reason() {
        let out = certify(
            &program(
                "la t0, done\n\
                 jalr ra, t0, 0\n\
                 done:\n\
                 li a7, 93\n\
                 ecall\n",
            ),
            2,
        );
        assert!(!out.granted);
        assert!(out.reasons.iter().any(|r| r.contains("indirect jump")));
    }
}
