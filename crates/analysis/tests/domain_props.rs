//! Property tests for the strided-set domain and the disjointness
//! cascade: every abstract operation must over-approximate its
//! concrete counterpart (membership is preserved), and a `Proven`
//! disjointness verdict must never contradict exhaustive enumeration.

use proptest::prelude::*;

use coyote_analysis::domain::{Clamp, StridedSet};
use coyote_analysis::footprint::{disjoint, AccessPattern, Disjoint};

/// Small bounded sets we can enumerate exactly.
fn set_strategy() -> impl Strategy<Value = StridedSet> {
    (
        0_u64..512,
        proptest::collection::vec((1_u64..48, 2_u64..5), 0..3),
    )
        .prop_map(|(base, dims)| StridedSet::with_dims(base, dims))
}

/// Like [`set_strategy`] but also produces bases near `u64::MAX` so
/// patterns wrap mod 2⁶⁴. Only used for the disjointness property —
/// the other properties exercise operations documented as no-wrap.
fn wrapping_set_strategy() -> impl Strategy<Value = StridedSet> {
    (
        prop_oneof![0_u64..512, u64::MAX - 512..=u64::MAX],
        proptest::collection::vec((1_u64..48, 2_u64..5), 0..3),
    )
        .prop_map(|(base, dims)| StridedSet::with_dims(base, dims))
}

/// All concrete elements of a small bounded set.
fn elements(s: &StridedSet) -> Vec<u64> {
    let mut vals = vec![s.base];
    for &(step, count) in &s.dims {
        let mut next = Vec::with_capacity(vals.len() * count as usize);
        for &v in &vals {
            for k in 0..count {
                next.push(v.wrapping_add(step.wrapping_mul(k)));
            }
        }
        vals = next;
    }
    vals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_const_is_pointwise(s in set_strategy(), d in 0_u64..1000) {
        let shifted = s.add_const(d);
        let mut expected: Vec<u64> = elements(&s).iter().map(|v| v.wrapping_add(d)).collect();
        let mut got = elements(&shifted);
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn add_over_approximates_sums(a in set_strategy(), b in set_strategy()) {
        if let Some(sum) = a.add(&b) {
            let members = elements(&sum);
            for x in elements(&a) {
                for y in elements(&b) {
                    prop_assert!(
                        members.contains(&x.wrapping_add(y)),
                        "{:?}+{:?} missing {}", a, b, x.wrapping_add(y)
                    );
                }
            }
        }
    }

    #[test]
    fn join_covers_both_operands(a in set_strategy(), b in set_strategy()) {
        if let Some(j) = a.join(&b) {
            let members = elements(&j);
            for v in elements(&a).into_iter().chain(elements(&b)) {
                prop_assert!(members.contains(&v), "join {:?} lost {}", j, v);
            }
        }
    }

    #[test]
    fn clamp_below_keeps_every_satisfying_element(s in set_strategy(), bound in 1_u64..1500) {
        let sat: Vec<u64> = elements(&s).into_iter().filter(|&v| v < bound).collect();
        match s.clamp_below(bound) {
            Clamp::Empty => prop_assert!(sat.is_empty()),
            Clamp::Unchanged => {}
            Clamp::Refined(r) => {
                let members = elements(&r);
                for v in sat {
                    prop_assert!(members.contains(&v), "clamp {:?} lost {}", r, v);
                }
            }
        }
    }

    #[test]
    fn mul_const_is_pointwise(s in set_strategy(), m in 1_u64..9) {
        if let Some(scaled) = s.mul_const(m) {
            let members = elements(&scaled);
            for v in elements(&s) {
                prop_assert!(members.contains(&v.wrapping_mul(m)));
            }
        }
    }

    #[test]
    fn proven_disjoint_never_contradicts_enumeration(
        a in wrapping_set_strategy(),
        b in wrapping_set_strategy(),
        wa in 1_u64..9,
        wb in 1_u64..9,
    ) {
        let pa = AccessPattern { addr: a.clone(), width: wa, write: true, pc: 0 };
        let pb = AccessPattern { addr: b.clone(), width: wb, write: true, pc: 4 };
        if disjoint(&pa, &pb) == Disjoint::Proven {
            // Exact wrap-aware oracle: materialize every touched byte
            // (addresses wrap mod 2⁶⁴, so interval comparisons on the
            // start addresses would miss overlaps across the boundary).
            let bytes = |s: &StridedSet, w: u64| -> std::collections::HashSet<u64> {
                elements(s)
                    .into_iter()
                    .flat_map(|x| (0..w).map(move |k| x.wrapping_add(k)))
                    .collect()
            };
            let ba = bytes(&a, wa);
            prop_assert!(
                bytes(&b, wb).is_disjoint(&ba),
                "proven disjoint but {a:?} (+{wa}) and {b:?} (+{wb}) share a byte"
            );
        }
    }
}
