//! Causal stall attribution: per-core CPI stacks and critical-request
//! tracing.
//!
//! The orchestrator deactivates a core when it blocks on a register
//! dependency against an in-flight miss (or on an instruction-line
//! fill) and wakes it when the hierarchy delivers the fill.  This
//! module turns those deactivations into *stall intervals*: one opens
//! when a core leaves [`CoreState::Active`], and closes when it
//! returns, attributing every cycle of the interval to exactly one
//! bucket of the core's CPI stack:
//!
//! * `active` — the core executed (or attempted) an instruction;
//! * `dep_stall[blame]` — blocked on a RAW dependency, split by the
//!   memory-hierarchy stage that dominated the critical fill
//!   ([`Blame`] categories plus a catch-all `other` column);
//! * `fetch_stall` — blocked on an instruction-line fill;
//! * `drained` — halted while other cores kept running.
//!
//! The four buckets partition simulated time exactly: for every core,
//! `active + Σ dep_stall + fetch_stall + drained == cycles` on any run
//! that ends by halting (the invariant is property-tested).
//!
//! # Schedule insensitivity
//!
//! Attribution must not depend on event pop order inside a cycle (the
//! race detector byte-compares metrics JSON across perturbed
//! schedules).  A core woken this cycle may have received several
//! fills in the same cycle, and their drain order is not part of the
//! simulation contract.  We therefore never attribute to "the
//! completion that flipped the core awake".  Instead every completion
//! delivered to a still-stalled core this cycle becomes a *candidate*,
//! and the interval is attributed to the canonical winner: maximum
//! end-to-end latency, ties broken by smallest PC, then smallest line
//! address, then smallest tag — all schedule-invariant quantities.

use coyote_iss::core::CoreState;
use coyote_iss::Core;
use coyote_mem::hierarchy::Completion;
use coyote_telemetry::{Blame, RequestCause, TopK, BLAME_COLS};

/// Index of the catch-all `other` column in a dep-stall blame row
/// (used when memory telemetry is disabled and no [`RequestCause`]
/// accompanies the waking fill).
pub const BLAME_OTHER: usize = BLAME_COLS - 1;

/// Upper bound on retained [`StallLink`] records, so Chrome flow-event
/// generation stays bounded on long runs.  Overflow is counted in
/// [`StallAttribution::dropped_links`].
pub const LINK_CAP: usize = 100_000;

/// One closed stall interval tied to the memory request that ended it.
///
/// Links are only recorded when Chrome tracing is enabled; they become
/// flow events binding the core's stall slice to the causing request
/// slice in the trace viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallLink {
    /// Core that stalled.
    pub core: usize,
    /// Cycle the stall interval opened.
    pub start: u64,
    /// Cycle the stall interval closed (wakeup).
    pub end: u64,
    /// Program counter of the instruction that issued the critical
    /// request.
    pub pc: u64,
    /// Line address of the critical request.
    pub line_addr: u64,
    /// Hierarchy tag of the critical request.
    pub tag: u64,
    /// Cycle the critical request entered the hierarchy.
    pub submit: u64,
    /// Stage that dominated the critical request's latency.
    pub blame: Blame,
}

/// A completion delivered to a still-stalled core this cycle; one of
/// these per woken core is elected the interval's cause.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    core: usize,
    fetch: bool,
    line_addr: u64,
    tag: u64,
    cause: Option<RequestCause>,
}

/// Per-core CPI-stack accumulator plus the bounded critical-PC table.
///
/// Driven by [`crate::Simulation`] once per cycle: a transition scan
/// after the execute phase (opens stall intervals), candidate
/// collection plus a second scan after the completion drain (closes
/// them), and a final flush when the run ends.
#[derive(Debug)]
pub struct StallAttribution {
    /// Per-core `(state, cycle the state was entered)`.
    state: Vec<(CoreState, u64)>,
    /// Blocked-register mask captured when a dep-stall opened
    /// (`[x | f << 32, v]`).
    stall_regs: Vec<[u64; 2]>,
    active: Vec<u64>,
    dep: Vec<[u64; BLAME_COLS]>,
    fetch: Vec<u64>,
    drained: Vec<u64>,
    top: TopK,
    links: Vec<StallLink>,
    collect_links: bool,
    dropped_links: u64,
    candidates: Vec<Candidate>,
}

impl StallAttribution {
    /// A fresh accumulator for `cores` cores and a critical-PC table
    /// bounded at `top_k` entries.  `collect_links` enables
    /// [`StallLink`] recording (Chrome flow events).
    #[must_use]
    pub fn new(cores: usize, top_k: usize, collect_links: bool) -> StallAttribution {
        StallAttribution {
            state: vec![(CoreState::Active, 0); cores],
            stall_regs: vec![[0, 0]; cores],
            active: vec![0; cores],
            dep: vec![[0; BLAME_COLS]; cores],
            fetch: vec![0; cores],
            drained: vec![0; cores],
            top: TopK::new(top_k),
            links: Vec::new(),
            collect_links,
            dropped_links: 0,
            candidates: Vec::new(),
        }
    }

    /// Close intervals for cores that left `Active` during the execute
    /// phase (stalled or halted) and open the successor interval.
    /// `deactivated` is the exact transition list the orchestrator
    /// tracked, so the scan touches only cores that actually moved.
    pub fn scan_after_step(&mut self, cores: &[Core], deactivated: &[usize], cycle: u64) {
        for &idx in deactivated {
            let core = &cores[idx];
            let current = core.state();
            let (prev, since) = self.state[idx];
            if current == prev {
                continue;
            }
            // Only Active -> {StalledDep, StalledFetch, Halted} can
            // happen while cores execute; wakes happen in the drain.
            self.active[idx] += cycle.saturating_sub(since);
            if current == CoreState::StalledDep {
                let regs = core.blocked_regs();
                self.stall_regs[idx] = [
                    u64::from(regs.x) | u64::from(regs.f) << 32,
                    u64::from(regs.v),
                ];
            }
            self.state[idx] = (current, cycle);
        }
    }

    /// Record a fill delivered to `core` as a wake candidate if that
    /// core entered this cycle's drain still stalled on the matching
    /// kind of request.
    pub fn note_completion(&mut self, core: usize, fetch: bool, completion: &Completion) {
        let eligible = match self.state[core].0 {
            CoreState::StalledDep => !fetch,
            CoreState::StalledFetch => fetch,
            CoreState::Active | CoreState::Halted(_) => false,
        };
        if eligible {
            self.candidates.push(Candidate {
                core,
                fetch,
                line_addr: completion.line_addr,
                tag: completion.tag,
                cause: completion.cause,
            });
        }
    }

    /// Close intervals for cores woken by this cycle's completion
    /// drain (the orchestrator's exact wake list), electing the
    /// canonical cause among the candidates. Must run after every
    /// drain that delivered a fill — even one that woke nobody — so
    /// the per-cycle candidate list is cleared.
    pub fn scan_after_drain(&mut self, cores: &[Core], woken: &[usize], cycle: u64) {
        for &idx in woken {
            let core = &cores[idx];
            let current = core.state();
            let (prev, since) = self.state[idx];
            if current == prev {
                continue;
            }
            let span = cycle.saturating_sub(since);
            let winner = self.elect(idx, prev == CoreState::StalledFetch);
            match prev {
                CoreState::StalledDep => {
                    let blame = winner.and_then(|c| c.cause).map(|c| c.dominant());
                    let col = blame.map_or(BLAME_OTHER, |b| b as usize);
                    self.dep[idx][col] += span;
                    self.credit(winner, idx, since, cycle, span, self.stall_regs[idx]);
                    self.stall_regs[idx] = [0, 0];
                }
                CoreState::StalledFetch => {
                    self.fetch[idx] += span;
                    self.credit(winner, idx, since, cycle, span, [0, 0]);
                }
                // A stalled core cannot halt, and Active -> * is
                // handled by `scan_after_step`; be permissive anyway.
                CoreState::Active | CoreState::Halted(_) => self.active[idx] += span,
            }
            self.state[idx] = (current, cycle);
        }
        self.candidates.clear();
    }

    /// Flush the tail interval of every core at end of run (`cycle` =
    /// final simulated cycle).  Halted cores accrue `drained`.
    pub fn finish(&mut self, cores: &[Core], cycle: u64) {
        for (idx, core) in cores.iter().enumerate() {
            let (prev, since) = self.state[idx];
            let span = cycle.saturating_sub(since);
            match prev {
                CoreState::Active => self.active[idx] += span,
                CoreState::StalledDep => self.dep[idx][BLAME_OTHER] += span,
                CoreState::StalledFetch => self.fetch[idx] += span,
                CoreState::Halted(_) => self.drained[idx] += span,
            }
            self.state[idx] = (core.state(), cycle);
        }
    }

    /// Elect the canonical wake cause for `core`: maximum end-to-end
    /// latency, ties to smallest PC, then line address, then tag.
    fn elect(&self, core: usize, fetch: bool) -> Option<Candidate> {
        self.candidates
            .iter()
            .filter(|c| c.core == core && c.fetch == fetch)
            .max_by(|a, b| {
                let ka = Self::rank(a);
                let kb = Self::rank(b);
                ka.0.cmp(&kb.0)
                    .then(kb.1.cmp(&ka.1))
                    .then(kb.2.cmp(&ka.2))
                    .then(kb.3.cmp(&ka.3))
            })
            .copied()
    }

    /// Ordering key: latency (maximized), then pc/line/tag (minimized).
    fn rank(c: &Candidate) -> (u64, u64, u64, u64) {
        let (total, pc) = c.cause.map_or((0, 0), |cause| (cause.total(), cause.pc));
        (total, pc, c.line_addr, c.tag)
    }

    /// Feed the critical-PC table and (optionally) the link log from a
    /// closed interval with an elected cause.
    fn credit(
        &mut self,
        winner: Option<Candidate>,
        core: usize,
        start: u64,
        end: u64,
        span: u64,
        regs: [u64; 2],
    ) {
        let Some(candidate) = winner else { return };
        let Some(cause) = candidate.cause else { return };
        self.top.add(cause.pc, span, cause.dominant(), regs);
        if self.collect_links {
            if self.links.len() < LINK_CAP {
                self.links.push(StallLink {
                    core,
                    start,
                    end,
                    pc: cause.pc,
                    line_addr: candidate.line_addr,
                    tag: candidate.tag,
                    submit: cause.submit,
                    blame: cause.dominant(),
                });
            } else {
                self.dropped_links += 1;
            }
        }
    }

    /// Cycles each core spent executing.
    #[must_use]
    pub fn active(&self) -> &[u64] {
        &self.active
    }

    /// Dep-stall cycles per core, split by blame category
    /// ([`Blame::ALL`] order, then the `other` column).
    #[must_use]
    pub fn dep(&self) -> &[[u64; BLAME_COLS]] {
        &self.dep
    }

    /// Fetch-stall cycles per core.
    #[must_use]
    pub fn fetch(&self) -> &[u64] {
        &self.fetch
    }

    /// Cycles each core sat halted while the simulation kept running.
    #[must_use]
    pub fn drained(&self) -> &[u64] {
        &self.drained
    }

    /// The bounded critical-PC table.
    #[must_use]
    pub fn top(&self) -> &TopK {
        &self.top
    }

    /// Closed stall intervals retained for Chrome flow events.
    #[must_use]
    pub fn links(&self) -> &[StallLink] {
        &self.links
    }

    /// Links discarded after [`LINK_CAP`] was reached.
    #[must_use]
    pub fn dropped_links(&self) -> u64 {
        self.dropped_links
    }
}
