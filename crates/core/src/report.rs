//! Simulation report: the statistics the paper says Coyote outputs
//! ("statistics about memory accesses (miss rates, number of stalls due
//! to dependencies, etc.), the execution time of the simulated
//! application"), plus host-side throughput for the Figure 3
//! reproduction.

use std::fmt;
use std::time::Duration;

use coyote_iss::{CacheStats, CoreStats};
use coyote_mem::hierarchy::HierarchyStats;

/// Per-core slice of a report.
#[derive(Debug, Clone)]
pub struct CoreReport {
    /// Core counters (retired, stalls, …).
    pub stats: CoreStats,
    /// L1I counters.
    pub l1i: CacheStats,
    /// L1D counters.
    pub l1d: CacheStats,
    /// Exit code, if the core halted.
    pub exit_code: Option<i64>,
    /// Console bytes the core printed.
    pub console: Vec<u8>,
    /// Instructions retired through the superblock fused path — a
    /// host-diagnostic counter (deliberately outside [`CoreStats`] so
    /// the determinism digest cannot depend on the fusion knob).
    pub fused_retired: u64,
}

/// Complete result of a simulation run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Simulated execution time in cycles.
    pub cycles: u64,
    /// Per-core results.
    pub cores: Vec<CoreReport>,
    /// Memory-hierarchy counters.
    pub hierarchy: HierarchyStats,
    /// Host wall-clock time of the run.
    pub wall_time: Duration,
    /// Whether a graceful stop cut the run short: the counters above
    /// cover only the cycles that actually ran. Always `false` for a
    /// run that reached halt on its own.
    pub truncated: bool,
}

impl Report {
    /// Total instructions retired across cores.
    #[must_use]
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.retired).sum()
    }

    /// Aggregate simulation throughput in simulated MIPS
    /// (million instructions per host second) — the Figure 3 metric.
    #[must_use]
    pub fn host_mips(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_retired() as f64 / secs / 1.0e6
        }
    }

    /// Aggregate instructions per simulated cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_retired() as f64 / self.cycles as f64
        }
    }

    /// Combined L1D miss rate.
    #[must_use]
    pub fn l1d_miss_rate(&self) -> f64 {
        let hits: u64 = self.cores.iter().map(|c| c.l1d.hits).sum();
        let misses: u64 = self.cores.iter().map(|c| c.l1d.misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            misses as f64 / (hits + misses) as f64
        }
    }

    /// Total cycles cores spent stalled on RAW dependencies.
    #[must_use]
    pub fn total_dep_stall_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.dep_stall_cycles).sum()
    }

    /// Instructions retired through the superblock fused path, across
    /// cores.
    #[must_use]
    pub fn total_fused_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.fused_retired).sum()
    }

    /// Fraction of all retirements that took the fused path (0 when
    /// fusion is disabled or nothing retired).
    #[must_use]
    pub fn block_hit_rate(&self) -> f64 {
        let retired = self.total_retired();
        if retired == 0 {
            0.0
        } else {
            self.total_fused_retired() as f64 / retired as f64
        }
    }

    /// All cores' exit codes, if all halted.
    #[must_use]
    pub fn exit_codes(&self) -> Option<Vec<i64>> {
        self.cores.iter().map(|c| c.exit_code).collect()
    }

    /// Concatenated console output in core order.
    #[must_use]
    pub fn console_string(&self) -> String {
        let mut out = String::new();
        for core in &self.cores {
            out.push_str(&String::from_utf8_lossy(&core.console));
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles: {}  instructions: {}  IPC: {:.3}  host MIPS: {:.2}",
            self.cycles,
            self.total_retired(),
            self.ipc(),
            self.host_mips()
        )?;
        writeln!(
            f,
            "L1D miss rate: {:.2}%  L2 miss rate: {:.2}%  dep-stall cycles: {}",
            self.l1d_miss_rate() * 100.0,
            self.hierarchy.l2_miss_rate() * 100.0,
            self.total_dep_stall_cycles()
        )?;
        for (i, core) in self.cores.iter().enumerate() {
            writeln!(
                f,
                "  core {i}: {} retired, {} dep stalls ({} cycles), L1D {:.1}% miss, exit {:?}",
                core.stats.retired,
                core.stats.dep_stalls,
                core.stats.dep_stall_cycles,
                core.l1d.miss_rate() * 100.0,
                core.exit_code
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        let core = CoreReport {
            stats: CoreStats {
                retired: 500,
                dep_stall_cycles: 100,
                dep_stalls: 10,
                ..CoreStats::default()
            },
            l1i: CacheStats::default(),
            l1d: CacheStats {
                hits: 90,
                misses: 10,
                writebacks: 0,
            },
            exit_code: Some(0),
            console: b"ok".to_vec(),
            fused_retired: 250,
        };
        Report {
            cycles: 1000,
            cores: vec![core.clone(), core],
            hierarchy: HierarchyStats::default(),
            wall_time: Duration::from_millis(10),
            truncated: false,
        }
    }

    #[test]
    fn aggregate_math() {
        let r = report();
        assert_eq!(r.total_retired(), 1000);
        assert_eq!(r.ipc(), 1.0);
        assert_eq!(r.l1d_miss_rate(), 0.1);
        assert_eq!(r.total_dep_stall_cycles(), 200);
        assert_eq!(r.total_fused_retired(), 500);
        assert!((r.block_hit_rate() - 0.5).abs() < 1e-12);
        // 1000 instructions / 0.01 s = 100k inst/s = 0.1 MIPS.
        assert!((r.host_mips() - 0.1).abs() < 1e-9);
        assert_eq!(r.exit_codes(), Some(vec![0, 0]));
        assert_eq!(r.console_string(), "okok");
    }

    #[test]
    fn partial_halt_yields_no_exit_codes() {
        let mut r = report();
        r.cores[1].exit_code = None;
        assert_eq!(r.exit_codes(), None);
    }

    #[test]
    fn display_mentions_key_metrics() {
        let text = report().to_string();
        assert!(text.contains("IPC"));
        assert!(text.contains("core 0"));
        assert!(text.contains("L1D miss rate"));
    }

    #[test]
    fn zero_division_is_safe() {
        let r = Report {
            cycles: 0,
            cores: Vec::new(),
            hierarchy: HierarchyStats::default(),
            wall_time: Duration::ZERO,
            truncated: false,
        };
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.host_mips(), 0.0);
        assert_eq!(r.l1d_miss_rate(), 0.0);
        assert_eq!(r.block_hit_rate(), 0.0);
    }
}
