//! The Orchestrator: couples the functional cores (Spike substitute)
//! with the event-driven hierarchy (Sparta substitute).
//!
//! Per the paper, every cycle the Orchestrator "first tries to simulate
//! an instruction on each of the active cores"; detected RAW
//! dependencies deactivate cores, L1 misses are "enqueued into Sparta",
//! and then the event model is advanced "to keep it in sync with the
//! rest of the simulation", waking stalled cores whose misses were
//! serviced.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use coyote_asm::Program;
use coyote_isa::{sweep_conflicts, AccessInterval, XReg};
use coyote_iss::core::{Core, CoreSnapshot, CoreState, DecodedText, StepEvent};
use coyote_iss::{FuseStop, MissKind, SimError, SparseMemory};
use coyote_mem::hierarchy::{Completion, Hierarchy, Request};
use coyote_mem::telemetry::MemTelemetry;
use coyote_oracle::{Divergence, LockstepChecker, TRAIL_EVENTS};
use coyote_telemetry::hostprof::{HostProf, ProfClock, SpanToken, WallClock};
use coyote_telemetry::live::{CoreStatus, StatusEmitter, StatusSnapshot};
use coyote_telemetry::{EpochSnapshot, JsonValue, TelemetrySink, SCHEMA_VERSION};

use crate::attr::StallAttribution;
use crate::config::{ConfigError, ProfMode, SimConfig};
use crate::flight::{state_name, FlightKind, FlightRecorder};
use crate::par::{self, WorkerPool};
use crate::report::{CoreReport, Report};
use crate::trace::{StateInterval, Trace, TraceEvent};

/// Error terminating a simulation run.
#[derive(Debug)]
pub enum RunError {
    /// The configuration was invalid.
    Config(ConfigError),
    /// A core faulted (illegal instruction, unsupported vector config).
    Core {
        /// Which core faulted.
        core: usize,
        /// The underlying fault.
        source: SimError,
    },
    /// No core can ever make progress again (all stalled or halted with
    /// an idle hierarchy) — indicates a kernel or simulator bug.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
        /// Snapshot of every core at detection time: state, stalled PC
        /// and outstanding-miss counts.
        cores: Vec<CoreSnapshot>,
        /// Per stalled core: the line it waits on and where that line
        /// sits in the hierarchy, so the error display and the crash
        /// dump agree on what blocked whom.
        stalls: Vec<StallInfo>,
    },
    /// The co-simulation oracle caught the timed machine producing a
    /// different architectural result than the functional reference
    /// ([`SimConfig::oracle`]).
    OracleDivergence(Box<Divergence>),
    /// The configured cycle budget was exhausted.
    CycleLimit {
        /// The budget that was exceeded.
        cycles: u64,
    },
    /// A graceful stop was requested (see
    /// [`Simulation::set_stop_handle`]): the current cycle finished,
    /// the simulation state is intact, and a partial report is
    /// available via [`Simulation::partial_report`].
    Stopped {
        /// Cycle the run stopped after.
        cycle: u64,
    },
}

/// Why one core in a [`RunError::Deadlock`] report cannot make
/// progress: the cache line it waits on, and — when the hierarchy
/// still tracks an in-flight request for it — the bank MSHR holding
/// that fill plus the PC that issued it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallInfo {
    /// The stalled core.
    pub core: usize,
    /// PC of the blocked instruction.
    pub pc: u64,
    /// Line the core waits on (first outstanding data line, or the
    /// blocked fetch line). `None` if the core records no pending line
    /// — a scoreboard-level simulator bug.
    pub line: Option<u64>,
    /// Global bank index whose MSHR holds the in-flight fill.
    pub bank: Option<usize>,
    /// Issuing PC the hierarchy recorded for that in-flight request.
    pub issue_pc: Option<u64>,
}

impl fmt::Display for StallInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core {} blocked at pc {:#x}", self.core, self.pc)?;
        match self.line {
            Some(line) => write!(f, " on line {line:#x}")?,
            None => write!(f, " with no pending line")?,
        }
        if let Some(bank) = self.bank {
            write!(f, " (bank {bank} MSHR")?;
            if let Some(pc) = self.issue_pc {
                write!(f, ", issued at pc {pc:#x}")?;
            }
            write!(f, ")")?;
        } else if self.line.is_some() {
            write!(f, " (not in flight in the hierarchy)")?;
        }
        Ok(())
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "{e}"),
            RunError::Core { core, source } => write!(f, "core {core}: {source}"),
            RunError::Deadlock {
                cycle,
                cores,
                stalls,
            } => {
                write!(f, "deadlock at cycle {cycle}")?;
                for snap in cores {
                    write!(f, "\n  {snap}")?;
                }
                if !stalls.is_empty() {
                    write!(f, "\nblocked on:")?;
                    for stall in stalls {
                        write!(f, "\n  {stall}")?;
                    }
                }
                Ok(())
            }
            RunError::OracleDivergence(divergence) => write!(f, "{divergence}"),
            RunError::CycleLimit { cycles } => write!(f, "cycle limit {cycles} exceeded"),
            RunError::Stopped { cycle } => {
                write!(f, "run stopped by request after cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Config(e) => Some(e),
            RunError::Core { source, .. } => Some(source),
            RunError::OracleDivergence(divergence) => Some(divergence.as_ref()),
            _ => None,
        }
    }
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

/// Maps a core state to its Paraver state value.
fn state_code(state: CoreState) -> u64 {
    match state {
        CoreState::Active => crate::trace::STATE_RUNNING,
        CoreState::StalledDep => crate::trace::STATE_DEP_STALL,
        CoreState::StalledFetch => crate::trace::STATE_FETCH_STALL,
        CoreState::Halted(_) => crate::trace::STATE_HALTED,
    }
}

/// Encodes (core, miss kind) into a hierarchy request tag.
fn encode_tag(core: usize, kind: MissKind) -> u64 {
    let code = match kind {
        MissKind::Ifetch => 0u64,
        MissKind::Load => 1,
        MissKind::Store => 2,
        MissKind::Writeback => 3,
    };
    ((core as u64) << 2) | code
}

/// Decodes a hierarchy completion tag back to (core, kind).
pub(crate) fn decode_tag(tag: u64) -> (usize, MissKind) {
    let kind = match tag & 0b11 {
        0 => MissKind::Ifetch,
        1 => MissKind::Load,
        2 => MissKind::Store,
        _ => MissKind::Writeback,
    };
    ((tag >> 2) as usize, kind)
}

/// A configured multicore simulation ready to run.
///
/// # Examples
///
/// ```
/// use coyote::{SimConfig, Simulation};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = coyote_asm::assemble(
///     "_start:
///         csrr a0, mhartid
///         li a7, 93
///         ecall",
/// )?;
/// let config = SimConfig::builder().cores(4).build()?;
/// let mut sim = Simulation::new(config, &program)?;
/// let report = sim.run()?;
/// assert_eq!(report.exit_codes(), Some(vec![0, 1, 2, 3]));
/// # Ok(())
/// # }
/// ```
pub struct Simulation {
    config: SimConfig,
    cores: Vec<Core>,
    /// Functional memory. Shared (`Arc`) so the parallel execute phase
    /// can hand read-only snapshot handles to worker threads; outside
    /// that phase the orchestrator holds the only reference and
    /// reclaims `&mut` access via [`Arc::get_mut`].
    mem: Arc<SparseMemory>,
    /// Predecoded text segment, shared with workers the same way.
    text: Arc<DecodedText>,
    /// Worker pool for the parallel execute phase; `None` when
    /// [`SimConfig::jobs`] is 1 (the default sequential schedule).
    pool: Option<WorkerPool>,
    /// Cycles the parallel phase discarded and re-ran sequentially
    /// after detecting a same-cycle cross-core access overlap.
    conflict_fallbacks: u64,
    hierarchy: Hierarchy,
    cycle: u64,
    trace: Option<Trace>,
    /// Per-core (state, since-cycle) for trace state intervals.
    state_track: Vec<(CoreState, u64)>,
    miss_buf: Vec<coyote_iss::MissRequest>,
    completion_buf: Vec<Completion>,
    /// Lockstep functional reference, present when the oracle is on.
    oracle: Option<LockstepChecker>,
    /// Epoch sampler, present when telemetry is on.
    telemetry: Option<TelemetrySink>,
    /// Per-core CPI stacks and the critical-PC table; always on.
    attr: StallAttribution,
    /// Core-state intervals retained for Chrome-trace export (empty
    /// unless `chrome_trace` is on).
    chrome_states: Vec<StateInterval>,
    /// Indices of cores currently in [`CoreState::Active`], ascending —
    /// the execute phase's work list. Maintained incrementally (compacted
    /// after each step phase, re-inserted on wake) so per-cycle cost
    /// scales with *running* cores, not configured cores.
    active_list: Vec<usize>,
    /// Cores halted so far. Monotone — a halted core never runs again —
    /// so the end-of-run check is a counter compare, not a scan.
    halted: usize,
    /// Reused buffer: snapshot of the active list that the execute
    /// phase iterates (the live list is compacted afterwards).
    step_order: Vec<usize>,
    /// Reused buffer: cores the execute phase deactivated this cycle
    /// (the exact list the attribution scan needs).
    deactivated_buf: Vec<usize>,
    /// Reused buffer: cores this cycle's completion drain woke.
    woken_buf: Vec<usize>,
    /// Reused buffer: `(start, end, core, write)` byte intervals for
    /// the fused window's cross-core disjointness sweep.
    window_intervals: Vec<AccessInterval>,
    /// Reused buffer: the disjointness sweep's open-interval set.
    window_open: Vec<(u64, usize, bool)>,
    /// Host-side self-profiler, present when [`SimConfig::profiling`]
    /// is not [`ProfMode::Off`]. Strictly observational: it reads the
    /// orchestrator, never the other way around — profiled and
    /// unprofiled runs are bit-identical (property-tested).
    prof: Option<HostProf>,
    /// Load-time disjointness certificate, present when
    /// [`SimConfig::certify`] is on and the static analysis proved all
    /// cross-core write/any access pairs disjoint. While valid (the
    /// predecode generation still matches), the runtime conflict
    /// sweeps are skipped; any text-segment store revokes it for the
    /// rest of the run.
    cert: Option<Certificate>,
    /// Live status stream, attached via [`Simulation::set_status`]. A
    /// host knob like `jobs`/`profiling`: deliberately outside
    /// [`SimConfig`] (and therefore outside `config_json` and the
    /// determinism digest) — emission reads simulated state, never
    /// writes it.
    status: Option<StatusEmitter>,
    /// Always-on flight recorder: bounded ring of recent notable
    /// events, dumped into crash reports. Pure observation of the
    /// simulated schedule.
    flight: FlightRecorder,
    /// Graceful-stop token, polled once per cycle when set (see
    /// [`Simulation::set_stop_handle`]).
    stop: Option<Arc<AtomicBool>>,
    /// Test hook: swallow the next data-load completion before
    /// delivery, stranding its waiter forever — the only way to produce
    /// a genuine [`RunError::Deadlock`] in a correct hierarchy.
    debug_drop_next_load_fill: bool,
}

/// A granted disjointness certificate, pinned to the predecode
/// generation it was proven against.
#[derive(Debug, Clone, Copy)]
struct Certificate {
    /// [`DecodedText::generation`] at proof time; a mismatch means the
    /// text was patched after the proof and the certificate is void.
    text_gen: u64,
}

/// The profile counter charged when a multi-core fused window stops
/// because a core failed to re-arm, keyed by that core's stop reason.
fn rearm_fail_counter(stop: FuseStop) -> &'static str {
    match stop {
        FuseStop::RunEnd => "window/rearm_fail/run_end",
        FuseStop::TooShort => "window/rearm_fail/too_short",
        FuseStop::ScoreboardBusy => "window/rearm_fail/scoreboard_busy",
        FuseStop::PendingFill => "window/rearm_fail/pending_fill",
        FuseStop::LineNotResident => "window/rearm_fail/line_not_resident",
        FuseStop::BaseWritten => "window/rearm_fail/base_written",
        FuseStop::TextStore => "window/rearm_fail/text_store",
    }
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("cores", &self.cores.len())
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Builds a simulation of `program` under `config`.
    ///
    /// All cores start at the program's entry point; kernels partition
    /// work by reading `mhartid`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Config`] for invalid configurations.
    pub fn new(config: SimConfig, program: &Program) -> Result<Simulation, RunError> {
        config.validate()?;
        let mut prof = match config.profiling {
            ProfMode::Off => None,
            ProfMode::Wall => Some(HostProf::new(ProfClock::Wall, config.cores)),
            ProfMode::Counter => Some(HostProf::new(ProfClock::Counter, config.cores)),
        };
        let mut mem = SparseMemory::new();
        mem.load_program(program);
        let predecode_span = prof.as_mut().map(|p| p.enter("predecode"));
        let text = DecodedText::from_program(program);
        if let Some(p) = &mut prof {
            if let Some(span) = predecode_span {
                p.exit(span);
            }
            let stats = text.predecode_stats();
            p.bump("predecode/words", stats.words);
            p.bump("predecode/decoded", stats.decoded);
            p.bump("predecode/holes", stats.holes);
        }
        // `SimConfig::fusion` is authoritative for the per-core fused
        // dispatch; mirror it into the core configuration.
        let mut core_config = config.core;
        core_config.fusion = config.fusion;
        let cores = (0..config.cores)
            .map(|i| Core::new(i, program.entry(), &core_config))
            .collect();
        let cert = if config.certify {
            let analysis_span = prof.as_mut().map(|p| p.enter("analysis"));
            let outcome = coyote_analysis::certify(program, config.cores);
            if let Some(p) = &mut prof {
                if let Some(span) = analysis_span {
                    p.exit(span);
                }
                p.bump(
                    if outcome.granted {
                        "certificate/granted"
                    } else {
                        "certificate/denied"
                    },
                    1,
                );
            }
            outcome.granted.then(|| Certificate {
                text_gen: text.generation(),
            })
        } else {
            None
        };
        let mut hierarchy = Hierarchy::new(config.hierarchy())
            .map_err(|m| RunError::Config(ConfigError::new(m)))?;
        if config.telemetry {
            hierarchy.enable_telemetry(config.chrome_trace);
        }
        Ok(Simulation {
            cores,
            mem: Arc::new(mem),
            text: Arc::new(text),
            pool: (config.jobs > 1).then(|| WorkerPool::new(config.jobs)),
            conflict_fallbacks: 0,
            hierarchy,
            cycle: 0,
            trace: config.trace.then(|| Trace::new(config.cores)),
            state_track: vec![(CoreState::Active, 0); config.cores],
            miss_buf: Vec::new(),
            completion_buf: Vec::new(),
            oracle: config
                .oracle
                .then(|| LockstepChecker::new(program, config.cores, config.core.vlen_bits)),
            telemetry: config
                .telemetry
                .then(|| TelemetrySink::new(config.metrics_interval)),
            attr: StallAttribution::new(
                config.cores,
                config.attribution_top_k,
                config.chrome_trace,
            ),
            chrome_states: Vec::new(),
            active_list: (0..config.cores).collect(),
            halted: 0,
            step_order: Vec::new(),
            deactivated_buf: Vec::new(),
            woken_buf: Vec::new(),
            window_intervals: Vec::new(),
            window_open: Vec::new(),
            prof,
            cert,
            status: None,
            flight: FlightRecorder::new(),
            stop: None,
            debug_drop_next_load_fill: false,
            config,
        })
    }

    /// Attaches a property-test replay seed to oracle divergence
    /// reports. No-op when the oracle is disabled.
    pub fn set_oracle_replay_seed(&mut self, seed: u64) {
        if let Some(oracle) = &mut self.oracle {
            oracle.set_replay_seed(seed);
        }
    }

    /// Arms a deliberate timing-model fault on `core`: its next data
    /// fill delivers into the wrong register. Mutation-testing hook
    /// used to demonstrate the oracle catches timing-model corruption.
    pub fn inject_fill_corruption(&mut self, core: usize, reg: XReg) {
        self.cores[core].inject_fill_corruption(reg);
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current simulated cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The functional memory (for verifying kernel results).
    #[must_use]
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable access to the functional memory, for populating workload
    /// data before the run starts. Mutating memory mid-run bypasses the
    /// cache model's view of traffic; call this only before
    /// [`Simulation::run`].
    #[must_use]
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        Arc::get_mut(&mut self.mem)
            .expect("no snapshot handles outstanding outside the execute phase")
    }

    /// Number of cycles the parallel execute phase (when
    /// [`SimConfig::jobs`] exceeds 1) detected a same-cycle cross-core
    /// access overlap (or a shard fault) and re-executed sequentially.
    /// Diagnostic only: deliberately excluded from exported metrics and
    /// the [`Simulation::determinism_digest`], which must not vary with
    /// `jobs`.
    #[must_use]
    pub fn conflict_fallbacks(&self) -> u64 {
        self.conflict_fallbacks
    }

    /// Whether a load-time disjointness certificate is currently in
    /// force: granted at construction (see [`SimConfig::certify`]) and
    /// not yet revoked by a text-segment store. While active, the
    /// runtime conflict sweeps are skipped.
    #[must_use]
    pub fn certificate_active(&self) -> bool {
        self.cert
            .is_some_and(|c| c.text_gen == self.text.generation())
    }

    /// The simulated cores.
    #[must_use]
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// The host-side self-profiler, when [`SimConfig::profiling`] was
    /// enabled for this run.
    #[must_use]
    pub fn host_prof(&self) -> Option<&HostProf> {
        self.prof.as_ref()
    }

    /// Total events popped from the hierarchy event queue so far — the
    /// event-queue drain volume the host profile exports.
    #[must_use]
    pub fn event_pops(&self) -> u64 {
        self.hierarchy.event_pops()
    }

    /// Attaches a live status stream: [`Simulation::run`] emits a
    /// snapshot on the emitter's host-time cadence plus one final
    /// snapshot at exit. A host knob like [`SimConfig::jobs`] — the
    /// `status_invariance` proptests pin that digests and metrics
    /// bytes are bit-identical with and without it.
    pub fn set_status(&mut self, emitter: StatusEmitter) {
        self.status = Some(emitter);
    }

    /// Arms a graceful-stop token: once `handle` reads `true`,
    /// [`Simulation::run`] finishes the cycle in progress and returns
    /// [`RunError::Stopped`] with all state intact — a partial report
    /// marked `truncated` stays available via
    /// [`Simulation::partial_report`]. The token is how a CLI maps
    /// SIGINT/SIGTERM onto the run without any signal-handler
    /// machinery inside the model (`#![forbid(unsafe_code)]` rules out
    /// raw `sigaction`); `coyote-sim --stop-file` watches a file from
    /// a plain thread and flips this flag.
    pub fn set_stop_handle(&mut self, handle: Arc<AtomicBool>) {
        self.stop = Some(handle);
    }

    /// The flight recorder: the bounded ring of recent notable events.
    #[must_use]
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Opens a profiling span, if profiling is on. The token must be
    /// handed back to [`Simulation::prof_exit`] on every path that
    /// continues the run (error paths may drop it: the run is over).
    fn prof_enter(&mut self, name: &'static str) -> Option<SpanToken> {
        self.prof.as_mut().map(|p| p.enter(name))
    }

    /// Closes a span opened by [`Simulation::prof_enter`].
    fn prof_exit(&mut self, span: Option<SpanToken>) {
        if let Some(prof) = &mut self.prof {
            if let Some(span) = span {
                prof.exit(span);
            }
        }
    }

    /// Adds `n` to a named profile counter, if profiling is on.
    fn prof_bump(&mut self, name: &'static str, n: u64) {
        if let Some(prof) = &mut self.prof {
            prof.bump(name, n);
        }
    }

    /// The collected trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Consumes the simulation, returning the trace.
    #[must_use]
    pub fn into_trace(self) -> Option<Trace> {
        self.trace
    }

    /// The epoch-sampling telemetry sink, if telemetry was enabled.
    #[must_use]
    pub fn telemetry(&self) -> Option<&TelemetrySink> {
        self.telemetry.as_ref()
    }

    /// The hierarchy's request-lifecycle telemetry, if enabled.
    #[must_use]
    pub fn mem_telemetry(&self) -> Option<&MemTelemetry> {
        self.hierarchy.telemetry()
    }

    /// Per-core CPI stacks and the critical-PC table (always
    /// collected; blame splits degrade to `other` when
    /// [`SimConfig::telemetry`] is off).
    #[must_use]
    pub fn attribution(&self) -> &StallAttribution {
        &self.attr
    }

    /// Core-state intervals collected for Chrome-trace export (empty
    /// unless [`SimConfig::chrome_trace`] was set).
    #[must_use]
    pub fn chrome_states(&self) -> &[StateInterval] {
        &self.chrome_states
    }

    /// Enables hierarchy event logging (one record per handled event)
    /// for `coyote-audit --race` divergence localization.
    pub fn set_event_log(&mut self, enabled: bool) {
        self.hierarchy.set_event_log(enabled);
    }

    /// Takes the accumulated hierarchy event log, leaving it empty.
    #[must_use]
    pub fn take_event_log(&mut self) -> Vec<coyote_mem::hierarchy::EventRecord> {
        self.hierarchy.take_event_log()
    }

    /// Arms the deliberate `HashMap`-ordered event drain in the
    /// hierarchy. Test hook proving `coyote-audit --race` fires on a
    /// genuine schedule race; never use outside the detector's
    /// self-test.
    #[doc(hidden)]
    pub fn debug_inject_unordered_drain(&mut self) {
        self.hierarchy.debug_inject_unordered_drain();
    }

    /// Arms a deliberate lost-fill fault: the next data-load completion
    /// is swallowed before delivery, so its waiter stalls forever and
    /// the run ends in [`RunError::Deadlock`]. Test hook for the
    /// deadlock report and the crash-dump path; never use outside
    /// tests.
    #[doc(hidden)]
    pub fn debug_inject_lost_fill(&mut self) {
        self.debug_drop_next_load_fill = true;
    }

    /// Order-insensitive digest of the architecturally visible outcome:
    /// final cycle count, every core's exit code, statistics, cache
    /// counters and console bytes, the hierarchy statistics, and the
    /// full functional-memory image.
    ///
    /// Two runs of the same program and config must produce equal
    /// digests even when their same-cycle cross-domain event pop order
    /// differs ([`SimConfig::perturb_seed`]); a mismatch is a
    /// schedule race.
    #[must_use]
    pub fn determinism_digest(&self) -> u64 {
        fn fnv(acc: u64, bytes: &[u8]) -> u64 {
            let mut h = acc;
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fnv(h, &self.cycle.to_le_bytes());
        for core in &self.cores {
            let exit = match core.state() {
                CoreState::Halted(code) => format!("halt:{code}"),
                other => format!("{other:?}"),
            };
            let line = format!(
                "core {} {exit} {:?} {:?} {:?}",
                core.index(),
                core.stats(),
                core.icache_stats(),
                core.dcache_stats(),
            );
            h = fnv(h, line.as_bytes());
            h = fnv(h, core.console());
        }
        h = fnv(h, format!("{:?}", self.hierarchy.stats()).as_bytes());
        h = fnv(h, &self.mem.digest().to_le_bytes());
        h
    }

    /// Runs until every core exits, producing the report.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] on core faults, deadlock, or when
    /// `max_cycles` is exceeded.
    pub fn run(&mut self) -> Result<Report, RunError> {
        // Wall time feeds only the report's host-MIPS diagnostics,
        // never the model; exports that must be byte-stable zero it
        // (see `coyote_lint::race::run_once`). The clock itself lives
        // behind `coyote_telemetry::hostprof` — the workspace's one
        // path-pinned wall-clock exception.
        let started = WallClock::start();
        loop {
            if self.step_cycle()? {
                // Final snapshot regardless of cadence, so short runs
                // still leave a parseable status file behind.
                self.emit_status_now();
                return Ok(self.build_report(started.elapsed()));
            }
            if let Some(stop) = &self.stop {
                // The cycle in progress finished above; stopping here
                // leaves the machine at a clean cycle boundary.
                if stop.load(Ordering::Relaxed) {
                    self.emit_status_now();
                    return Err(RunError::Stopped { cycle: self.cycle });
                }
            }
            if self.cycle >= self.config.max_cycles {
                return Err(RunError::CycleLimit {
                    cycles: self.config.max_cycles,
                });
            }
            // Live status plane: a host-cadence poll whose result gates
            // an observation-only emit — simulated state never depends
            // on it.
            if self.status.as_mut().is_some_and(StatusEmitter::due) {
                self.emit_status_now();
            }
        }
    }

    /// Emits one status snapshot now, if a stream is attached. Mid-run
    /// write failures are dropped deliberately — the live plane is
    /// best-effort; an unusable path already failed at
    /// [`StatusEmitter::create`] time.
    fn emit_status_now(&mut self) {
        if self.status.is_none() {
            return;
        }
        let snap = self.status_snapshot();
        if let Some(emitter) = &mut self.status {
            let _ = emitter.emit(&snap);
        }
    }

    /// Assembles the purely simulated half of one status line.
    fn status_snapshot(&self) -> StatusSnapshot {
        let dep = self.attr.dep();
        let cores: Vec<CoreStatus> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let snap = core.snapshot();
                let dep_total: u64 = dep.get(i).map_or(0, |row| row.iter().sum());
                CoreStatus {
                    core: i,
                    state: state_name(snap.state),
                    pc: snap.pc,
                    retired: snap.retired,
                    cpi: [
                        self.attr.active().get(i).copied().unwrap_or(0),
                        dep_total,
                        self.attr.fetch().get(i).copied().unwrap_or(0),
                        self.attr.drained().get(i).copied().unwrap_or(0),
                    ],
                }
            })
            .collect();
        let retired: u64 = cores.iter().map(|c| c.retired).sum();
        let fused: u64 = self.cores.iter().map(Core::fused_retired).sum();
        StatusSnapshot {
            cycle: self.cycle,
            max_cycles: self.config.max_cycles,
            retired,
            block_hit_rate: if retired == 0 {
                0.0
            } else {
                fused as f64 / retired as f64
            },
            conflict_fallbacks: self.conflict_fallbacks,
            certificate_active: self.certificate_active(),
            event_pops: self.hierarchy.event_pops(),
            halted: self.halted as u64,
            cores,
        }
    }

    /// Why each currently stalled core cannot make progress: its
    /// waiting line resolved against the hierarchy's in-flight state.
    fn stall_infos(&self) -> Vec<StallInfo> {
        self.cores
            .iter()
            .filter(|core| {
                matches!(
                    core.state(),
                    CoreState::StalledDep | CoreState::StalledFetch
                )
            })
            .map(|core| {
                let snap = core.snapshot();
                let line = core
                    .waiting_lines()
                    .first()
                    .copied()
                    .or_else(|| core.pending_fetch_line());
                let (bank, issue_pc) = line
                    .and_then(|l| self.hierarchy.in_flight_line_info(l))
                    .map_or((None, None), |(b, p)| (Some(b), Some(p)));
                StallInfo {
                    core: snap.core,
                    pc: snap.pc,
                    line,
                    bank,
                    issue_pc,
                }
            })
            .collect()
    }

    /// The machine's last known state as a structured crash dump:
    /// per-core snapshots with waiting lines, MSHR occupancy, the open
    /// hostprof phase stack, introspection counters, and the flight
    /// recorder tail. `reason` names the abnormal exit
    /// (`deadlock`, `oracle_divergence`, `panic`, `stopped`, …).
    #[must_use]
    pub fn crash_json(&self, reason: &str) -> JsonValue {
        let cores: Vec<JsonValue> = self
            .cores
            .iter()
            .map(|core| {
                let snap = core.snapshot();
                let waiting: Vec<JsonValue> = core
                    .waiting_lines()
                    .into_iter()
                    .map(JsonValue::from)
                    .collect();
                JsonValue::object()
                    .with("core", snap.core)
                    .with("state", state_name(snap.state))
                    .with("pc", snap.pc)
                    .with("retired", snap.retired)
                    .with("in_flight_lines", snap.in_flight_lines)
                    .with("waiting_lines", JsonValue::Array(waiting))
                    .with(
                        "pending_fetch",
                        snap.pending_fetch.map_or(JsonValue::Null, JsonValue::from),
                    )
            })
            .collect();
        let mshr: Vec<JsonValue> = self
            .hierarchy
            .mshr_occupancy()
            .into_iter()
            .map(JsonValue::from)
            .collect();
        let phases: Vec<JsonValue> = self
            .prof
            .as_ref()
            .map(|p| p.open_phases().into_iter().map(JsonValue::from).collect())
            .unwrap_or_default();
        let stalls: Vec<JsonValue> = self
            .stall_infos()
            .into_iter()
            .map(|s| {
                JsonValue::object()
                    .with("core", s.core)
                    .with("pc", s.pc)
                    .with("line", s.line.map_or(JsonValue::Null, JsonValue::from))
                    .with("bank", s.bank.map_or(JsonValue::Null, JsonValue::from))
                    .with(
                        "issue_pc",
                        s.issue_pc.map_or(JsonValue::Null, JsonValue::from),
                    )
            })
            .collect();
        JsonValue::object()
            .with("schema_version", SCHEMA_VERSION)
            .with("reason", reason)
            .with("cycle", self.cycle)
            .with("cores", JsonValue::Array(cores))
            .with("stalls", JsonValue::Array(stalls))
            .with("mshr_occupancy", JsonValue::Array(mshr))
            .with("hostprof_phases", JsonValue::Array(phases))
            .with("conflict_fallbacks", self.conflict_fallbacks)
            .with("certificate_active", self.certificate_active())
            .with("event_pops", self.hierarchy.event_pops())
            .with("flight_recorder", self.flight.to_json())
    }

    /// A report over the cycles that actually ran, marked `truncated`.
    /// Valid after [`RunError::Stopped`] (the machine stopped at a
    /// clean cycle boundary); `wall_time` is zero because a partial
    /// run's host throughput is not comparable to a finished one.
    #[must_use]
    pub fn partial_report(&self) -> Report {
        let mut report = self.build_report(std::time::Duration::ZERO);
        report.truncated = true;
        report
    }

    /// Advances the system by one orchestrator cycle.
    ///
    /// Returns `true` once every core has halted.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] on core faults or deadlock.
    pub fn step_cycle(&mut self) -> Result<bool, RunError> {
        self.cycle += 1;
        let mut cycle = self.cycle;

        // Workload data is populated through `memory_mut` between
        // construction and the first cycle; give the oracle's reference
        // machine the same initial memory image.
        if cycle == 1 {
            if let Some(oracle) = &mut self.oracle {
                oracle.sync_memory(&self.mem);
            }
        }

        // 1. Attempt instructions on each active core (the interleave
        //    factor reproduces Spike's back-to-back batching; Coyote
        //    proper uses 1). The oracle replays each retirement in this
        //    same global order, so its reference memory reproduces the
        //    timed machine's exact interleaving. With `jobs > 1` the
        //    active cores step in parallel against a pre-cycle memory
        //    snapshot; the commit protocol (see [`crate::par`]) keeps
        //    the observable interleaving bit-identical to `jobs = 1`.
        //    The oracle's per-retirement memory diff assumes one
        //    retirement per core per cycle, so oracle runs only go
        //    parallel at interleave 1.
        //
        //    Before the per-cycle step, the fusion fast path may retire
        //    a whole multi-cycle window of validated superblock runs at
        //    once; the window is bounded so every observable event
        //    (hierarchy completion, telemetry sample, cycle limit)
        //    still lands on exactly the cycle it would have per-cycle.
        let execute_span = self.prof_enter("execute");
        if let Some(window) = self.try_fused_window(cycle)? {
            // `window` cycles retired one instruction per active core
            // per cycle with no stalls, misses or state transitions;
            // the rest of this function runs once at the window's last
            // cycle, which per-cycle stepping would reach identically.
            self.cycle = cycle + u64::from(window) - 1;
            cycle = self.cycle;
            self.deactivated_buf.clear();
        } else {
            let use_parallel = self.pool.is_some()
                && (self.config.interleave == 1 || self.oracle.is_none())
                && self.active_list.len() >= 2;
            if use_parallel {
                self.step_cores_parallel(cycle)?;
            } else {
                self.step_cores_sequential(cycle)?;
            }
            self.refresh_active_list();
        }
        self.prof_exit(execute_span);

        // Close `active` intervals for cores the execute phase just
        // deactivated (stall attribution runs unconditionally, but a
        // cycle in which every stepped core retired cleanly cannot have
        // opened an interval, so the scan is skipped).
        if !self.deactivated_buf.is_empty() {
            self.attr
                .scan_after_step(&self.cores, &self.deactivated_buf, cycle);
        }

        // Self-modifying code: stores into the text segment recorded
        // during the step phase invalidate the patched predecoded
        // entries now — the same point in the cycle for every `jobs`
        // count and for the fallback path, keeping runs bit-identical.
        self.drain_text_writes();

        // 2. Enqueue this cycle's L1 misses into the event model.
        let miss_span = if self.miss_buf.is_empty() {
            None
        } else {
            self.prof_enter("miss_submit")
        };
        for miss in self.miss_buf.drain(..) {
            if let Some(trace) = &mut self.trace {
                trace.record(TraceEvent {
                    cycle,
                    core: miss.core,
                    kind: miss.kind,
                    line_addr: miss.line_addr,
                    pc: miss.pc,
                });
            }
            self.hierarchy.submit(
                cycle,
                Request {
                    line_addr: miss.line_addr,
                    tile: self.config.tile_of_core(miss.core),
                    needs_response: miss.kind != MissKind::Writeback,
                    tag: encode_tag(miss.core, miss.kind),
                    pc: miss.pc,
                },
            );
        }
        self.prof_exit(miss_span);

        // 3. Advance the event model to the current cycle and service
        //    completed misses (waking stalled cores). Every fill that
        //    reaches a still-stalled core is a wake-cause candidate.
        let advance_span = self.prof_enter("hier_advance");
        self.hierarchy.advance(cycle, &mut self.completion_buf);
        let drained_any = !self.completion_buf.is_empty();
        self.woken_buf.clear();
        for completion in self.completion_buf.drain(..) {
            let (core, kind) = decode_tag(completion.tag);
            if self.debug_drop_next_load_fill && kind == MissKind::Load {
                // Armed test fault: strand the waiter (see
                // `debug_inject_lost_fill`).
                self.debug_drop_next_load_fill = false;
                continue;
            }
            match kind {
                MissKind::Load | MissKind::Store => {
                    self.attr.note_completion(core, false, &completion);
                }
                MissKind::Ifetch => self.attr.note_completion(core, true, &completion),
                MissKind::Writeback => {}
            }
            self.flight.record(
                cycle,
                FlightKind::Completion {
                    core,
                    kind,
                    line: completion.line_addr,
                },
            );
            if self.cores[core].complete_fill(completion.line_addr, kind, cycle) {
                self.woken_buf.push(core);
                self.flight.record(cycle, FlightKind::Wake { core });
            }
        }
        // Woken cores rejoin the active list at their index position
        // (ascending order is the deterministic step order).
        for i in 0..self.woken_buf.len() {
            let core = self.woken_buf[i];
            let pos = self
                .active_list
                .binary_search(&core)
                .expect_err("woken core was already on the active list");
            self.active_list.insert(pos, core);
        }
        // Close stall intervals for cores the drain woke. Only fills
        // wake cores and only `note_completion` queues candidates, so a
        // drain that serviced nothing has nothing to scan or clear —
        // but a drain that serviced *anything* must still run the scan
        // to retire this cycle's wake-cause candidates.
        if drained_any {
            self.attr
                .scan_after_drain(&self.cores, &self.woken_buf, cycle);
        }
        self.prof_exit(advance_span);

        // 4. Trace core-state intervals on transitions (Paraver and/or
        //    Chrome trace).
        if self.trace.is_some() || self.config.chrome_trace {
            self.record_state_transitions(cycle);
        }

        // 5. Epoch telemetry sampling. The cycle counter can jump past
        //    epoch boundaries when fast-forwarding (below), so the
        //    sample covers whatever span actually elapsed.
        if self
            .telemetry
            .as_ref()
            .is_some_and(|sink| cycle >= sink.next_due())
        {
            self.flush_epoch_sample(cycle);
        }

        // 6. Progress bookkeeping — counter compares, not core scans:
        //    `halted` is maintained by `refresh_active_list` (halting
        //    is monotone) and the active list tracks `Active` exactly.
        let all_halted = self.halted == self.cores.len();
        let any_active = !self.active_list.is_empty();
        if all_halted {
            self.attr.finish(&self.cores, cycle);
            if self.trace.is_some() || self.config.chrome_trace {
                self.flush_state_intervals(cycle);
            }
            // Flush the final partial epoch (the sink drops it if no
            // cycles elapsed since the last sample).
            self.flush_epoch_sample(cycle);
            return Ok(true);
        }
        if !any_active {
            // Every live core is stalled; fast-forward to the next
            // hierarchy event (or report a deadlock if there is none).
            // Clamp at the configured cycle limit: a hierarchy event
            // scheduled past `max_cycles` must still report the limit
            // as the cycle it was exceeded at, not the far-future event
            // time the simulation never actually reached.
            match self.hierarchy.next_event_time() {
                Some(t) => {
                    self.cycle = self
                        .cycle
                        .max(t.saturating_sub(1))
                        .min(self.config.max_cycles);
                }
                None => {
                    return Err(RunError::Deadlock {
                        cycle,
                        cores: self.cores.iter().map(Core::snapshot).collect(),
                        stalls: self.stall_infos(),
                    })
                }
            }
        }
        Ok(false)
    }

    /// Compacts the active list after an execute phase: cores that
    /// left `Active` move to `deactivated_buf` (the exact list the
    /// attribution scan needs) and halting cores bump the monotone
    /// halted count. O(cores stepped this cycle).
    fn refresh_active_list(&mut self) {
        self.deactivated_buf.clear();
        let mut write = 0;
        for read in 0..self.active_list.len() {
            let idx = self.active_list[read];
            let state = self.cores[idx].state();
            match state {
                CoreState::Active => {
                    self.active_list[write] = idx;
                    write += 1;
                }
                CoreState::Halted(code) => {
                    self.halted += 1;
                    self.deactivated_buf.push(idx);
                    self.flight
                        .record(self.cycle, FlightKind::Halt { core: idx, code });
                }
                CoreState::StalledDep | CoreState::StalledFetch => {
                    self.deactivated_buf.push(idx);
                    self.flight.record(
                        self.cycle,
                        FlightKind::Stall {
                            core: idx,
                            state,
                            pc: self.cores[idx].snapshot().pc,
                        },
                    );
                }
            }
        }
        self.active_list.truncate(write);
    }

    /// The sequential execute phase: steps each active core in index
    /// order directly against shared memory. The caller refreshes the
    /// active list afterwards.
    fn step_cores_sequential(&mut self, cycle: u64) -> Result<(), RunError> {
        let span = self.prof_enter("sequential");
        let mut order = std::mem::take(&mut self.step_order);
        order.clear();
        order.extend_from_slice(&self.active_list);
        let mut diverged = None;
        let mut fault = None;
        {
            let Simulation {
                cores,
                mem,
                text,
                miss_buf,
                oracle,
                config,
                ..
            } = self;
            let mem = Arc::get_mut(mem)
                .expect("no snapshot handles outstanding outside the execute phase");
            let text: &DecodedText = text;
            'cores: for &idx in &order {
                let core = &mut cores[idx];
                for _ in 0..config.interleave {
                    if core.state() != CoreState::Active {
                        break;
                    }
                    let event = match core.step(mem, text, cycle, miss_buf) {
                        Ok(event) => event,
                        Err(source) => {
                            fault = Some((idx, source));
                            break 'cores;
                        }
                    };
                    if let Some(oracle) = oracle {
                        if matches!(event, StepEvent::Retired { .. } | StepEvent::Halted(_)) {
                            if let Err(divergence) =
                                oracle.check_retirement(idx, cycle, core.hart(), mem)
                            {
                                diverged = Some(divergence);
                                break 'cores;
                            }
                        }
                    }
                }
            }
        }
        self.step_order = order;
        self.prof_exit(span);
        if let Some((core, source)) = fault {
            return Err(RunError::Core { core, source });
        }
        if let Some(mut divergence) = diverged {
            divergence.context = self.cores.iter().map(Core::snapshot).collect();
            divergence.trail = self.flight.tail_lines(TRAIL_EVENTS);
            return Err(RunError::OracleDivergence(divergence));
        }
        Ok(())
    }

    /// The parallel execute phase: clones the active cores into
    /// contiguous shards, steps shards 1.. on the worker pool and
    /// shard 0 inline — every clone against the same read-only
    /// pre-cycle memory snapshot — then, if no same-cycle cross-core
    /// byte ranges overlap, commits stores, cores, oracle checks and
    /// misses in core-index order, reproducing the sequential schedule
    /// exactly. Any overlap (or a shard fault) discards the clones —
    /// the real cores and memory are an untouched pre-cycle snapshot —
    /// and re-executes the cycle sequentially.
    fn step_cores_parallel(&mut self, cycle: u64) -> Result<(), RunError> {
        let par_span = self.prof_enter("parallel");
        let step_span = self.prof_enter("shard_step");
        let active: &[usize] = &self.active_list;
        let pool = self.pool.as_ref().expect("parallel phase requires a pool");
        let shards = (pool.workers() + 1).min(active.len());
        // Contiguous near-equal shards: reassembling shard by shard
        // restores core-index order without a sort.
        let base = active.len() / shards;
        let extra = active.len() % shards;
        let mut chunks: Vec<&[usize]> = Vec::with_capacity(shards);
        let mut start = 0;
        for shard in 0..shards {
            let len = base + usize::from(shard < extra);
            chunks.push(&active[start..start + len]);
            start += len;
        }
        let interleave = self.config.interleave;
        for (shard, chunk) in chunks.iter().enumerate().skip(1) {
            pool.dispatch(
                shard - 1,
                par::Job {
                    mem: Arc::clone(&self.mem),
                    text: Arc::clone(&self.text),
                    cycle,
                    interleave,
                    cores: chunk
                        .iter()
                        .map(|&idx| (idx, self.cores[idx].clone()))
                        .collect(),
                    shard,
                },
            );
        }
        let shard0 = par::step_shard(
            &self.mem,
            &self.text,
            cycle,
            interleave,
            chunks[0]
                .iter()
                .map(|&idx| (idx, self.cores[idx].clone()))
                .collect(),
        );
        let mut results: Vec<Option<Vec<par::SteppedCore>>> = (0..shards).map(|_| None).collect();
        results[0] = Some(shard0);
        for _ in 1..shards {
            let result = pool.recv();
            results[result.shard] = Some(result.cores);
        }
        let stepped: Vec<par::SteppedCore> = results
            .into_iter()
            .flat_map(|r| r.expect("every shard reports exactly once"))
            .collect();
        self.prof_exit(step_span);

        let check_span = self.prof_enter("conflict_check");
        // A valid disjointness certificate proved the sweep can never
        // fire, so skip it; faults still force the sequential re-run
        // regardless (they must surface at their sequential position).
        let conflict = stepped.iter().any(|s| s.error.is_some())
            || (!self.certificate_active() && par::conflicting(&stepped));
        self.prof_exit(check_span);
        if conflict {
            // Fall back: a fault must surface at its sequential
            // position, and overlapping accesses mean the snapshot
            // semantics differ from the sequential interleaving.
            // Everything the discarded attempt produced lives inside
            // `stepped` — core clones, buffered stores, events, raised
            // misses. Nothing reaches shared memory, `miss_buf`, the
            // hierarchy's request-lifecycle stamps, or the telemetry
            // sink except through the commit path below, so dropping
            // here leaves zero residue for the sequential re-run to
            // double-count.
            drop(stepped);
            self.conflict_fallbacks += 1;
            self.flight.record(cycle, FlightKind::ConflictFallback);
            self.prof_bump("parallel/conflict_fallback", 1);
            // The sequential re-run opens its own span; close the
            // parallel one first so the phase tree nests it as a
            // sibling retry, not a child of the discarded attempt.
            self.prof_exit(par_span);
            return self.step_cores_sequential(cycle);
        }

        let commit_span = self.prof_enter("commit");
        let mut diverged = None;
        {
            let Simulation {
                cores,
                mem,
                miss_buf,
                oracle,
                ..
            } = self;
            let mem = Arc::get_mut(mem).expect("workers released their snapshot handles");
            'commit: for s in stepped {
                s.buf.commit(mem);
                let idx = s.idx;
                cores[idx] = s.core;
                for event in &s.events {
                    if let Some(oracle) = oracle {
                        if matches!(event, StepEvent::Retired { .. } | StepEvent::Halted(_)) {
                            if let Err(divergence) =
                                oracle.check_retirement(idx, cycle, cores[idx].hart(), mem)
                            {
                                diverged = Some(divergence);
                                break 'commit;
                            }
                        }
                    }
                }
                miss_buf.extend(s.misses);
            }
        }
        self.prof_exit(commit_span);
        self.prof_exit(par_span);
        if let Some(mut divergence) = diverged {
            divergence.context = self.cores.iter().map(Core::snapshot).collect();
            divergence.trail = self.flight.tail_lines(TRAIL_EVENTS);
            return Err(RunError::OracleDivergence(divergence));
        }
        Ok(())
    }

    /// Attempts to retire a multi-cycle window through the superblock
    /// fused path. Returns the number of cycles retired (each active
    /// core retired exactly one instruction per cycle), or `None` when
    /// the window is not applicable and the per-cycle step must run.
    ///
    /// Window soundness: every fused step is a validated guaranteed-hit
    /// retirement — no misses, no stalls, no state transitions, no
    /// console output, no new hierarchy events. The window is bounded
    /// to end at or before the next hierarchy event, the next telemetry
    /// boundary and the cycle limit, so the once-per-window bookkeeping
    /// at the window's last cycle observes exactly the state per-cycle
    /// stepping would have produced there. Windows are disabled under
    /// the oracle (which checks the canonical per-cycle retirement
    /// interleaving), tracing and interleave > 1; the per-instruction
    /// lockstep fused dispatch inside [`Core::step`] still covers those
    /// modes.
    fn try_fused_window(&mut self, cycle: u64) -> Result<Option<u32>, RunError> {
        if !self.config.fusion
            || self.config.interleave != 1
            || self.oracle.is_some()
            || self.trace.is_some()
            || self.config.chrome_trace
            || self.active_list.is_empty()
        {
            return Ok(None);
        }
        let mut bound = self
            .config
            .max_cycles
            .saturating_sub(cycle)
            .saturating_add(1);
        if let Some(t) = self.hierarchy.next_event_time() {
            // Events pending at the start of this cycle are due at
            // `cycle` or later (earlier ones were popped last cycle),
            // so the bound is always at least 1.
            bound = bound.min(t.saturating_sub(cycle) + 1);
        }
        if let Some(sink) = &self.telemetry {
            bound = bound.min(sink.next_due().saturating_sub(cycle) + 1);
        }
        let bound = u32::try_from(bound.min(u64::from(u32::MAX))).expect("clamped to u32");
        if bound == 0 || (bound < 2 && self.active_list.len() > 1) {
            // A multi-core window shorter than two cycles cannot skip
            // any bookkeeping: bail before paying the planning cost.
            return Ok(None);
        }

        let span = self.prof_enter("fused_window");
        let actives = std::mem::take(&mut self.active_list);
        let result = self.fused_window_of(cycle, bound, &actives);
        self.active_list = actives;
        self.prof_exit(span);
        result
    }

    /// The window body: single-active-core runs chain across branch
    /// targets; multi-core windows require every active core to hold a
    /// validated run and their window-prefix accesses to be disjoint.
    fn fused_window_of(
        &mut self,
        cycle: u64,
        bound: u32,
        actives: &[usize],
    ) -> Result<Option<u32>, RunError> {
        if actives.is_empty() {
            return Ok(None);
        }
        if let [idx] = *actives {
            // With every other core halted or stalled, machine state
            // evolves through this core alone until the next hierarchy
            // event, so the chain may revalidate across run boundaries.
            let Simulation {
                cores, mem, text, ..
            } = self;
            let mem = Arc::get_mut(mem)
                .expect("no snapshot handles outstanding outside the execute phase");
            let consumed = cores[idx]
                .step_block_chain(mem, text, cycle, bound)
                .map_err(|source| RunError::Core { core: idx, source })?;
            if consumed > 0 {
                if let Some(prof) = &mut self.prof {
                    prof.record_core("chunk_len", idx, u64::from(consumed));
                }
            }
            return Ok((consumed > 0).then_some(consumed));
        }
        // Chunk-wise lockstep: every active core must hold a validated
        // run; the chunk is the longest span every core can retire from
        // its current run. At chunk boundaries exhausted cores re-arm
        // (validation reads only the core's own registers, private
        // caches, private fill table and the frozen text — none of
        // which another core's fused retirement can touch — so mid-
        // window revalidation sees exactly what per-cycle stepping
        // would), and the window extends while every core stays armed,
        // the chunks stay conflict-free and the event bound holds.
        let mut consumed = 0u32;
        'window: while consumed < bound {
            let mut chunk = bound - consumed;
            for &idx in actives {
                let left = self.cores[idx].ensure_fused_run(&self.text);
                if left == 0 {
                    // The lockstep window ends the moment one core
                    // cannot re-arm; charge the abort to that core's
                    // validation stop reason.
                    let stop = self.cores[idx].fuse_diag().last_stop;
                    self.flight.record(
                        cycle + u64::from(consumed),
                        FlightKind::WindowAbort { core: idx, stop },
                    );
                    self.prof_bump(rearm_fail_counter(stop), 1);
                    break 'window;
                }
                chunk = chunk.min(left);
            }
            if self.window_conflicts(actives, chunk) {
                self.flight
                    .record(cycle + u64::from(consumed), FlightKind::WindowConflict);
                self.prof_bump("window/cross_core_conflict", 1);
                break;
            }
            let Simulation {
                cores, mem, text, ..
            } = self;
            let mem = Arc::get_mut(mem)
                .expect("no snapshot handles outstanding outside the execute phase");
            for &idx in actives {
                // Core-index order — though any order would do: the
                // chunk's accesses are pairwise disjoint across cores,
                // so the per-cycle interleaving and this per-core order
                // commute.
                cores[idx]
                    .step_block(mem, text, cycle + u64::from(consumed), chunk)
                    .map_err(|source| RunError::Core { core: idx, source })?;
            }
            consumed += chunk;
            if let Some(prof) = &mut self.prof {
                for &idx in actives {
                    prof.record_core("chunk_len", idx, u64::from(chunk));
                }
            }
        }
        Ok((consumed > 0).then_some(consumed))
    }

    /// Whether any two cores' validated accesses within the next
    /// `window` fused positions overlap at byte granularity with at
    /// least one side writing — the condition under which a multi-core
    /// window could observably differ from per-cycle interleaving.
    /// Same sweep as [`par::conflicting`], over pre-validated addresses.
    fn window_conflicts(&mut self, actives: &[usize], window: u32) -> bool {
        // Certified workloads proved cross-core disjointness statically
        // — the sweep below cannot fire, so don't pay for it.
        if self.certificate_active() {
            return false;
        }
        let intervals = &mut self.window_intervals;
        intervals.clear();
        for &idx in actives {
            let core = &self.cores[idx];
            let pos = core.fused_pos();
            for access in core.fused_accesses() {
                if access.pos >= pos && access.pos < pos + window {
                    intervals.push(AccessInterval::new(
                        access.addr,
                        u64::from(access.size),
                        idx,
                        access.write,
                    ));
                }
            }
        }
        let mut open = std::mem::take(&mut self.window_open);
        let conflict = sweep_conflicts(intervals, &mut open);
        self.window_open = open;
        // The sweep must agree with the pairwise reference checker.
        debug_assert_eq!(conflict, {
            let mut pairwise = false;
            'outer: for (i, &a) in actives.iter().enumerate() {
                for &b in &actives[i + 1..] {
                    if coyote_iss::accesses_conflict(
                        self.cores[a].fused_accesses(),
                        self.cores[a].fused_pos(),
                        window,
                        self.cores[b].fused_accesses(),
                        self.cores[b].fused_pos(),
                        window,
                    ) {
                        pairwise = true;
                        break 'outer;
                    }
                }
            }
            pairwise
        });
        conflict
    }

    /// Drains text-segment stores recorded by the step phase:
    /// invalidates the patched predecoded entries (in the simulation's
    /// shared table and the oracle's), and aborts every validated run —
    /// a patched word may sit inside one.
    fn drain_text_writes(&mut self) {
        // Only cores the execute phase stepped can have recorded a
        // write: the still-active list plus this cycle's deactivations
        // cover exactly that set (fused windows never store to text).
        let stepped_wrote = self
            .active_list
            .iter()
            .chain(&self.deactivated_buf)
            .any(|&idx| self.cores[idx].has_text_writes());
        if !stepped_wrote {
            return;
        }
        let span = self.prof_enter("text_invalidate");
        self.prof_bump("window/text_invalidation", 1);
        let mut writes: Vec<(u64, u8)> = Vec::new();
        for core in &mut self.cores {
            writes.append(&mut core.take_text_writes());
        }
        if let Some(&(addr, _)) = writes.first() {
            self.flight
                .record(self.cycle, FlightKind::TextInvalidate { addr });
        }
        let text = Arc::make_mut(&mut self.text);
        for &(addr, size) in &writes {
            text.invalidate(addr, u64::from(size));
            if let Some(oracle) = &mut self.oracle {
                oracle.invalidate_text(addr, u64::from(size));
            }
        }
        for core in &mut self.cores {
            core.abort_fused_run();
        }
        // The static proof was over the pre-patch text: revoke the
        // certificate for the rest of the run (the generation check in
        // `certificate_active` would catch this too; dropping the
        // certificate makes the revocation explicit and permanent).
        if self.cert.take().is_some() {
            self.flight
                .record(self.cycle, FlightKind::CertificateRevoked);
            self.prof_bump("certificate/revoked", 1);
        }
        self.prof_exit(span);
    }

    /// Takes one epoch-telemetry sample at `cycle`, if telemetry is on.
    /// Shared by the periodic sampler and the end-of-run final flush
    /// (the sink itself drops empty spans).
    fn flush_epoch_sample(&mut self, cycle: u64) {
        if self.telemetry.is_some() {
            let span = self.prof_enter("epoch_sample");
            let snapshot = self.epoch_snapshot(cycle);
            if let Some(sink) = &mut self.telemetry {
                sink.sample(snapshot);
            }
            self.prof_exit(span);
        }
    }

    fn record_state_transitions(&mut self, cycle: u64) {
        let chrome = self.config.chrome_trace;
        for (core, track) in self.cores.iter().zip(&mut self.state_track) {
            let current = core.state();
            if current != track.0 {
                let interval = StateInterval {
                    core: core.index(),
                    start: track.1,
                    end: cycle,
                    state: state_code(track.0),
                };
                if let Some(trace) = &mut self.trace {
                    trace.record_state(interval);
                }
                if chrome && interval.end > interval.start {
                    self.chrome_states.push(interval);
                }
                *track = (current, cycle);
            }
        }
    }

    fn flush_state_intervals(&mut self, cycle: u64) {
        let chrome = self.config.chrome_trace;
        for (core, track) in self.cores.iter().zip(&mut self.state_track) {
            let interval = StateInterval {
                core: core.index(),
                start: track.1,
                end: cycle,
                state: state_code(track.0),
            };
            if let Some(trace) = &mut self.trace {
                trace.record_state(interval);
            }
            if chrome && interval.end > interval.start {
                self.chrome_states.push(interval);
            }
            *track = (core.state(), cycle);
        }
    }

    /// Builds the cumulative-counter snapshot the telemetry sink
    /// differences into one epoch sample.
    fn epoch_snapshot(&self, cycle: u64) -> EpochSnapshot {
        let per_core = self
            .cores
            .iter()
            .map(|core| {
                let stats = core.stats_through(cycle);
                [
                    stats.retired,
                    stats.dep_stall_cycles,
                    stats.fetch_stall_cycles,
                ]
            })
            .collect();
        let stats = self.hierarchy.stats();
        let mshr = self.hierarchy.mshr_occupancy();
        let per_bank = stats
            .banks
            .iter()
            .zip(&mshr)
            .map(|(bank, &occupancy)| [bank.hits, bank.misses, occupancy as u64])
            .collect();
        EpochSnapshot {
            cycle,
            per_core,
            per_core_blame: self.attr.dep().to_vec(),
            per_bank,
            noc_traversals: stats.noc.traversals,
            completed: stats.completed,
            queued_requests: self.hierarchy.queued_requests() as u64,
            in_flight: self.hierarchy.in_flight_requests() as u64,
            mc_busy_channels: self.hierarchy.mc_busy_channels(cycle) as u64,
        }
    }

    fn build_report(&self, wall_time: std::time::Duration) -> Report {
        Report {
            cycles: self.cycle,
            cores: self
                .cores
                .iter()
                .map(|core| CoreReport {
                    stats: core.stats(),
                    l1i: core.icache_stats(),
                    l1d: core.dcache_stats(),
                    exit_code: match core.state() {
                        CoreState::Halted(code) => Some(code),
                        _ => None,
                    },
                    console: core.console().to_vec(),
                    fused_retired: core.fused_retired(),
                })
                .collect(),
            hierarchy: self.hierarchy.stats(),
            wall_time,
            truncated: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_asm::assemble;

    fn run_program(src: &str, config: SimConfig) -> Report {
        let program = assemble(src).unwrap();
        let mut sim = Simulation::new(config, &program).unwrap();
        sim.run().unwrap()
    }

    #[test]
    fn tag_round_trip() {
        for core in [0usize, 1, 7, 127] {
            for kind in [
                MissKind::Ifetch,
                MissKind::Load,
                MissKind::Store,
                MissKind::Writeback,
            ] {
                assert_eq!(decode_tag(encode_tag(core, kind)), (core, kind));
            }
        }
    }

    #[test]
    fn multicore_hart_partitioning() {
        let src = "
            .data
            out: .zero 64
            .text
            _start:
                csrr t0, mhartid
                la t1, out
                slli t2, t0, 3
                add t1, t1, t2
                addi t3, t0, 100
                sd t3, 0(t1)
                mv a0, t0
                li a7, 93
                ecall";
        let config = SimConfig::builder().cores(8).build().unwrap();
        let program = assemble(src).unwrap();
        let mut sim = Simulation::new(config, &program).unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.exit_codes(), Some((0..8).collect()));
        let base = program.symbol("out").unwrap();
        for i in 0..8u64 {
            assert_eq!(sim.memory().read_u64(base + i * 8), 100 + i);
        }
        assert!(report.cycles > 0);
        assert!(report.total_retired() >= 8 * 8);
    }

    #[test]
    fn stalls_are_counted_with_slow_memory() {
        let src = "
            .data
            x: .dword 3
            .text
            _start:
                la t0, x
                ld t1, 0(t0)
                addi t2, t1, 1   # RAW right behind the load
                mv a0, t2
                li a7, 93
                ecall";
        let report = run_program(src, SimConfig::builder().cores(1).build().unwrap());
        assert_eq!(report.exit_codes(), Some(vec![4]));
        assert!(report.total_dep_stall_cycles() > 0, "{report}");
        assert!(report.cores[0].stats.dep_stalls >= 1);
    }

    #[test]
    fn deadlock_reported_for_impossible_waits() {
        // A program that never halts and only spins is NOT a deadlock
        // (the core stays active) — it hits the cycle limit instead.
        let src = "_start:\n j _start";
        let config = SimConfig::builder().max_cycles(10_000).build().unwrap();
        let program = assemble(src).unwrap();
        let mut sim = Simulation::new(config, &program).unwrap();
        match sim.run() {
            Err(RunError::CycleLimit { .. }) => {}
            other => panic!("expected cycle limit, got {other:?}"),
        }
    }

    #[test]
    fn stall_fast_forward_clamps_at_cycle_limit() {
        // The first instruction misses in the L1I, so the only core
        // stalls immediately and the orchestrator fast-forwards toward
        // the fill's completion time — which lies far past the tiny
        // cycle limit. The fast-forward must clamp at the limit instead
        // of leaving the cycle counter at the (never-simulated) event
        // time.
        let src = "_start:\n li a0, 0\n li a7, 93\n ecall";
        let config = SimConfig::builder().cores(1).max_cycles(2).build().unwrap();
        let program = assemble(src).unwrap();
        let mut sim = Simulation::new(config, &program).unwrap();
        match sim.run() {
            Err(RunError::CycleLimit { cycles }) => assert_eq!(cycles, 2),
            other => panic!("expected cycle limit, got {other:?}"),
        }
        assert_eq!(
            sim.cycle(),
            2,
            "fast-forward left the cycle counter past the configured limit"
        );
    }

    #[test]
    fn parallel_execute_matches_sequential() {
        // The hart-partitioning kernel (8 cores, disjoint dwords of one
        // line) exercises the byte-granular conflict detector: line
        // granularity would force a fallback every writing cycle.
        let src = "
            .data
            out: .zero 64
            .text
            _start:
                csrr t0, mhartid
                la t1, out
                slli t2, t0, 3
                add t1, t1, t2
                addi t3, t0, 100
                sd t3, 0(t1)
                mv a0, t0
                li a7, 93
                ecall";
        let program = assemble(src).unwrap();
        let mut digests = Vec::new();
        for jobs in [1, 2, 4] {
            let config = SimConfig::builder()
                .cores(8)
                .oracle(true)
                .jobs(jobs)
                .build()
                .unwrap();
            let mut sim = Simulation::new(config, &program).unwrap();
            let report = sim.run().unwrap();
            assert_eq!(report.exit_codes(), Some((0..8).collect()));
            digests.push((report.cycles, sim.determinism_digest()));
        }
        assert_eq!(digests[0], digests[1], "jobs=2 diverged from jobs=1");
        assert_eq!(digests[0], digests[2], "jobs=4 diverged from jobs=1");
    }

    #[test]
    fn parallel_conflict_falls_back_sequentially() {
        // Every core hammers the SAME dword, so same-cycle cross-core
        // write/write overlaps are guaranteed; the cycle must re-run
        // sequentially (counted) and still match the jobs=1 result.
        let src = "
            .data
            hot: .dword 0
            .text
            _start:
                csrr t0, mhartid
                la t1, hot
                li t2, 32
            loop:
                ld t3, 0(t1)
                add t3, t3, t0
                sd t3, 0(t1)
                addi t2, t2, -1
                bnez t2, loop
                li a0, 0
                li a7, 93
                ecall";
        let program = assemble(src).unwrap();
        let run = |jobs: usize| {
            let config = SimConfig::builder()
                .cores(4)
                .oracle(true)
                .jobs(jobs)
                .build()
                .unwrap();
            let mut sim = Simulation::new(config, &program).unwrap();
            sim.run().unwrap();
            (sim.determinism_digest(), sim.conflict_fallbacks())
        };
        let (seq_digest, seq_fallbacks) = run(1);
        assert_eq!(seq_fallbacks, 0, "jobs=1 never enters the parallel phase");
        let (par_digest, par_fallbacks) = run(4);
        assert_eq!(
            par_digest, seq_digest,
            "fallback changed observable results"
        );
        assert!(
            par_fallbacks > 0,
            "same-dword contention must trip the conflict detector"
        );
    }

    #[test]
    fn interleave_reduces_simulated_cycles() {
        let src = "
            _start:
                li t0, 2000
            loop:
                addi t0, t0, -1
                bnez t0, loop
                li a0, 0
                li a7, 93
                ecall";
        let base = run_program(src, SimConfig::builder().cores(1).build().unwrap());
        let batched = run_program(
            src,
            SimConfig::builder().cores(1).interleave(8).build().unwrap(),
        );
        assert_eq!(base.total_retired(), batched.total_retired());
        assert!(
            batched.cycles * 4 < base.cycles,
            "interleave should compress cycles: {} vs {}",
            batched.cycles,
            base.cycles
        );
    }

    #[test]
    fn trace_collects_misses() {
        let src = "
            .data
            x: .dword 1
            .text
            _start:
                la t0, x
                ld t1, 0(t0)
                mv a0, t1
                li a7, 93
                ecall";
        let config = SimConfig::builder().cores(1).trace(true).build().unwrap();
        let program = assemble(src).unwrap();
        let mut sim = Simulation::new(config, &program).unwrap();
        sim.run().unwrap();
        let trace = sim.trace().expect("tracing enabled");
        assert!(!trace.is_empty());
        assert!(trace.events().iter().any(|e| e.kind == MissKind::Load));
        assert!(trace.events().iter().any(|e| e.kind == MissKind::Ifetch));
    }

    #[test]
    fn trace_records_state_intervals() {
        let src = "
            .data
            x: .dword 1
            .text
            _start:
                la t0, x
                ld t1, 0(t0)
                addi t2, t1, 1   # RAW: guarantees a dep-stall interval
                li a7, 93
                li a0, 0
                ecall";
        let config = SimConfig::builder().cores(1).trace(true).build().unwrap();
        let program = assemble(src).unwrap();
        let mut sim = Simulation::new(config, &program).unwrap();
        sim.run().unwrap();
        let trace = sim.trace().unwrap();
        let states = trace.states();
        assert!(!states.is_empty());
        assert!(states
            .iter()
            .any(|s| s.state == crate::trace::STATE_DEP_STALL));
        assert!(states
            .iter()
            .any(|s| s.state == crate::trace::STATE_RUNNING));
        // Intervals for one core tile the timeline without overlap.
        let mut cursor = 0;
        for interval in states.iter().filter(|s| s.core == 0) {
            assert!(interval.start >= cursor, "overlap at {interval:?}");
            cursor = interval.end;
        }
    }

    #[test]
    fn cpi_stack_partition_and_drain_accounting() {
        // Core 0 exits immediately and drains; core 1 spins for a while.
        let src = "
            _start:
                csrr t0, mhartid
                bnez t0, spin
                li a0, 0
                li a7, 93
                ecall
            spin:
                li t1, 200
            loop:
                addi t1, t1, -1
                bnez t1, loop
                li a0, 1
                li a7, 93
                ecall";
        let config = SimConfig::builder().cores(2).build().unwrap();
        let program = assemble(src).unwrap();
        let mut sim = Simulation::new(config, &program).unwrap();
        let report = sim.run().unwrap();
        let attr = sim.attribution();
        for core in 0..2 {
            let dep: u64 = attr.dep()[core].iter().sum();
            assert_eq!(
                attr.active()[core] + dep + attr.fetch()[core] + attr.drained()[core],
                report.cycles,
                "core {core} CPI stack must partition the run"
            );
            assert_eq!(dep, report.cores[core].stats.dep_stall_cycles);
            assert_eq!(
                attr.fetch()[core],
                report.cores[core].stats.fetch_stall_cycles
            );
        }
        assert!(attr.drained()[0] > 0, "early-exit core must drain");
        assert_eq!(attr.drained()[1], 0, "last core to halt never drains");
    }

    #[test]
    fn determinism_end_to_end() {
        let src = "
            .data
            buf: .zero 4096
            .text
            _start:
                csrr t0, mhartid
                la t1, buf
                li t2, 64
            loop:
                slli t3, t0, 3
                add t3, t1, t3
                ld t4, 0(t3)
                addi t4, t4, 1
                sd t4, 0(t3)
                addi t0, t0, 4
                addi t2, t2, -1
                bnez t2, loop
                li a0, 0
                li a7, 93
                ecall";
        let run = || {
            let config = SimConfig::builder().cores(4).build().unwrap();
            let program = assemble(src).unwrap();
            let mut sim = Simulation::new(config, &program).unwrap();
            let report = sim.run().unwrap();
            let per_core: Vec<String> = report
                .cores
                .iter()
                .map(|c| format!("{:?}/{:?}/{:?}", c.stats, c.l1d, c.exit_code))
                .collect();
            (
                report.cycles,
                report.total_retired(),
                format!("{:?}{per_core:?}", report.hierarchy),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
