//! Deterministic parallel execute phase: a fixed worker pool stepping
//! disjoint core shards against a read-only pre-cycle memory snapshot.
//!
//! Each cycle the orchestrator clones the active cores into shard jobs,
//! sends all but the first to the pool, and steps shard 0 inline.
//! Workers step their cores through a [`BufferedMemory`] so every store
//! lands in a core-private buffer and every data access is logged.
//! After the join the orchestrator intersects the per-core access sets:
//! if no same-cycle cross-core ranges overlap, the buffers commit in
//! core-index order (reproducing the sequential schedule byte for
//! byte); any overlap discards the shard results and re-executes the
//! cycle sequentially, so the observable interleaving is always
//! bit-identical to `jobs = 1`.
//!
//! When host profiling is on ([`crate::config::SimConfig::profiling`]),
//! the orchestrator brackets these three stages as the profiler phases
//! `parallel/shard_step` (dispatch + step + join), `parallel/
//! conflict_check` (the access-set sweep below) and `parallel/commit`;
//! a discarded cycle additionally bumps the `parallel/
//! conflict_fallback` counter and re-runs under the `sequential` phase.
//! Per-shard state carries no profiling hooks on purpose: worker
//! threads must never observe the host clock, so all timing happens on
//! the orchestrator thread at the phase boundaries.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use coyote_isa::{sweep_conflicts, AccessInterval};
use coyote_iss::core::{Core, CoreState, DecodedText, StepEvent};
use coyote_iss::{BufferedMemory, MissRequest, SimError, SparseMemory, StoreBuffer};

/// Work for one shard of one cycle.
pub(crate) struct Job {
    /// Shared pre-cycle memory snapshot (read-only during the step).
    pub mem: Arc<SparseMemory>,
    /// Shared predecoded text segment.
    pub text: Arc<DecodedText>,
    /// The cycle being executed.
    pub cycle: u64,
    /// Instructions attempted per core this cycle.
    pub interleave: usize,
    /// `(core index, clone of the core)` pairs to step.
    pub cores: Vec<(usize, Core)>,
    /// Which shard this is, so results reassemble in shard order.
    pub shard: usize,
}

/// One stepped core clone plus everything observable it produced.
pub(crate) struct SteppedCore {
    /// Index of the core in the orchestrator's core vector.
    pub idx: usize,
    /// The stepped clone (replaces the original on commit).
    pub core: Core,
    /// Events in step order (drives oracle checks and stall scans).
    pub events: Vec<StepEvent>,
    /// The core's buffered stores and logged accesses.
    pub buf: StoreBuffer,
    /// L1 misses raised, in issue order.
    pub misses: Vec<MissRequest>,
    /// A fault, if the core faulted mid-shard.
    pub error: Option<SimError>,
}

/// One shard's results, tagged for reassembly.
pub(crate) struct ShardResult {
    /// The shard index from the [`Job`].
    pub shard: usize,
    /// Stepped cores in the job's order.
    pub cores: Vec<SteppedCore>,
}

/// Steps every core in the shard against the read-only snapshot.
/// Mirrors the sequential step-1 loop exactly: per core, up to
/// `interleave` attempts, stopping when the core leaves
/// [`CoreState::Active`] or faults.
pub(crate) fn step_shard(
    mem: &SparseMemory,
    text: &DecodedText,
    cycle: u64,
    interleave: usize,
    cores: Vec<(usize, Core)>,
) -> Vec<SteppedCore> {
    cores
        .into_iter()
        .map(|(idx, mut core)| {
            let mut view = BufferedMemory::new(mem);
            let mut misses = Vec::new();
            let mut events = Vec::new();
            let mut error = None;
            for _ in 0..interleave {
                if core.state() != CoreState::Active {
                    break;
                }
                match core.step(&mut view, text, cycle, &mut misses) {
                    Ok(event) => events.push(event),
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
            SteppedCore {
                idx,
                core,
                events,
                buf: view.into_buffer(),
                misses,
                error,
            }
        })
        .collect()
}

/// Runs a job and releases the snapshot handles *before* the result is
/// sent, so the orchestrator can reclaim exclusive memory access
/// (`Arc::get_mut`) as soon as the last shard result arrives.
fn run(job: Job) -> Vec<SteppedCore> {
    let Job {
        mem,
        text,
        cycle,
        interleave,
        cores,
        shard: _,
    } = job;
    let stepped = step_shard(&mem, &text, cycle, interleave, cores);
    drop(mem);
    drop(text);
    stepped
}

/// Whether any two cores' same-cycle accesses overlap with at least
/// one write — the condition under which the parallel step's results
/// could differ from the sequential schedule and must be discarded.
///
/// Granularity is byte ranges, not cache lines: HPC kernels routinely
/// partition one line across harts (disjoint dwords), which must not
/// force a fallback. Sweep: sort all `(start, end, core, write)`
/// intervals, keep the open set, and flag any overlap between
/// different cores where either side writes.
pub(crate) fn conflicting(stepped: &[SteppedCore]) -> bool {
    let mut intervals: Vec<AccessInterval> = Vec::new();
    for s in stepped {
        for &(addr, len) in s.buf.reads() {
            intervals.push(AccessInterval::new(addr, u64::from(len), s.idx, false));
        }
        for (addr, len) in s.buf.writes() {
            intervals.push(AccessInterval::new(addr, u64::from(len), s.idx, true));
        }
    }
    let mut open = Vec::new();
    sweep_conflicts(&mut intervals, &mut open)
}

/// Fixed pool of `jobs - 1` worker threads (shard 0 always runs inline
/// on the orchestrator thread). Workers live for the whole simulation;
/// dropping the pool disconnects their job channels and joins them.
pub(crate) struct WorkerPool {
    senders: Vec<mpsc::Sender<Job>>,
    results: mpsc::Receiver<ShardResult>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `jobs - 1` workers, each with a private job queue feeding
    /// one shared result channel.
    pub fn new(jobs: usize) -> WorkerPool {
        let (result_tx, results) = mpsc::channel();
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for _ in 1..jobs {
            let (tx, rx) = mpsc::channel::<Job>();
            let result_tx = result_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let shard = job.shard;
                    let cores = run(job);
                    if result_tx.send(ShardResult { shard, cores }).is_err() {
                        break;
                    }
                }
            }));
            senders.push(tx);
        }
        WorkerPool {
            senders,
            results,
            handles,
        }
    }

    /// Number of pool workers (`jobs - 1`).
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Sends `job` to pool worker `worker` (0-based).
    pub fn dispatch(&self, worker: usize, job: Job) {
        self.senders[worker]
            .send(job)
            .expect("worker thread exited early");
    }

    /// Blocks for one shard result; shards complete in any order.
    pub fn recv(&self) -> ShardResult {
        self.results.recv().expect("worker thread exited early")
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnecting the job channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_iss::MemoryIo;

    fn stepped_with(
        mem: &SparseMemory,
        idx: usize,
        access: impl FnOnce(&mut BufferedMemory),
    ) -> SteppedCore {
        let mut view = BufferedMemory::new(mem);
        access(&mut view);
        SteppedCore {
            idx,
            core: Core::new(idx, 0, &coyote_iss::core::CoreConfig::default()),
            events: Vec::new(),
            buf: view.into_buffer(),
            misses: Vec::new(),
            error: None,
        }
    }

    #[test]
    fn conflict_detection_is_byte_granular() {
        let mem = SparseMemory::new();
        // Disjoint dwords of one cache line: no conflict.
        let a = stepped_with(&mem, 0, |v| v.write_u64(0x100, 1));
        let b = stepped_with(&mem, 1, |v| v.write_u64(0x108, 2));
        assert!(!conflicting(&[a, b]));
        // Cross-core write/read overlap (even one byte): conflict.
        let a = stepped_with(&mem, 0, |v| v.write_u64(0x100, 1));
        let b = stepped_with(&mem, 1, |v| {
            let _ = v.read_u8(0x107);
        });
        assert!(conflicting(&[a, b]));
        // Cross-core write/write overlap: conflict.
        let a = stepped_with(&mem, 0, |v| v.write_u32(0x200, 1));
        let b = stepped_with(&mem, 1, |v| v.write_u32(0x202, 2));
        assert!(conflicting(&[a, b]));
        // Read/read overlap: no conflict.
        let a = stepped_with(&mem, 0, |v| {
            let _ = v.read_u64(0x100);
        });
        let b = stepped_with(&mem, 1, |v| {
            let _ = v.read_u64(0x100);
        });
        assert!(!conflicting(&[a, b]));
        // Same-core read-modify-write: no conflict with itself.
        let a = stepped_with(&mem, 0, |v| {
            let _ = v.read_u64(0x300);
            v.write_u64(0x300, 3);
        });
        assert!(!conflicting(&[a]));
    }

    #[test]
    fn pool_round_trips_a_job() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 2);
        let mem = Arc::new(SparseMemory::new());
        let text = Arc::new(DecodedText::from_program(
            &coyote_asm::assemble("_start:\n    li a7, 93\n    ecall").expect("assembles"),
        ));
        for worker in 0..2 {
            pool.dispatch(
                worker,
                Job {
                    mem: Arc::clone(&mem),
                    text: Arc::clone(&text),
                    cycle: 1,
                    interleave: 1,
                    cores: Vec::new(),
                    shard: worker + 1,
                },
            );
        }
        let mut shards: Vec<usize> = (0..2).map(|_| pool.recv().shard).collect();
        shards.sort_unstable();
        assert_eq!(shards, vec![1, 2]);
        // Workers dropped their snapshot handles with the job.
        drop(pool);
        assert_eq!(Arc::strong_count(&mem), 1);
        assert_eq!(Arc::strong_count(&text), 1);
    }

    #[test]
    fn step_shard_buffers_stores_and_reports_misses() {
        let mut mem = SparseMemory::new();
        let program = coyote_asm::assemble(
            "_start:
                li t0, 0x10000
                li t1, 42
                sd t1, 0(t0)
                li a7, 93
                ecall",
        )
        .expect("assembles");
        mem.load_program(&program);
        let text = DecodedText::from_program(&program);
        let config = coyote_iss::core::CoreConfig::default();
        let core = Core::new(0, program.entry(), &config);
        let mut cores = vec![(0, core)];
        // Step until the core halts; each call is one "cycle".
        for cycle in 1..200 {
            let stepped = step_shard(&mem, &text, cycle, 1, cores);
            let s = stepped.into_iter().next().expect("one core");
            assert!(s.error.is_none());
            // Stores stay out of shared memory until commit.
            s.buf.commit(&mut mem);
            if s.core.state() == CoreState::Halted(0) {
                assert_eq!(mem.read_u64(0x10000), 42);
                return;
            }
            cores = vec![(0, s.core)];
            // Pretend every miss is serviced instantly.
            for miss in &s.misses {
                cores[0].1.complete_fill(miss.line_addr, miss.kind, cycle);
            }
        }
        panic!("program did not halt");
    }
}
