//! Always-on flight recorder: a bounded ring of recent notable
//! orchestrator events.
//!
//! Post-mortem observability (metrics, attribution, the host profile)
//! evaporates on abnormal exits — a deadlock, an oracle divergence or
//! an interrupted run discards everything in flight. The flight
//! recorder keeps the last [`FLIGHT_CAPACITY`] notable events in a
//! preallocated ring at O(1) cost per event (every [`FlightKind`] is
//! `Copy`, so recording never allocates), and the orchestrator dumps
//! the tail into `crash.json`, the deadlock report, and the oracle
//! divergence context.
//!
//! Determinism: the recorder is pure observation. Events are derived
//! from simulated state only (no host time, no hash order), recording
//! mutates nothing the simulation reads, and the ring's content is a
//! pure function of the simulated schedule — so two legal schedules of
//! the same run produce identical tails, and the recorder being
//! always-on cannot perturb digests or metrics (the `status_invariance`
//! proptests cover the whole introspection plane).

use std::fmt;

use coyote_iss::core::CoreState;
use coyote_iss::{FuseStop, MissKind};
use coyote_telemetry::JsonValue;

/// Events retained in the ring; older events roll off.
pub const FLIGHT_CAPACITY: usize = 256;

/// Stable lower-case name of a core state, used in status snapshots,
/// crash dumps and flight-event rendering.
#[must_use]
pub fn state_name(state: CoreState) -> &'static str {
    match state {
        CoreState::Active => "active",
        CoreState::StalledDep => "stalled_dep",
        CoreState::StalledFetch => "stalled_fetch",
        CoreState::Halted(_) => "halted",
    }
}

/// Stable lower-snake name of a fused-run stop reason.
#[must_use]
pub fn fuse_stop_name(stop: FuseStop) -> &'static str {
    match stop {
        FuseStop::RunEnd => "run_end",
        FuseStop::TooShort => "too_short",
        FuseStop::ScoreboardBusy => "scoreboard_busy",
        FuseStop::PendingFill => "pending_fill",
        FuseStop::LineNotResident => "line_not_resident",
        FuseStop::BaseWritten => "base_written",
        FuseStop::TextStore => "text_store",
    }
}

fn miss_kind_name(kind: MissKind) -> &'static str {
    match kind {
        MissKind::Ifetch => "ifetch",
        MissKind::Load => "load",
        MissKind::Store => "store",
        MissKind::Writeback => "writeback",
    }
}

/// What happened. Every variant is `Copy` so recording is a pair of
/// stores into the preallocated ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A hierarchy completion was delivered to a core.
    Completion {
        /// Receiving core.
        core: usize,
        /// Miss kind the completion serviced.
        kind: MissKind,
        /// Line address filled.
        line: u64,
    },
    /// A completion transitioned a stalled core back to active.
    Wake {
        /// The woken core.
        core: usize,
    },
    /// A core left `Active` for a stall state.
    Stall {
        /// The stalled core.
        core: usize,
        /// The state it entered.
        state: CoreState,
        /// PC of the blocked instruction.
        pc: u64,
    },
    /// A core halted.
    Halt {
        /// The halted core.
        core: usize,
        /// Its exit code.
        code: i64,
    },
    /// A multi-core fused window stopped because a core failed to
    /// re-arm its run.
    WindowAbort {
        /// The core that failed validation.
        core: usize,
        /// Its stop reason.
        stop: FuseStop,
    },
    /// A fused window stopped on a cross-core access conflict.
    WindowConflict,
    /// The parallel execute phase discarded its speculative cycle and
    /// re-ran sequentially.
    ConflictFallback,
    /// A text-segment store revoked the disjointness certificate.
    CertificateRevoked,
    /// A text-segment store invalidated predecoded entries.
    TextInvalidate {
        /// First patched byte address.
        addr: u64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Simulated cycle the event happened at.
    pub cycle: u64,
    /// What happened.
    pub kind: FlightKind,
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: ", self.cycle)?;
        match self.kind {
            FlightKind::Completion { core, kind, line } => {
                write!(
                    f,
                    "completion to core {core} ({}, line {line:#x})",
                    miss_kind_name(kind)
                )
            }
            FlightKind::Wake { core } => write!(f, "core {core} woken"),
            FlightKind::Stall { core, state, pc } => {
                write!(f, "core {core} {} at pc {pc:#x}", state_name(state))
            }
            FlightKind::Halt { core, code } => write!(f, "core {core} halted (exit {code})"),
            FlightKind::WindowAbort { core, stop } => {
                write!(
                    f,
                    "fused window abort: core {core} rearm failed ({})",
                    fuse_stop_name(stop)
                )
            }
            FlightKind::WindowConflict => write!(f, "fused window cross-core conflict"),
            FlightKind::ConflictFallback => write!(f, "parallel conflict fallback"),
            FlightKind::CertificateRevoked => write!(f, "disjointness certificate revoked"),
            FlightKind::TextInvalidate { addr } => {
                write!(f, "text store invalidated predecode at {addr:#x}")
            }
        }
    }
}

impl FlightEvent {
    /// The event as a structured JSON object (`cycle`, `kind`,
    /// variant-specific fields, and the rendered `text`).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let base = JsonValue::object().with("cycle", self.cycle);
        let with_kind = |j: JsonValue, kind: &str| j.with("kind", kind);
        let obj = match self.kind {
            FlightKind::Completion { core, kind, line } => with_kind(base, "completion")
                .with("core", core)
                .with("miss_kind", miss_kind_name(kind))
                .with("line", line),
            FlightKind::Wake { core } => with_kind(base, "wake").with("core", core),
            FlightKind::Stall { core, state, pc } => with_kind(base, "stall")
                .with("core", core)
                .with("state", state_name(state))
                .with("pc", pc),
            FlightKind::Halt { core, code } => with_kind(base, "halt")
                .with("core", core)
                .with("exit_code", code),
            FlightKind::WindowAbort { core, stop } => with_kind(base, "window_abort")
                .with("core", core)
                .with("stop", fuse_stop_name(stop)),
            FlightKind::WindowConflict => with_kind(base, "window_conflict"),
            FlightKind::ConflictFallback => with_kind(base, "conflict_fallback"),
            FlightKind::CertificateRevoked => with_kind(base, "certificate_revoked"),
            FlightKind::TextInvalidate { addr } => {
                with_kind(base, "text_invalidate").with("addr", addr)
            }
        };
        obj.with("text", self.to_string())
    }
}

/// The bounded ring itself.
#[derive(Debug)]
pub struct FlightRecorder {
    /// Ring storage; grows to `FLIGHT_CAPACITY` then stays put.
    events: Vec<FlightEvent>,
    /// Next write position once the ring is full.
    head: usize,
    /// Events ever recorded (including rolled-off ones).
    total: u64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// An empty recorder with capacity reserved up front, so recording
    /// never allocates.
    #[must_use]
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            events: Vec::with_capacity(FLIGHT_CAPACITY),
            head: 0,
            total: 0,
        }
    }

    /// Records one event: O(1), no allocation.
    pub fn record(&mut self, cycle: u64, kind: FlightKind) {
        let event = FlightEvent { cycle, kind };
        if self.events.len() < FLIGHT_CAPACITY {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % FLIGHT_CAPACITY;
        }
        self.total += 1;
    }

    /// Events ever recorded, including ones that rolled off the ring.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn tail(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// The last `n` retained events, oldest first, rendered as display
    /// strings — the shape the oracle divergence trail carries.
    #[must_use]
    pub fn tail_lines(&self, n: usize) -> Vec<String> {
        let tail = self.tail();
        let skip = tail.len().saturating_sub(n);
        tail[skip..].iter().map(FlightEvent::to_string).collect()
    }

    /// The whole retained tail as a JSON array (oldest first), plus
    /// the drop count, for `crash.json`.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let tail = self.tail();
        let dropped = self.total - tail.len() as u64;
        JsonValue::object()
            .with("total", self.total)
            .with("dropped", dropped)
            .with(
                "events",
                JsonValue::Array(tail.iter().map(FlightEvent::to_json).collect()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_rolls_oldest_events_off() {
        let mut rec = FlightRecorder::new();
        for i in 0..(FLIGHT_CAPACITY as u64 + 5) {
            rec.record(i, FlightKind::Wake { core: 0 });
        }
        let tail = rec.tail();
        assert_eq!(tail.len(), FLIGHT_CAPACITY);
        assert_eq!(tail[0].cycle, 5);
        assert_eq!(tail[FLIGHT_CAPACITY - 1].cycle, FLIGHT_CAPACITY as u64 + 4);
        assert_eq!(rec.total(), FLIGHT_CAPACITY as u64 + 5);
        let json = rec.to_json();
        assert_eq!(json.get("dropped").and_then(JsonValue::as_u64), Some(5));
    }

    #[test]
    fn tail_lines_takes_the_newest_events() {
        let mut rec = FlightRecorder::new();
        rec.record(1, FlightKind::ConflictFallback);
        rec.record(2, FlightKind::Halt { core: 3, code: 0 });
        rec.record(3, FlightKind::CertificateRevoked);
        let lines = rec.tail_lines(2);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("core 3 halted"));
        assert!(lines[1].contains("certificate revoked"));
    }

    #[test]
    fn events_render_their_payload() {
        let ev = FlightEvent {
            cycle: 42,
            kind: FlightKind::WindowAbort {
                core: 1,
                stop: FuseStop::PendingFill,
            },
        };
        let text = ev.to_string();
        assert!(text.contains("cycle 42"));
        assert!(text.contains("pending_fill"));
        let json = ev.to_json();
        assert_eq!(
            json.get("kind").and_then(JsonValue::as_str),
            Some("window_abort")
        );
        assert_eq!(
            json.get("stop").and_then(JsonValue::as_str),
            Some("pending_fill")
        );
    }
}
