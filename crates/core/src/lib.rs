//! Coyote: an execution-driven RISC-V multicore simulator for HPC
//! design space exploration — a from-scratch Rust reproduction of
//! *"Coyote: An Open Source Simulation Tool to Enable RISC-V in HPC"*
//! (Perez, Fell, Davis — DATE 2021).
//!
//! Coyote couples a functional RISC-V simulator with L1 cache models
//! (the paper uses Spike; here [`coyote_iss`]) to an event-driven model
//! of the rest of the memory hierarchy — banked L2, NoC, memory
//! controllers (the paper uses Sparta; here [`coyote_mem`]) — through an
//! Orchestrator ([`Simulation`]) that executes one instruction per
//! active core per cycle, stalls cores on RAW dependencies against
//! in-flight misses, and wakes them when the hierarchy services those
//! misses.
//!
//! # Quick start
//!
//! ```
//! use coyote::{SimConfig, Simulation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = coyote_asm::assemble(
//!     "_start:
//!         csrr t0, mhartid     # partition work by hart
//!         addi a0, t0, 10
//!         li a7, 93
//!         ecall                # exit(10 + hartid)",
//! )?;
//! let config = SimConfig::builder().cores(2).build()?;
//! let mut sim = Simulation::new(config, &program)?;
//! let report = sim.run()?;
//! assert_eq!(report.exit_codes(), Some(vec![10, 11]));
//! println!("{report}");
//! # Ok(())
//! # }
//! ```
//!
//! See the `coyote-kernels` crate for the paper's HPC kernels (matmul,
//! SpMV, stencil) and the `coyote-bench` crate for the harness that
//! regenerates the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod config;
pub mod flight;
pub mod metrics;
mod par;
pub mod report;
pub mod sim;
pub mod trace;

pub use attr::{StallAttribution, StallLink};
pub use config::{ConfigError, ProfMode, SimConfig, SimConfigBuilder};
pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use metrics::{
    chrome_trace_json, host_profile_json, metrics_csv, metrics_json, SCHEMA_VERSION,
};
pub use report::{CoreReport, Report};
pub use sim::{RunError, Simulation, StallInfo};
pub use trace::{Trace, TraceEvent};

// Re-export the building blocks so downstream users need one import.
pub use coyote_iss::{CacheConfig, CoreConfig, CoreSnapshot, SparseMemory};
pub use coyote_mem::hierarchy::L2Sharing;
pub use coyote_mem::l2::L2Config;
pub use coyote_mem::mapping::MappingPolicy;
pub use coyote_mem::mc::McConfig;
pub use coyote_mem::noc::NocModel;
pub use coyote_oracle::{Delta, Divergence, LockstepChecker};
pub use coyote_telemetry::{
    parse_json, Histogram, HostProf, JsonValue, Stage, StatusEmitter, StatusSnapshot,
    TelemetrySink, TimeSeries,
};
