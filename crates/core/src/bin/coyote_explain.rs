//! `coyote-explain`: explain where the cycles went.
//!
//! Reads a metrics JSON document written by `coyote-sim --metrics-out`
//! (schema version 2 or later) and prints the causal stall attribution:
//! one CPI-stack row per core, then the top-K critical-PC table with
//! per-stage blame.
//!
//! ```text
//! coyote-explain metrics.json [options]
//!
//!   --top N   show at most N critical PCs (default: all exported)
//!   --check   verify the invariants instead of pretty-printing alone:
//!             every core's CPI stack must partition the run's cycles
//!             and the critical-PC table must be non-empty; exit 1 on
//!             violation (used as the CI smoke gate)
//! ```

use std::process::ExitCode;

use coyote::JsonValue;

struct Options {
    path: String,
    top: Option<usize>,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut top = None;
    let mut check = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                let v = args.next().ok_or("--top needs a value")?;
                top = Some(v.parse().map_err(|e| format!("--top: {e}"))?);
            }
            "--check" => check = true,
            "--help" | "-h" => {
                println!("usage: coyote-explain <metrics.json> [options]");
                println!("  --top N   show at most N critical PCs");
                println!(
                    "  --check   verify CPI-stack partition + non-empty top-K; exit 1 on failure"
                );
                std::process::exit(0);
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        path: path.ok_or("no metrics file given (try --help)")?,
        top,
        check,
    })
}

/// Walks `path` into the document, with a readable error on absence.
fn get<'a>(doc: &'a JsonValue, path: &[&str]) -> Result<&'a JsonValue, String> {
    let mut cur = doc;
    for key in path {
        cur = cur
            .get(key)
            .ok_or_else(|| format!("metrics document missing `{}`", path.join(".")))?;
    }
    Ok(cur)
}

fn as_u64(value: &JsonValue, what: &str) -> Result<u64, String> {
    value
        .as_u64()
        .ok_or_else(|| format!("`{what}` is not an unsigned integer"))
}

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn run(options: &Options) -> Result<(), String> {
    let text =
        std::fs::read_to_string(&options.path).map_err(|e| format!("{}: {e}", options.path))?;
    let doc = coyote::parse_json(&text).map_err(|e| format!("{}: {e}", options.path))?;

    let schema = as_u64(get(&doc, &["schema_version"])?, "schema_version")?;
    if schema < 2 {
        return Err(format!(
            "schema_version {schema} predates stall attribution (need >= 2); \
             regenerate the metrics with a current coyote-sim"
        ));
    }
    let cycles = as_u64(get(&doc, &["report", "cycles"])?, "report.cycles")?;
    let report_cores = get(&doc, &["report", "cores"])?
        .as_array()
        .ok_or("`report.cores` is not an array")?;
    let attribution = get(&doc, &["attribution"])?;
    let per_core = get(attribution, &["per_core"])?
        .as_array()
        .ok_or("`attribution.per_core` is not an array")?;
    let top_pcs = get(attribution, &["top_pcs"])?
        .as_array()
        .ok_or("`attribution.top_pcs` is not an array")?;

    println!(
        "{}: {} cores, {} cycles",
        options.path,
        per_core.len(),
        cycles
    );
    println!();

    // Blame columns come from the document itself so the binary keeps
    // working if categories are added in a later schema revision.
    let blame_keys: Vec<String> = per_core
        .first()
        .and_then(|row| row.get("dep_stall"))
        .and_then(coyote::JsonValue::keys)
        .map(|keys| keys.iter().map(|&k| k.to_owned()).collect())
        .unwrap_or_default();

    println!("Per-core CPI stack (% of {cycles} cycles)");
    let mut header = format!("{:>4} {:>8} {:>7}", "core", "cpi", "active");
    for key in &blame_keys {
        header.push_str(&format!(" {:>8}", format!("d:{key}")));
    }
    header.push_str(&format!(" {:>7} {:>7}", "fetch", "drained"));
    println!("{header}");
    let mut partition_ok = true;
    for (idx, row) in per_core.iter().enumerate() {
        let field = |k: &str| -> Result<u64, String> {
            as_u64(get(row, &[k])?, &format!("attribution.per_core[{idx}].{k}"))
        };
        let core = field("core")?;
        let active = field("active")?;
        let fetch = field("fetch_stall")?;
        let drained = field("drained")?;
        let dep = get(row, &["dep_stall"])?;
        let mut dep_cols = Vec::new();
        let mut dep_total = 0;
        for key in &blame_keys {
            let v = as_u64(get(dep, &[key])?, &format!("dep_stall.{key}"))?;
            dep_total += v;
            dep_cols.push(v);
        }
        let retired = report_cores
            .get(idx)
            .and_then(|c| c.get("retired"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let busy = cycles - drained.min(cycles);
        let cpi = if retired == 0 {
            f64::NAN
        } else {
            busy as f64 / retired as f64
        };
        let mut line = format!("{core:>4} {cpi:>8.3} {:>6.1}%", percent(active, cycles));
        for v in &dep_cols {
            line.push_str(&format!(" {:>7.1}%", percent(*v, cycles)));
        }
        line.push_str(&format!(
            " {:>6.1}% {:>6.1}%",
            percent(fetch, cycles),
            percent(drained, cycles)
        ));
        println!("{line}");
        let total = active + dep_total + fetch + drained;
        if total != cycles {
            partition_ok = false;
            eprintln!("coyote-explain: core {core}: CPI stack sums to {total}, expected {cycles}");
        }
    }

    println!();
    let shown = options.top.unwrap_or(top_pcs.len()).min(top_pcs.len());
    println!(
        "Top critical PCs ({} shown of {} exported; cycles = attributed stall time)",
        shown,
        top_pcs.len()
    );
    println!(
        "{:>4} {:>14} {:>10} {:>7} {:>9} {:>6}  blocked regs",
        "rank", "pc", "cycles", "count", "dominant", "error"
    );
    for (rank, entry) in top_pcs.iter().take(shown).enumerate() {
        let pc = get(entry, &["pc"])?.as_str().unwrap_or("?");
        let ecycles = as_u64(get(entry, &["cycles"])?, "top_pcs.cycles")?;
        let count = as_u64(get(entry, &["count"])?, "top_pcs.count")?;
        let error = as_u64(get(entry, &["error"])?, "top_pcs.error")?;
        let dominant = get(entry, &["dominant"])?.as_str().unwrap_or("?");
        let regs = get(entry, &["regs"])?.as_str().unwrap_or("");
        println!(
            "{:>4} {pc:>14} {ecycles:>10} {count:>7} {dominant:>9} {error:>6}  {regs}",
            rank + 1
        );
    }

    if options.check {
        if !partition_ok {
            return Err("CPI-stack partition check failed".to_owned());
        }
        if top_pcs.is_empty() {
            return Err(
                "critical-PC table is empty (was the run telemetry-enabled and stalling?)"
                    .to_owned(),
            );
        }
        println!();
        println!(
            "check: OK ({} cores partition {} cycles; {} critical PCs)",
            per_core.len(),
            cycles,
            top_pcs.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("coyote-explain: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("coyote-explain: {message}");
            ExitCode::FAILURE
        }
    }
}
