//! `coyote-top`: watch a running simulation.
//!
//! Tails the JSON-lines status stream written by
//! `coyote-sim --status-out FILE` and renders a live dashboard:
//! per-core utilization bars, the CPI stack each core spent the last
//! interval on, fused-path coverage, simulation speed and the ETA.
//!
//! ```text
//! coyote-top status.jsonl [options]
//!
//!   --once        render the latest snapshot once and exit
//!   --check       validate the stream instead of rendering: every
//!                 snapshot must carry the pinned keys and the sequence
//!                 numbers must increase strictly; exit 1 on violation
//!                 (used with --once as the CI smoke gate)
//!   --interval N  milliseconds between refreshes (default 1000)
//! ```
//!
//! The watcher is read-only and host-side: it never touches the
//! simulation, and the stream it reads is excluded from the determinism
//! digest, so watching a run cannot change its result.

use std::process::ExitCode;

use coyote::{parse_json, JsonValue};

/// Width of a utilization bar, in character cells.
const BAR_WIDTH: usize = 24;

/// Top-level keys every snapshot line must carry (pinned by the
/// status-schema golden test on the writer side).
const REQUIRED_KEYS: &[&str] = &[
    "schema_version",
    "seq",
    "cycle",
    "max_cycles",
    "retired",
    "elapsed_seconds",
    "host_mips",
    "cycles_per_sec",
    "eta_seconds",
    "block_hit_rate",
    "conflict_fallbacks",
    "certificate_active",
    "event_pops",
    "halted",
    "cores",
];

/// Keys every per-core entry must carry.
const REQUIRED_CORE_KEYS: &[&str] = &["core", "state", "pc", "retired", "cpi"];

/// The CPI-stack columns, in render order.
const CPI_KEYS: &[&str] = &["active", "dep_stall", "fetch_stall", "drained"];

struct Options {
    path: String,
    once: bool,
    check: bool,
    interval_ms: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut once = false;
    let mut check = false;
    let mut interval_ms = 1000u64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--check" => check = true,
            "--interval" => {
                let v = args.next().ok_or("--interval needs a value")?;
                interval_ms = v.parse().map_err(|e| format!("--interval: {e}"))?;
                if interval_ms == 0 {
                    return Err("--interval must be at least 1 millisecond".to_owned());
                }
            }
            "--help" | "-h" => {
                println!("usage: coyote-top <status.jsonl> [options]");
                println!("  --once        render the latest snapshot once and exit");
                println!("  --check       validate the stream; exit 1 on violation");
                println!("  --interval N  milliseconds between refreshes (default 1000)");
                std::process::exit(0);
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        path: path.ok_or("no status file given (try --help)")?,
        once,
        check,
        interval_ms,
    })
}

/// Reads and parses every non-empty line of the status file.
fn read_stream(path: &str) -> Result<Vec<JsonValue>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut snapshots = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            parse_json(line).map_err(|e| format!("{path}:{}: not valid JSON: {e}", i + 1))?;
        snapshots.push(value);
    }
    Ok(snapshots)
}

/// Validates the whole stream: pinned keys on every line, strictly
/// increasing sequence numbers, per-core entries complete.
fn check_stream(snapshots: &[JsonValue]) -> Result<(), String> {
    if snapshots.is_empty() {
        return Err("status stream is empty".to_owned());
    }
    let mut last_seq = None;
    for snap in snapshots {
        for key in REQUIRED_KEYS {
            if snap.get(key).is_none() {
                return Err(format!("snapshot missing pinned key `{key}`"));
            }
        }
        let seq = snap
            .get("seq")
            .and_then(JsonValue::as_u64)
            .ok_or("`seq` is not an unsigned integer")?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!(
                    "sequence numbers not increasing: {prev} then {seq}"
                ));
            }
        }
        last_seq = Some(seq);
        let cores = snap
            .get("cores")
            .and_then(JsonValue::as_array)
            .ok_or("`cores` is not an array")?;
        for core in cores {
            for key in REQUIRED_CORE_KEYS {
                if core.get(key).is_none() {
                    return Err(format!("core entry missing pinned key `{key}`"));
                }
            }
            let cpi = core.get("cpi").ok_or("core entry missing `cpi`")?;
            for key in CPI_KEYS {
                if cpi.get(key).and_then(JsonValue::as_u64).is_none() {
                    return Err(format!("cpi stack missing column `{key}`"));
                }
            }
        }
    }
    Ok(())
}

fn get_u64(snap: &JsonValue, key: &str) -> u64 {
    snap.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn get_f64(snap: &JsonValue, key: &str) -> f64 {
    snap.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

/// `#`-bar of `frac` (0..=1) over [`BAR_WIDTH`] cells.
fn bar(frac: f64) -> String {
    let filled = (frac.clamp(0.0, 1.0) * BAR_WIDTH as f64).round() as usize;
    let mut out = String::with_capacity(BAR_WIDTH);
    for i in 0..BAR_WIDTH {
        out.push(if i < filled { '#' } else { '.' });
    }
    out
}

fn format_eta(seconds: f64) -> String {
    if seconds <= 0.0 {
        return "--".to_owned();
    }
    let total = seconds.round() as u64;
    let (h, m, s) = (total / 3600, (total % 3600) / 60, total % 60);
    if h > 0 {
        format!("{h}h{m:02}m{s:02}s")
    } else if m > 0 {
        format!("{m}m{s:02}s")
    } else {
        format!("{s}s")
    }
}

/// Renders the dashboard for the latest snapshot.
fn render(snap: &JsonValue) -> String {
    let mut out = String::new();
    let cycle = get_u64(snap, "cycle");
    let max_cycles = get_u64(snap, "max_cycles");
    let progress = if max_cycles == 0 {
        0.0
    } else {
        cycle as f64 / max_cycles as f64
    };
    out.push_str(&format!(
        "coyote-top  seq {}  cycle {cycle} / {max_cycles} ({:.1}%)  elapsed {:.1}s\n",
        get_u64(snap, "seq"),
        progress * 100.0,
        get_f64(snap, "elapsed_seconds"),
    ));
    let cores_total = snap
        .get("cores")
        .and_then(JsonValue::as_array)
        .map_or(0, <[JsonValue]>::len) as u64;
    let done = cores_total > 0 && get_u64(snap, "halted") == cores_total;
    out.push_str(&format!(
        "speed {:.2} Mcycle/s  {:.2} MIPS  retired {}  eta {}\n",
        get_f64(snap, "cycles_per_sec") / 1.0e6,
        get_f64(snap, "host_mips"),
        get_u64(snap, "retired"),
        if done {
            "done".to_owned()
        } else {
            format_eta(get_f64(snap, "eta_seconds"))
        },
    ));
    out.push_str(&format!(
        "fused coverage {:.1}%  conflict fallbacks {}  certificate {}  event pops {}  halted {}\n",
        get_f64(snap, "block_hit_rate") * 100.0,
        get_u64(snap, "conflict_fallbacks"),
        if matches!(snap.get("certificate_active"), Some(JsonValue::Bool(true))) {
            "active"
        } else {
            "off"
        },
        get_u64(snap, "event_pops"),
        get_u64(snap, "halted"),
    ));
    out.push('\n');
    let cores = snap
        .get("cores")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[]);
    for core in cores {
        let cpi = core.get("cpi");
        let stack: Vec<u64> = CPI_KEYS
            .iter()
            .map(|k| {
                cpi.and_then(|c| c.get(k))
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0)
            })
            .collect();
        let total: u64 = stack.iter().sum();
        let active_frac = if total == 0 {
            0.0
        } else {
            stack[0] as f64 / total as f64
        };
        out.push_str(&format!(
            "core {:>3} [{}] {:>5.1}%  {:<13} pc {:#010x}  retired {:>10}",
            get_u64(core, "core"),
            bar(active_frac),
            active_frac * 100.0,
            core.get("state").and_then(JsonValue::as_str).unwrap_or("?"),
            get_u64(core, "pc"),
            get_u64(core, "retired"),
        ));
        if total > 0 {
            out.push_str("  cpi ");
            let parts: Vec<String> = CPI_KEYS
                .iter()
                .zip(&stack)
                .map(|(k, v)| format!("{k} {:.0}%", *v as f64 / total as f64 * 100.0))
                .collect();
            out.push_str(&parts.join(" / "));
        }
        out.push('\n');
    }
    out
}

fn run(options: &Options) -> Result<ExitCode, String> {
    loop {
        let snapshots = read_stream(&options.path)?;
        if options.check {
            check_stream(&snapshots)?;
        }
        match snapshots.last() {
            Some(last) => {
                if !options.once {
                    // Clear screen + home, like top(1).
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render(last));
            }
            None if options.once => return Err("status stream is empty".to_owned()),
            None => {}
        }
        if options.once {
            return Ok(ExitCode::SUCCESS);
        }
        std::thread::sleep(std::time::Duration::from_millis(options.interval_ms));
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("coyote-top: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("coyote-top: {message}");
            ExitCode::FAILURE
        }
    }
}
