//! `coyote-trace-stats`: summarize a Coyote-produced Paraver trace
//! without the Paraver GUI.
//!
//! ```text
//! coyote-trace-stats trace.prv [--top N] [--json]
//! ```
//!
//! Prints per-core state breakdowns (running / dependency-stall /
//! fetch-stall fractions), miss counts by kind, the hottest cache
//! lines and the busiest 10%-of-runtime window — the first-order
//! analyses the paper describes doing in Paraver ("identifying access
//! patterns or analyzing how and when the L2 banks, NoC, or memory are
//! stressed"). With `--json` the same summary is emitted as a JSON
//! document (same writer as `coyote-sim --metrics-out`).

use std::collections::BTreeMap;
use std::process::ExitCode;

use coyote::trace::{STATE_DEP_STALL, STATE_FETCH_STALL, STATE_RUNNING};
use coyote::{JsonValue, Trace, SCHEMA_VERSION};
use coyote_iss::MissKind;

/// Per-core running / dep-stall / fetch-stall cycle totals.
struct CoreBreakdown {
    running: u64,
    dep: u64,
    fetch: u64,
}

struct Summary {
    events: usize,
    horizon: u64,
    cores: Vec<CoreBreakdown>,
    miss_mix: Vec<(&'static str, usize)>,
    hottest: Vec<(u64, usize)>,
    /// Critical PCs: miss count per instruction address (top-N; PC 0 —
    /// synthetic traffic and pre-PC traces — is excluded).
    hottest_pcs: Vec<(u64, usize)>,
    /// (start, end, miss count) of the busiest 10%-of-horizon window.
    busiest: Option<(u64, u64, usize)>,
}

fn summarize(trace: &Trace, top: usize) -> Summary {
    let horizon = trace
        .events()
        .iter()
        .map(|e| e.cycle)
        .chain(trace.states().iter().map(|s| s.end))
        .max()
        .unwrap_or(0)
        .max(1);

    // The header core count is authoritative: cores that never missed
    // or stalled must still show up (as all-zero rows) rather than
    // silently vanishing from the report. Record-derived indices are
    // kept as a lower bound for traces from older writers.
    let derived = trace
        .states()
        .iter()
        .map(|s| s.core)
        .chain(trace.events().iter().map(|e| e.core))
        .max()
        .map_or(0, |c| c + 1);
    let core_count = trace.cores().max(derived);

    let cores = (0..core_count)
        .map(|core| {
            let mut breakdown = CoreBreakdown {
                running: 0,
                dep: 0,
                fetch: 0,
            };
            for interval in trace.states().iter().filter(|s| s.core == core) {
                let span = interval.end - interval.start;
                match interval.state {
                    s if s == STATE_RUNNING => breakdown.running += span,
                    s if s == STATE_DEP_STALL => breakdown.dep += span,
                    s if s == STATE_FETCH_STALL => breakdown.fetch += span,
                    _ => {}
                }
            }
            breakdown
        })
        .collect();

    let miss_mix = [
        (MissKind::Ifetch, "instruction_fetch"),
        (MissKind::Load, "data_load"),
        (MissKind::Store, "data_store"),
        (MissKind::Writeback, "writeback"),
    ]
    .into_iter()
    .map(|(kind, label)| {
        (
            label,
            trace.events().iter().filter(|e| e.kind == kind).count(),
        )
    })
    .collect();

    // Keyed by address so ties in the hotness sort (and therefore the
    // emitted JSON) are byte-stable across runs.
    let mut per_line: BTreeMap<u64, usize> = BTreeMap::new();
    for event in trace.events() {
        *per_line.entry(event.line_addr).or_default() += 1;
    }
    let mut hot: Vec<(u64, usize)> = per_line.into_iter().collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hot.truncate(top);

    // Same recipe keyed by the missing instruction's PC (the causal
    // anchor carried by 12-field traces; 0 in older 10-field traces).
    let mut per_pc: BTreeMap<u64, usize> = BTreeMap::new();
    for event in trace.events().iter().filter(|e| e.pc != 0) {
        *per_pc.entry(event.pc).or_default() += 1;
    }
    let mut hot_pcs: Vec<(u64, usize)> = per_pc.into_iter().collect();
    hot_pcs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hot_pcs.truncate(top);

    let window = (horizon / 10).max(1);
    let mut busiest = None;
    let mut best_count = 0usize;
    let mut cycles: Vec<u64> = trace.events().iter().map(|e| e.cycle).collect();
    cycles.sort_unstable();
    let mut lo = 0usize;
    for hi in 0..cycles.len() {
        while cycles[hi] - cycles[lo] > window {
            lo += 1;
        }
        if hi - lo + 1 > best_count {
            best_count = hi - lo + 1;
            busiest = Some((cycles[lo], cycles[lo] + window, hi - lo + 1));
        }
    }

    Summary {
        events: trace.len(),
        horizon,
        cores,
        miss_mix,
        hottest: hot,
        hottest_pcs: hot_pcs,
        busiest,
    }
}

fn print_text(summary: &Summary) {
    println!(
        "trace: {} events over {} cycles",
        summary.events, summary.horizon
    );

    if !summary.cores.is_empty() {
        println!("\nper-core time breakdown:");
        println!("  core  running%  dep-stall%  fetch-stall%");
        for (core, b) in summary.cores.iter().enumerate() {
            let total = (b.running + b.dep + b.fetch).max(1) as f64;
            println!(
                "  {core:>4}  {:>7.1}%  {:>9.1}%  {:>11.1}%",
                100.0 * b.running as f64 / total,
                100.0 * b.dep as f64 / total,
                100.0 * b.fetch as f64 / total,
            );
        }
    }

    println!("\nmiss mix:");
    for (label, count) in &summary.miss_mix {
        println!("  {:<18} {count}", label.replace('_', " "));
    }

    println!("\nhottest lines:");
    for (addr, count) in &summary.hottest {
        println!("  {addr:#012x}  {count} misses");
    }

    if !summary.hottest_pcs.is_empty() {
        println!("\ncritical PCs (most misses issued):");
        for (pc, count) in &summary.hottest_pcs {
            println!("  {pc:#012x}  {count} misses");
        }
    }

    if let Some((start, end, count)) = summary.busiest {
        println!(
            "\nbusiest window: {} misses in cycles {}..{} ({:.1}% of all misses in 10% of time)",
            count,
            start,
            end,
            100.0 * count as f64 / summary.events.max(1) as f64
        );
    }
}

fn to_json(summary: &Summary) -> JsonValue {
    let per_core = summary
        .cores
        .iter()
        .enumerate()
        .map(|(core, b)| {
            let total = (b.running + b.dep + b.fetch).max(1) as f64;
            JsonValue::object()
                .with("core", core)
                .with("running_cycles", b.running)
                .with("dep_stall_cycles", b.dep)
                .with("fetch_stall_cycles", b.fetch)
                .with("running_frac", b.running as f64 / total)
                .with("dep_stall_frac", b.dep as f64 / total)
                .with("fetch_stall_frac", b.fetch as f64 / total)
        })
        .collect::<Vec<_>>();

    let mut miss_mix = JsonValue::object();
    for (label, count) in &summary.miss_mix {
        miss_mix = miss_mix.with(label, *count);
    }

    let hottest = summary
        .hottest
        .iter()
        .map(|(addr, count)| {
            JsonValue::object()
                .with("line_addr", format!("{addr:#x}"))
                .with("misses", *count)
        })
        .collect::<Vec<_>>();

    let hottest_pcs = summary
        .hottest_pcs
        .iter()
        .map(|(pc, count)| {
            JsonValue::object()
                .with("pc", format!("{pc:#x}"))
                .with("misses", *count)
        })
        .collect::<Vec<_>>();

    let busiest = summary
        .busiest
        .map_or(JsonValue::Null, |(start, end, count)| {
            JsonValue::object()
                .with("start", start)
                .with("end", end)
                .with("misses", count)
        });

    JsonValue::object()
        .with("schema_version", SCHEMA_VERSION)
        .with("events", summary.events)
        .with("horizon_cycles", summary.horizon)
        .with("cores", summary.cores.len())
        .with("per_core", per_core)
        .with("miss_mix", miss_mix)
        .with("hottest_lines", hottest)
        .with("hottest_pcs", hottest_pcs)
        .with("busiest_window", busiest)
}

fn run(path: &str, top: usize, json: bool) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = Trace::parse_prv(&text).map_err(|e| format!("{path}: {e}"))?;
    let summary = summarize(&trace, top);
    if json {
        println!("{}", to_json(&summary).to_string_pretty());
    } else {
        print_text(&summary);
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut top = 8usize;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => {
                    eprintln!("--top needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: coyote-trace-stats <trace.prv> [--top N] [--json]");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(other.to_owned()),
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: coyote-trace-stats <trace.prv> [--top N] [--json]");
        return ExitCode::FAILURE;
    };
    match run(&path, top, json) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("coyote-trace-stats: {message}");
            ExitCode::FAILURE
        }
    }
}
