//! `coyote-trace-stats`: summarize a Coyote-produced Paraver trace
//! without the Paraver GUI.
//!
//! ```text
//! coyote-trace-stats trace.prv [--top N]
//! ```
//!
//! Prints per-core state breakdowns (running / dependency-stall /
//! fetch-stall fractions), miss counts by kind, the hottest cache
//! lines and the busiest 10%-of-runtime window — the first-order
//! analyses the paper describes doing in Paraver ("identifying access
//! patterns or analyzing how and when the L2 banks, NoC, or memory are
//! stressed").

use std::collections::HashMap;
use std::process::ExitCode;

use coyote::trace::{STATE_DEP_STALL, STATE_FETCH_STALL, STATE_RUNNING};
use coyote::Trace;
use coyote_iss::MissKind;

fn run(path: &str, top: usize) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = Trace::parse_prv(&text).map_err(|e| format!("{path}: {e}"))?;

    let horizon = trace
        .events()
        .iter()
        .map(|e| e.cycle)
        .chain(trace.states().iter().map(|s| s.end))
        .max()
        .unwrap_or(0)
        .max(1);

    println!("trace: {} events over {} cycles", trace.len(), horizon);

    // ---- per-core state breakdown ----
    let cores = trace
        .states()
        .iter()
        .map(|s| s.core)
        .chain(trace.events().iter().map(|e| e.core))
        .max()
        .map_or(0, |c| c + 1);
    if !trace.states().is_empty() {
        println!("\nper-core time breakdown:");
        println!("  core  running%  dep-stall%  fetch-stall%");
        for core in 0..cores {
            let mut running = 0u64;
            let mut dep = 0u64;
            let mut fetch = 0u64;
            for interval in trace.states().iter().filter(|s| s.core == core) {
                let span = interval.end - interval.start;
                match interval.state {
                    s if s == STATE_RUNNING => running += span,
                    s if s == STATE_DEP_STALL => dep += span,
                    s if s == STATE_FETCH_STALL => fetch += span,
                    _ => {}
                }
            }
            let total = (running + dep + fetch).max(1) as f64;
            println!(
                "  {core:>4}  {:>7.1}%  {:>9.1}%  {:>11.1}%",
                100.0 * running as f64 / total,
                100.0 * dep as f64 / total,
                100.0 * fetch as f64 / total,
            );
        }
    }

    // ---- miss mix ----
    println!("\nmiss mix:");
    for (kind, label) in [
        (MissKind::Ifetch, "instruction fetch"),
        (MissKind::Load, "data load"),
        (MissKind::Store, "data store"),
        (MissKind::Writeback, "writeback"),
    ] {
        let count = trace.events().iter().filter(|e| e.kind == kind).count();
        println!("  {label:<18} {count}");
    }

    // ---- hottest lines ----
    let mut per_line: HashMap<u64, usize> = HashMap::new();
    for event in trace.events() {
        *per_line.entry(event.line_addr).or_default() += 1;
    }
    let mut hot: Vec<(u64, usize)> = per_line.into_iter().collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("\nhottest lines:");
    for (addr, count) in hot.iter().take(top) {
        println!("  {addr:#012x}  {count} misses");
    }

    // ---- busiest window (10% of the horizon) ----
    let window = (horizon / 10).max(1);
    let mut best_start = 0u64;
    let mut best_count = 0usize;
    let mut cycles: Vec<u64> = trace.events().iter().map(|e| e.cycle).collect();
    cycles.sort_unstable();
    let mut lo = 0usize;
    for hi in 0..cycles.len() {
        while cycles[hi] - cycles[lo] > window {
            lo += 1;
        }
        if hi - lo + 1 > best_count {
            best_count = hi - lo + 1;
            best_start = cycles[lo];
        }
    }
    if best_count > 0 {
        println!(
            "\nbusiest window: {} misses in cycles {}..{} ({:.1}% of all misses in 10% of time)",
            best_count,
            best_start,
            best_start + window,
            100.0 * best_count as f64 / trace.len().max(1) as f64
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut top = 8usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => {
                    eprintln!("--top needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: coyote-trace-stats <trace.prv> [--top N]");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(other.to_owned()),
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: coyote-trace-stats <trace.prv> [--top N]");
        return ExitCode::FAILURE;
    };
    match run(&path, top) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("coyote-trace-stats: {message}");
            ExitCode::FAILURE
        }
    }
}
