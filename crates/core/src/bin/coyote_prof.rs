//! `coyote-prof`: explain where the *host* time went.
//!
//! Reads a host-profile document — either the standalone file written
//! by `coyote-sim --prof-out FILE` (`FILE.json`) or a full metrics
//! document whose run was profiled — and renders the orchestrator
//! phase tree, the fused-window abort-reason taxonomy, and the
//! chunk-/run-length distributions of the superblock fast path.
//!
//! ```text
//! coyote-prof profile.json [options]
//!
//!   --top N   show at most N abort reasons (default: all non-zero)
//!   --check   verify the document instead of pretty-printing alone:
//!             the phase tree must be non-empty, the abort taxonomy
//!             complete, and the chunk-length quantiles ordered; exit 1
//!             on violation (used as the CI smoke gate)
//! ```

use std::process::ExitCode;

use coyote::JsonValue;

struct Options {
    path: String,
    top: Option<usize>,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut top = None;
    let mut check = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                let v = args.next().ok_or("--top needs a value")?;
                top = Some(v.parse().map_err(|e| format!("--top: {e}"))?);
            }
            "--check" => check = true,
            "--help" | "-h" => {
                println!("usage: coyote-prof <profile.json> [options]");
                println!("  --top N   show at most N abort reasons");
                println!(
                    "  --check   verify phase tree + abort taxonomy + quantiles; exit 1 on failure"
                );
                std::process::exit(0);
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        path: path.ok_or("no profile file given (try --help)")?,
        top,
        check,
    })
}

/// Walks `path` into the document, with a readable error on absence.
fn get<'a>(doc: &'a JsonValue, path: &[&str]) -> Result<&'a JsonValue, String> {
    let mut cur = doc;
    for key in path {
        cur = cur
            .get(key)
            .ok_or_else(|| format!("profile document missing `{}`", path.join(".")))?;
    }
    Ok(cur)
}

fn as_u64(value: &JsonValue, what: &str) -> Result<u64, String> {
    value
        .as_u64()
        .ok_or_else(|| format!("`{what}` is not an unsigned integer"))
}

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Milliseconds with sub-ms resolution for phase rows.
fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Recursively prints one phase row and its children. In wall mode the
/// magnitude column is time; in counter mode it is the entry count.
fn print_phase(
    phase: &JsonValue,
    depth: usize,
    wall: bool,
    total: u64,
    path: &str,
) -> Result<(), String> {
    let name = get(phase, &["name"])?.as_str().unwrap_or("?");
    let count = as_u64(get(phase, &["count"])?, &format!("{path}.count"))?;
    let total_ns = as_u64(get(phase, &["total_ns"])?, &format!("{path}.total_ns"))?;
    let exclusive_ns = as_u64(
        get(phase, &["exclusive_ns"])?,
        &format!("{path}.exclusive_ns"),
    )?;
    let label = format!("{:indent$}{name}", "", indent = 2 * depth);
    if wall {
        println!(
            "{label:<28} {:>10.2}ms {:>6.1}% {:>10.2}ms {:>12}",
            ms(total_ns),
            percent(total_ns, total),
            ms(exclusive_ns),
            count
        );
    } else {
        println!("{label:<28} {:>12} {:>6.1}%", count, percent(count, total));
    }
    if let Some(children) = get(phase, &["children"])?.as_array() {
        for child in children {
            print_phase(child, depth + 1, wall, total, path)?;
        }
    }
    Ok(())
}

fn run(options: &Options) -> Result<(), String> {
    let text =
        std::fs::read_to_string(&options.path).map_err(|e| format!("{}: {e}", options.path))?;
    let doc = coyote::parse_json(&text).map_err(|e| format!("{}: {e}", options.path))?;

    let profile = get(&doc, &["host_profile"])?;
    if *profile == JsonValue::Null {
        return Err("this run was not profiled (host_profile is null); \
             re-run coyote-sim with --prof-out, or enable SimConfig profiling"
            .to_owned());
    }
    let mode = get(profile, &["mode"])?.as_str().unwrap_or("?");
    let wall = mode == "wall";
    let phases = get(profile, &["phases"])?
        .as_array()
        .ok_or("`host_profile.phases` is not an array")?;
    let event_pops = as_u64(get(profile, &["event_pops"])?, "host_profile.event_pops")?;

    // The denominator for phase shares: total wall nanoseconds (or
    // total entries in counter mode) across the top-level phases.
    let mut total = 0u64;
    for phase in phases {
        total += if wall {
            as_u64(get(phase, &["total_ns"])?, "phases.total_ns")?
        } else {
            as_u64(get(phase, &["count"])?, "phases.count")?
        };
    }

    println!("{}: host profile ({mode} clock)", options.path);
    println!("event-queue pops: {event_pops}");
    println!();
    if wall {
        println!("Phase tree ({:.2}ms profiled)", ms(total));
        println!(
            "{:<28} {:>12} {:>6} {:>12} {:>12}",
            "phase", "total", "share", "exclusive", "entries"
        );
    } else {
        println!("Phase tree (counter mode: entries, share of top-level entries)");
        println!("{:<28} {:>12} {:>6}", "phase", "entries", "share");
    }
    for phase in phases {
        print_phase(phase, 0, wall, total, "host_profile.phases")?;
    }

    // Abort reasons, largest first.
    let abort = get(profile, &["abort_reasons"])?;
    let mut reasons: Vec<(String, u64)> = abort
        .keys()
        .unwrap_or_default()
        .iter()
        .map(|&key| {
            let v = abort.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
            (key.to_owned(), v)
        })
        .collect();
    let total_aborts: u64 = reasons.iter().map(|(_, v)| v).sum();
    reasons.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let nonzero = reasons.iter().filter(|(_, v)| *v > 0).count();
    let shown = options.top.unwrap_or(nonzero).min(reasons.len());
    println!();
    println!("Window aborts and validation stops ({total_aborts} total)");
    for (reason, count) in reasons.iter().take(shown.max(1)) {
        println!(
            "  {reason:<22} {count:>12} {:>6.1}%",
            percent(*count, total_aborts)
        );
    }

    // Fused-chunk and run-length distributions.
    let chunks = get(profile, &["chunk_lengths"])?;
    let runs = get(profile, &["run_lengths"])?;
    let dist = |hist: &JsonValue, what: &str| -> Result<(u64, u64, u64, u64), String> {
        Ok((
            as_u64(get(hist, &["count"])?, &format!("{what}.count"))?,
            as_u64(get(hist, &["p50"])?, &format!("{what}.p50"))?,
            as_u64(get(hist, &["p99"])?, &format!("{what}.p99"))?,
            as_u64(get(hist, &["max"])?, &format!("{what}.max"))?,
        ))
    };
    let (c_count, c_p50, c_p99, c_max) = dist(chunks, "chunk_lengths")?;
    let (r_count, r_p50, r_p99, r_max) = dist(runs, "run_lengths")?;
    println!();
    println!("Fused-window chunk lengths: count {c_count}  p50 {c_p50}  p99 {c_p99}  max {c_max}");
    println!("Armed run lengths:          count {r_count}  p50 {r_p50}  p99 {r_p99}  max {r_max}");

    if options.check {
        if phases.is_empty() {
            return Err("phase tree is empty".to_owned());
        }
        for required in [
            "run_end",
            "too_short",
            "scoreboard_busy",
            "pending_fill",
            "line_not_resident",
            "base_written",
            "text_store",
            "cross_core_conflict",
            "text_invalidation",
        ] {
            if abort.get(required).is_none() {
                return Err(format!("abort taxonomy missing `{required}`"));
            }
        }
        if c_p50 > c_p99 || c_p99 > c_max {
            return Err(format!(
                "chunk-length quantiles are unordered: p50 {c_p50}, p99 {c_p99}, max {c_max}"
            ));
        }
        println!();
        println!(
            "check: OK ({} top-level phases; {} abort reasons; {} chunks)",
            phases.len(),
            reasons.len(),
            c_count
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("coyote-prof: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("coyote-prof: {message}");
            ExitCode::FAILURE
        }
    }
}
