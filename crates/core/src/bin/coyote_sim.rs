//! `coyote-sim`: run a RISC-V assembly file on the Coyote simulator.
//!
//! ```text
//! coyote-sim program.s [options]
//!
//!   --cores N            simulated cores (default 1)
//!   --cores-per-tile N   tile width (default 8)
//!   --banks-per-tile N   L2 banks per tile (default 4)
//!   --l2-private         tile-private L2 (default shared)
//!   --mapping page|set   bank mapping policy (default set)
//!   --noc-latency N      crossbar request/response latency
//!   --mesh WxH           use a 2D mesh NoC instead of the crossbar
//!   --prefetch N         L2 next-line prefetch degree (default 0)
//!   --interleave N       instructions per core per cycle (default 1)
//!   --max-cycles N       cycle budget (default 2e9)
//!   --trace FILE         write a Paraver trace to FILE(.prv/.pcf)
//!   --oracle             co-simulate a functional reference machine and
//!                        abort on the first architectural divergence
//! ```
//!
//! The program's console output (ecall 64) is printed; the process exit
//! code is the maximum hart exit code.

use std::process::ExitCode;

use coyote::{L2Sharing, MappingPolicy, NocModel, SimConfig, Simulation};

struct Options {
    source: String,
    config: SimConfig,
    trace_path: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut source = None;
    let mut builder = SimConfig::builder().cores(1);
    let mut trace_path = None;
    let mut mesh: Option<(usize, usize)> = None;
    let mut noc_latency: Option<u64> = None;

    fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    }

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cores" => {
                builder = builder.cores(
                    value(&mut args, "--cores")?
                        .parse()
                        .map_err(|e| format!("--cores: {e}"))?,
                );
            }
            "--cores-per-tile" => {
                builder = builder.cores_per_tile(
                    value(&mut args, "--cores-per-tile")?
                        .parse()
                        .map_err(|e| format!("--cores-per-tile: {e}"))?,
                );
            }
            "--banks-per-tile" => {
                builder = builder.banks_per_tile(
                    value(&mut args, "--banks-per-tile")?
                        .parse()
                        .map_err(|e| format!("--banks-per-tile: {e}"))?,
                );
            }
            "--l2-private" => builder = builder.sharing(L2Sharing::Private),
            "--mapping" => {
                let policy = match value(&mut args, "--mapping")?.as_str() {
                    "page" => MappingPolicy::page_to_bank(),
                    "set" => MappingPolicy::SetInterleave,
                    other => return Err(format!("unknown mapping `{other}` (page|set)")),
                };
                builder = builder.mapping(policy);
            }
            "--noc-latency" => {
                noc_latency = Some(
                    value(&mut args, "--noc-latency")?
                        .parse()
                        .map_err(|e| format!("--noc-latency: {e}"))?,
                );
            }
            "--mesh" => {
                let spec = value(&mut args, "--mesh")?;
                let (w, h) = spec
                    .split_once('x')
                    .ok_or_else(|| format!("--mesh takes WxH, got `{spec}`"))?;
                mesh = Some((
                    w.parse().map_err(|e| format!("--mesh width: {e}"))?,
                    h.parse().map_err(|e| format!("--mesh height: {e}"))?,
                ));
            }
            "--prefetch" => {
                builder = builder.prefetch_degree(
                    value(&mut args, "--prefetch")?
                        .parse()
                        .map_err(|e| format!("--prefetch: {e}"))?,
                );
            }
            "--interleave" => {
                builder = builder.interleave(
                    value(&mut args, "--interleave")?
                        .parse()
                        .map_err(|e| format!("--interleave: {e}"))?,
                );
            }
            "--max-cycles" => {
                builder = builder.max_cycles(
                    value(&mut args, "--max-cycles")?
                        .parse()
                        .map_err(|e| format!("--max-cycles: {e}"))?,
                );
            }
            "--trace" => {
                trace_path = Some(value(&mut args, "--trace")?);
                builder = builder.trace(true);
            }
            "--oracle" => builder = builder.oracle(true),
            "--help" | "-h" => {
                println!("usage: coyote-sim <program.s> [options]");
                println!("  --cores N            simulated cores (default 1)");
                println!("  --cores-per-tile N   tile width (default 8)");
                println!("  --banks-per-tile N   L2 banks per tile (default 4)");
                println!("  --l2-private         tile-private L2 (default shared)");
                println!("  --mapping page|set   bank mapping policy (default set)");
                println!("  --noc-latency N      crossbar request/response latency");
                println!("  --mesh WxH           2D mesh NoC instead of the crossbar");
                println!("  --prefetch N         L2 next-line prefetch degree (default 0)");
                println!("  --interleave N       instructions per core per cycle (default 1)");
                println!("  --max-cycles N       cycle budget");
                println!("  --trace FILE         write a Paraver trace to FILE(.prv/.pcf)");
                println!("  --oracle             check against a functional reference machine");
                std::process::exit(0);
            }
            other if source.is_none() && !other.starts_with('-') => {
                source = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    if let Some((w, h)) = mesh {
        builder = builder.noc(NocModel::Mesh {
            width: w,
            height: h,
            hop_latency: noc_latency.unwrap_or(2),
            base_latency: 2,
        });
    } else if let Some(lat) = noc_latency {
        builder = builder.noc(NocModel::IdealCrossbar {
            request_latency: lat,
            response_latency: lat,
        });
    }

    Ok(Options {
        source: source.ok_or("no input file given (try --help)")?,
        config: builder.build().map_err(|e| e.to_string())?,
        trace_path,
    })
}

fn run(options: &Options) -> Result<i64, String> {
    let text =
        std::fs::read_to_string(&options.source).map_err(|e| format!("{}: {e}", options.source))?;
    let program = coyote_asm::assemble(&text).map_err(|e| format!("{}: {e}", options.source))?;
    let mut sim = Simulation::new(options.config, &program).map_err(|e| e.to_string())?;
    let report = sim.run().map_err(|e| e.to_string())?;

    let console = report.console_string();
    if !console.is_empty() {
        print!("{console}");
        if !console.ends_with('\n') {
            println!();
        }
    }
    eprintln!("{report}");

    if let Some(path) = &options.trace_path {
        let trace = sim.trace().expect("tracing was enabled");
        let base = std::path::Path::new(path);
        let prv = base.with_extension("prv");
        let pcf = base.with_extension("pcf");
        trace
            .write_prv(std::fs::File::create(&prv).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        trace
            .write_pcf(std::fs::File::create(&pcf).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        eprintln!("trace: {} (+ {})", prv.display(), pcf.display());
    }

    Ok(report
        .exit_codes()
        .map(|codes| codes.into_iter().max().unwrap_or(0))
        .unwrap_or(-1))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("coyote-sim: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(code) => ExitCode::from((code & 0xff) as u8),
        Err(message) => {
            eprintln!("coyote-sim: {message}");
            ExitCode::FAILURE
        }
    }
}
