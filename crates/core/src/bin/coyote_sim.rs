//! `coyote-sim`: run a RISC-V assembly file on the Coyote simulator.
//!
//! ```text
//! coyote-sim program.s [options]
//!
//!   --cores N            simulated cores (default 1)
//!   --cores-per-tile N   tile width (default 8)
//!   --banks-per-tile N   L2 banks per tile (default 4)
//!   --l2-private         tile-private L2 (default shared)
//!   --mapping page|set   bank mapping policy (default set)
//!   --noc-latency N      crossbar request/response latency
//!   --mesh WxH           use a 2D mesh NoC instead of the crossbar
//!   --prefetch N         L2 next-line prefetch degree (default 0)
//!   --interleave N       instructions per core per cycle (default 1)
//!   --jobs N             host threads for the execute phase (default 1;
//!                        results are bit-identical for any value)
//!   --max-cycles N       cycle budget (default 2e9)
//!   --trace FILE         write a Paraver trace to FILE(.prv/.pcf)
//!   --metrics-out FILE   write telemetry metrics to FILE(.json/.csv)
//!   --metrics-interval N time-series epoch length in cycles (default 10000)
//!   --top-k N            critical-PC attribution table size (default 32)
//!   --chrome-trace FILE  write a Chrome trace-event JSON (Perfetto-loadable)
//!   --prof-out FILE      profile the host side of the run and write
//!                        FILE.json (host_profile document) and
//!                        FILE.folded (flamegraph folded stacks)
//!   --prof-counters      with --prof-out: deterministic counter clock
//!                        instead of wall time
//!   --certify            run the load-time disjointness analysis and skip
//!                        the runtime conflict sweeps when it proves them
//!                        redundant (results are bit-identical either way)
//!   --oracle             co-simulate a functional reference machine and
//!                        abort on the first architectural divergence
//!   --status-out FILE    stream live status snapshots (JSON lines) to FILE;
//!                        watch with `coyote-top FILE`
//!   --status-interval N  milliseconds between snapshots (default 500)
//!   --crash-out FILE     write a crash dump (flight-recorder tail, stalls,
//!                        MSHR occupancy) on deadlock, divergence, panic or
//!                        stop (default <status-out>.crash.json)
//!   --stop-file FILE     stop gracefully when FILE appears: finish the
//!                        current cycle, write partial metrics marked
//!                        truncated, exit 130. The crate forbids unsafe
//!                        code, so there is no signal handler; wrap runs
//!                        with `trap 'touch stop' INT` to map Ctrl-C here.
//! ```
//!
//! The program's console output (ecall 64) is printed; the process exit
//! code is the maximum hart exit code.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use coyote::{
    L2Sharing, MappingPolicy, NocModel, ProfMode, Report, RunError, SimConfig, Simulation,
    StatusEmitter,
};

/// Exit code of a graceful stop — distinct from hart exit codes (0..=127
/// by convention) and from the generic failure code.
const STOP_EXIT: i64 = 130;

struct Options {
    source: String,
    config: SimConfig,
    trace_path: Option<String>,
    metrics_path: Option<String>,
    chrome_trace_path: Option<String>,
    prof_path: Option<String>,
    status_path: Option<String>,
    status_interval_ms: u64,
    crash_path: Option<String>,
    stop_file: Option<String>,
}

fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut source = None;
    let mut builder = SimConfig::builder().cores(1);
    let mut trace_path = None;
    let mut metrics_path = None;
    let mut chrome_trace_path = None;
    let mut prof_path = None;
    let mut prof_counters = false;
    let mut mesh: Option<(usize, usize)> = None;
    let mut noc_latency: Option<u64> = None;
    let mut status_path: Option<String> = None;
    let mut status_interval_ms = 500u64;
    let mut crash_path: Option<String> = None;
    let mut stop_file: Option<String> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cores" => {
                builder = builder.cores(
                    value(&mut args, "--cores")?
                        .parse()
                        .map_err(|e| format!("--cores: {e}"))?,
                );
            }
            "--cores-per-tile" => {
                builder = builder.cores_per_tile(
                    value(&mut args, "--cores-per-tile")?
                        .parse()
                        .map_err(|e| format!("--cores-per-tile: {e}"))?,
                );
            }
            "--banks-per-tile" => {
                builder = builder.banks_per_tile(
                    value(&mut args, "--banks-per-tile")?
                        .parse()
                        .map_err(|e| format!("--banks-per-tile: {e}"))?,
                );
            }
            "--l2-private" => builder = builder.sharing(L2Sharing::Private),
            "--mapping" => {
                let policy = match value(&mut args, "--mapping")?.as_str() {
                    "page" => MappingPolicy::page_to_bank(),
                    "set" => MappingPolicy::SetInterleave,
                    other => return Err(format!("unknown mapping `{other}` (page|set)")),
                };
                builder = builder.mapping(policy);
            }
            "--noc-latency" => {
                noc_latency = Some(
                    value(&mut args, "--noc-latency")?
                        .parse()
                        .map_err(|e| format!("--noc-latency: {e}"))?,
                );
            }
            "--mesh" => {
                let spec = value(&mut args, "--mesh")?;
                let (w, h) = spec
                    .split_once('x')
                    .ok_or_else(|| format!("--mesh takes WxH, got `{spec}`"))?;
                mesh = Some((
                    w.parse().map_err(|e| format!("--mesh width: {e}"))?,
                    h.parse().map_err(|e| format!("--mesh height: {e}"))?,
                ));
            }
            "--prefetch" => {
                builder = builder.prefetch_degree(
                    value(&mut args, "--prefetch")?
                        .parse()
                        .map_err(|e| format!("--prefetch: {e}"))?,
                );
            }
            "--interleave" => {
                builder = builder.interleave(
                    value(&mut args, "--interleave")?
                        .parse()
                        .map_err(|e| format!("--interleave: {e}"))?,
                );
            }
            "--jobs" => {
                builder = builder.jobs(
                    value(&mut args, "--jobs")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?,
                );
            }
            "--max-cycles" => {
                builder = builder.max_cycles(
                    value(&mut args, "--max-cycles")?
                        .parse()
                        .map_err(|e| format!("--max-cycles: {e}"))?,
                );
            }
            "--trace" => {
                trace_path = Some(value(&mut args, "--trace")?);
                builder = builder.trace(true);
            }
            "--metrics-out" => {
                let path = value(&mut args, "--metrics-out")?;
                if path.trim().is_empty() {
                    return Err("--metrics-out needs a non-empty path".to_owned());
                }
                metrics_path = Some(path);
                builder = builder.telemetry(true);
            }
            "--metrics-interval" => {
                builder = builder.metrics_interval(
                    value(&mut args, "--metrics-interval")?
                        .parse()
                        .map_err(|e| format!("--metrics-interval: {e}"))?,
                );
            }
            "--top-k" => {
                builder = builder.attribution_top_k(
                    value(&mut args, "--top-k")?
                        .parse()
                        .map_err(|e| format!("--top-k: {e}"))?,
                );
            }
            "--chrome-trace" => {
                let path = value(&mut args, "--chrome-trace")?;
                if path.trim().is_empty() {
                    return Err("--chrome-trace needs a non-empty path".to_owned());
                }
                chrome_trace_path = Some(path);
                builder = builder.chrome_trace(true);
            }
            "--prof-out" => {
                let path = value(&mut args, "--prof-out")?;
                if path.trim().is_empty() {
                    return Err("--prof-out needs a non-empty path".to_owned());
                }
                prof_path = Some(path);
            }
            "--prof-counters" => prof_counters = true,
            "--certify" => builder = builder.certify(true),
            "--oracle" => builder = builder.oracle(true),
            "--status-out" => {
                let path = value(&mut args, "--status-out")?;
                if path.trim().is_empty() {
                    return Err("--status-out needs a non-empty path".to_owned());
                }
                status_path = Some(path);
            }
            "--status-interval" => {
                let ms: u64 = value(&mut args, "--status-interval")?
                    .parse()
                    .map_err(|e| format!("--status-interval: {e}"))?;
                if ms == 0 {
                    return Err("--status-interval must be at least 1 millisecond".to_owned());
                }
                status_interval_ms = ms;
            }
            "--crash-out" => {
                let path = value(&mut args, "--crash-out")?;
                if path.trim().is_empty() {
                    return Err("--crash-out needs a non-empty path".to_owned());
                }
                crash_path = Some(path);
            }
            "--stop-file" => {
                let path = value(&mut args, "--stop-file")?;
                if path.trim().is_empty() {
                    return Err("--stop-file needs a non-empty path".to_owned());
                }
                stop_file = Some(path);
            }
            "--help" | "-h" => {
                println!("usage: coyote-sim <program.s> [options]");
                println!("  --cores N            simulated cores (default 1)");
                println!("  --cores-per-tile N   tile width (default 8)");
                println!("  --banks-per-tile N   L2 banks per tile (default 4)");
                println!("  --l2-private         tile-private L2 (default shared)");
                println!("  --mapping page|set   bank mapping policy (default set)");
                println!("  --noc-latency N      crossbar request/response latency");
                println!("  --mesh WxH           2D mesh NoC instead of the crossbar");
                println!("  --prefetch N         L2 next-line prefetch degree (default 0)");
                println!("  --interleave N       instructions per core per cycle (default 1)");
                println!("  --jobs N             host threads for the execute phase (default 1)");
                println!("  --max-cycles N       cycle budget");
                println!("  --trace FILE         write a Paraver trace to FILE(.prv/.pcf)");
                println!("  --metrics-out FILE   write telemetry metrics to FILE(.json/.csv)");
                println!(
                    "  --metrics-interval N time-series epoch length in cycles (default 10000)"
                );
                println!("  --top-k N            critical-PC attribution table size (default 32)");
                println!("  --chrome-trace FILE  write a Chrome trace-event JSON (Perfetto)");
                println!("  --prof-out FILE      write host profile FILE.json + FILE.folded");
                println!("  --prof-counters      profile with the deterministic counter clock");
                println!("  --certify            prove cross-core disjointness statically and");
                println!("                       skip the runtime conflict sweeps when granted");
                println!("  --oracle             check against a functional reference machine");
                println!("  --status-out FILE    stream live status snapshots (watch: coyote-top)");
                println!("  --status-interval N  milliseconds between snapshots (default 500)");
                println!("  --crash-out FILE     crash dump on deadlock/divergence/panic/stop");
                println!("  --stop-file FILE     stop gracefully when FILE appears (exit 130)");
                std::process::exit(0);
            }
            other if source.is_none() && !other.starts_with('-') => {
                source = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    if prof_path.is_some() {
        builder = builder.profiling(if prof_counters {
            ProfMode::Counter
        } else {
            ProfMode::Wall
        });
    } else if prof_counters {
        return Err("--prof-counters requires --prof-out".to_owned());
    }

    if let Some((w, h)) = mesh {
        builder = builder.noc(NocModel::Mesh {
            width: w,
            height: h,
            hop_latency: noc_latency.unwrap_or(2),
            base_latency: 2,
        });
    } else if let Some(lat) = noc_latency {
        builder = builder.noc(NocModel::IdealCrossbar {
            request_latency: lat,
            response_latency: lat,
        });
    }

    // A status stream gets a crash-dump sibling by default, so abnormal
    // exits of a watched run always leave a post-mortem behind.
    if crash_path.is_none() {
        crash_path = status_path.as_ref().map(|p| format!("{p}.crash.json"));
    }

    Ok(Options {
        source: source.ok_or("no input file given (try --help)")?,
        config: builder.build().map_err(|e| e.to_string())?,
        trace_path,
        metrics_path,
        chrome_trace_path,
        prof_path,
        status_path,
        status_interval_ms,
        crash_path,
        stop_file,
    })
}

/// Writes `crash.json` if a crash path is configured; dump errors are
/// reported but never mask the original failure.
fn write_crash_dump(options: &Options, sim: &Simulation, reason: &str) {
    let Some(path) = &options.crash_path else {
        return;
    };
    let doc = sim.crash_json(reason);
    match std::fs::write(path, doc.to_string_pretty()) {
        Ok(()) => eprintln!("crash dump: {path}"),
        Err(e) => eprintln!("coyote-sim: crash dump {path}: {e}"),
    }
}

fn write_metrics(options: &Options, sim: &Simulation, report: &Report) -> Result<(), String> {
    if let Some(path) = &options.metrics_path {
        let base = std::path::Path::new(path);
        let json = base.with_extension("json");
        let csv = base.with_extension("csv");
        std::fs::write(&json, coyote::metrics_json(sim, report).to_string_pretty())
            .map_err(|e| format!("{}: {e}", json.display()))?;
        std::fs::write(&csv, coyote::metrics_csv(sim))
            .map_err(|e| format!("{}: {e}", csv.display()))?;
        eprintln!("metrics: {} (+ {})", json.display(), csv.display());
    }
    Ok(())
}

fn run(options: &Options) -> Result<i64, String> {
    let text =
        std::fs::read_to_string(&options.source).map_err(|e| format!("{}: {e}", options.source))?;
    let program = coyote_asm::assemble(&text).map_err(|e| format!("{}: {e}", options.source))?;
    let mut sim = Simulation::new(options.config, &program).map_err(|e| e.to_string())?;

    if let Some(path) = &options.status_path {
        let emitter = StatusEmitter::create(path, options.status_interval_ms)
            .map_err(|e| format!("--status-out: {e}"))?;
        sim.set_status(emitter);
    }
    if let Some(stop_path) = &options.stop_file {
        let flag = Arc::new(AtomicBool::new(false));
        sim.set_stop_handle(Arc::clone(&flag));
        let path = stop_path.clone();
        // Watchdog: polls for the stop file and flips the stop token the
        // simulation checks each cycle. The thread is detached — it dies
        // with the process if the file never appears.
        std::thread::spawn(move || loop {
            if std::fs::metadata(&path).is_ok() {
                flag.store(true, Ordering::Relaxed);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()));
    let result = match outcome {
        Ok(result) => result,
        Err(panic) => {
            write_crash_dump(options, &sim, "panic");
            std::panic::resume_unwind(panic);
        }
    };
    let report = match result {
        Ok(report) => report,
        Err(RunError::Stopped { cycle }) => {
            eprintln!(
                "coyote-sim: stop requested; finished cycle {cycle} and wrote partial results"
            );
            let report = sim.partial_report();
            eprintln!("{report}");
            write_metrics(options, &sim, &report)?;
            write_crash_dump(options, &sim, "stopped");
            return Ok(STOP_EXIT);
        }
        Err(err) => {
            let reason = match &err {
                RunError::Deadlock { .. } => "deadlock",
                RunError::OracleDivergence(_) => "oracle_divergence",
                _ => "error",
            };
            write_crash_dump(options, &sim, reason);
            return Err(err.to_string());
        }
    };

    let console = report.console_string();
    if !console.is_empty() {
        print!("{console}");
        if !console.ends_with('\n') {
            println!();
        }
    }
    eprintln!("{report}");
    if options.config.certify {
        eprintln!(
            "certificate: {}",
            if sim.certificate_active() {
                "active (runtime conflict sweeps skipped)"
            } else {
                "not granted or revoked (runtime conflict sweeps ran)"
            }
        );
    }

    if let Some(path) = &options.trace_path {
        let trace = sim.trace().expect("tracing was enabled");
        let base = std::path::Path::new(path);
        let prv = base.with_extension("prv");
        let pcf = base.with_extension("pcf");
        trace
            .write_prv(std::fs::File::create(&prv).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        trace
            .write_pcf(std::fs::File::create(&pcf).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        eprintln!("trace: {} (+ {})", prv.display(), pcf.display());
    }

    write_metrics(options, &sim, &report)?;

    if let Some(path) = &options.prof_path {
        let prof = sim.host_prof().expect("profiling was enabled");
        let base = std::path::Path::new(path);
        let json = base.with_extension("json");
        let folded = base.with_extension("folded");
        let doc = coyote::JsonValue::object()
            .with("schema_version", coyote::SCHEMA_VERSION)
            .with("host_profile", coyote::host_profile_json(&sim));
        std::fs::write(&json, doc.to_string_pretty())
            .map_err(|e| format!("{}: {e}", json.display()))?;
        std::fs::write(&folded, prof.folded()).map_err(|e| format!("{}: {e}", folded.display()))?;
        eprintln!("host profile: {} (+ {})", json.display(), folded.display());
    }

    if let Some(path) = &options.chrome_trace_path {
        std::fs::write(path, coyote::chrome_trace_json(&sim).to_string_pretty())
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("chrome trace: {path}");
    }

    Ok(report
        .exit_codes()
        .map_or(-1, |codes| codes.into_iter().max().unwrap_or(0)))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("coyote-sim: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(code) => ExitCode::from((code & 0xff) as u8),
        Err(message) => {
            eprintln!("coyote-sim: {message}");
            ExitCode::FAILURE
        }
    }
}
