//! Machine-readable metrics exporters.
//!
//! Three formats, all derived from a finished [`Simulation`]:
//!
//! * [`metrics_json`] — the versioned metrics document (configuration,
//!   report counters, hierarchy counters, lifecycle histograms, and a
//!   time-series summary). The schema is pinned by
//!   [`SCHEMA_VERSION`] and a golden-file test; scripts may rely on the
//!   top-level key set.
//! * [`metrics_csv`] — the epoch time series as CSV, one row per epoch
//!   (see [`coyote_telemetry::TimeSeries::to_csv`] for the column set).
//! * [`chrome_trace_json`] — request lifecycles and core-state
//!   intervals as Chrome trace-event JSON, loadable in chrome://tracing
//!   or <https://ui.perfetto.dev>. One trace `ts` microsecond equals
//!   one simulated cycle.

use coyote_iss::{FuseDiag, FuseStop};
use coyote_mem::hierarchy::HierarchyStats;
use coyote_telemetry::hostprof::HostProf;
use coyote_telemetry::{Blame, ChromeEvent, ChromeTrace, FlowEvent, Histogram, JsonValue, Stage};

use crate::attr::BLAME_OTHER;
use crate::config::SimConfig;
use crate::report::Report;
use crate::sim::Simulation;
use crate::trace;

pub use coyote_telemetry::SCHEMA_VERSION;

/// Builds the full metrics JSON document.
///
/// Top-level keys (pinned by the schema test): `schema_version`,
/// `config`, `report`, `hierarchy`, `histograms`, `time_series`,
/// `attribution`, `host_profile`. Histograms and the time series are
/// `null` when the run had telemetry disabled; attribution is always
/// present (stall blame degrades to the `other` column without memory
/// telemetry); `host_profile` is `null` unless the run was profiled
/// ([`crate::config::SimConfig::profiling`]).
#[must_use]
pub fn metrics_json(sim: &Simulation, report: &Report) -> JsonValue {
    JsonValue::object()
        .with("schema_version", SCHEMA_VERSION)
        .with("config", config_json(sim.config()))
        .with("report", report_json(report))
        .with("hierarchy", hierarchy_json(&report.hierarchy))
        .with("histograms", histograms_json(sim))
        .with("time_series", time_series_json(sim))
        .with("attribution", attribution_json(sim))
        .with("host_profile", host_profile_json(sim))
}

/// The epoch time series as CSV (header only when telemetry was off).
#[must_use]
pub fn metrics_csv(sim: &Simulation) -> String {
    match sim.telemetry() {
        Some(sink) => sink.series().to_csv(),
        None => coyote_telemetry::TimeSeries::default().to_csv(),
    }
}

fn config_json(config: &SimConfig) -> JsonValue {
    JsonValue::object()
        .with("cores", config.cores)
        .with("cores_per_tile", config.cores_per_tile)
        .with("tiles", config.tiles())
        .with("banks_per_tile", config.banks_per_tile)
        .with("l2_line_bytes", config.l2.line_bytes)
        .with("l2_bank_size_bytes", config.l2.bank_size_bytes)
        .with("l2_mshrs", config.l2.mshrs)
        .with("mc_count", config.mc.count)
        .with("mc_channels_per_mc", config.mc.channels_per_mc)
        .with("prefetch_degree", config.prefetch_degree)
        .with("interleave", config.interleave)
        .with("fusion", config.fusion)
        .with("telemetry", config.telemetry)
        .with("metrics_interval", config.metrics_interval)
        .with("chrome_trace", config.chrome_trace)
        .with("attribution_top_k", config.attribution_top_k)
}

fn report_json(report: &Report) -> JsonValue {
    let cores: Vec<JsonValue> = report
        .cores
        .iter()
        .map(|core| {
            JsonValue::object()
                .with("retired", core.stats.retired)
                .with("dep_stalls", core.stats.dep_stalls)
                .with("dep_stall_cycles", core.stats.dep_stall_cycles)
                .with("fetch_stall_cycles", core.stats.fetch_stall_cycles)
                .with("branches", core.stats.branches)
                .with("vector_retired", core.stats.vector_retired)
                .with("fused_retired", core.fused_retired)
                .with("l1i_hits", core.l1i.hits)
                .with("l1i_misses", core.l1i.misses)
                .with("l1d_hits", core.l1d.hits)
                .with("l1d_misses", core.l1d.misses)
                .with("l1d_writebacks", core.l1d.writebacks)
                .with(
                    "exit_code",
                    core.exit_code.map_or(JsonValue::Null, JsonValue::from),
                )
        })
        .collect();
    JsonValue::object()
        .with("cycles", report.cycles)
        .with("total_retired", report.total_retired())
        .with("ipc", report.ipc())
        .with("host_mips", report.host_mips())
        .with("l1d_miss_rate", report.l1d_miss_rate())
        .with("block_hit_rate", report.block_hit_rate())
        .with("total_dep_stall_cycles", report.total_dep_stall_cycles())
        .with("wall_time_seconds", report.wall_time.as_secs_f64())
        .with("truncated", report.truncated)
        .with("cores", JsonValue::Array(cores))
}

fn hierarchy_json(stats: &HierarchyStats) -> JsonValue {
    let banks: Vec<JsonValue> = stats
        .banks
        .iter()
        .map(|bank| {
            JsonValue::object()
                .with("hits", bank.hits)
                .with("misses", bank.misses)
                .with("writebacks", bank.writebacks)
                .with("mshr_stalls", bank.mshr_stalls)
                .with("max_queue_depth", bank.max_queue_depth)
                .with("prefetch_fills", bank.prefetch_fills)
                .with("prefetch_useful", bank.prefetch_useful)
        })
        .collect();
    let mcs: Vec<JsonValue> = stats
        .mcs
        .iter()
        .map(|mc| {
            JsonValue::object()
                .with("reads", mc.reads)
                .with("writes", mc.writes)
                .with("queue_cycles", mc.queue_cycles)
                .with("busy_cycles", mc.busy_cycles)
                .with("row_hits", mc.row_hits)
                .with("row_misses", mc.row_misses)
        })
        .collect();
    JsonValue::object()
        .with("submitted", stats.submitted)
        .with("completed", stats.completed)
        .with("merged", stats.merged)
        .with("l2_hits", stats.l2_hits())
        .with("l2_misses", stats.l2_misses())
        .with("l2_miss_rate", stats.l2_miss_rate())
        .with("noc_traversals", stats.noc.traversals)
        .with("noc_mean_latency", stats.noc.mean_latency())
        .with("banks", JsonValue::Array(banks))
        .with("mcs", JsonValue::Array(mcs))
}

fn histograms_json(sim: &Simulation) -> JsonValue {
    let Some(mem) = sim.mem_telemetry() else {
        return JsonValue::Null;
    };
    let mut stages = JsonValue::object();
    for stage in Stage::ALL {
        stages = stages.with(stage.name(), histogram_json(mem.stage(stage)));
    }
    let per_bank: Vec<JsonValue> = mem.per_bank().iter().map(histogram_json).collect();
    let per_mc: Vec<JsonValue> = mem.per_mc().iter().map(histogram_json).collect();
    JsonValue::object()
        .with("stages", stages)
        .with("per_bank", JsonValue::Array(per_bank))
        .with("per_mc", JsonValue::Array(per_mc))
        .with("dropped_slices", mem.dropped_slices())
        .with("stamp_errors", mem.stamp_errors())
}

/// One histogram as JSON: exact aggregates, bucket-bound percentiles,
/// and the sparse `[upper_bound, count]` bucket list.
fn histogram_json(hist: &Histogram) -> JsonValue {
    let buckets: Vec<JsonValue> = hist
        .nonzero_buckets()
        .into_iter()
        .map(|(bound, count)| JsonValue::Array(vec![bound.into(), count.into()]))
        .collect();
    JsonValue::object()
        .with("count", hist.count())
        .with("sum", hist.sum())
        .with("min", hist.min())
        .with("max", hist.max())
        .with("mean", hist.mean())
        .with("p50", hist.quantile(0.50))
        .with("p95", hist.quantile(0.95))
        .with("p99", hist.quantile(0.99))
        .with("buckets", JsonValue::Array(buckets))
}

/// Renders a blame row (`Blame::ALL` columns plus `other`) as an
/// object keyed by category name.
fn blame_json(row: &[u64]) -> JsonValue {
    let mut out = JsonValue::object();
    for blame in Blame::ALL {
        out = out.with(blame.name(), row[blame as usize]);
    }
    if let Some(&other) = row.get(BLAME_OTHER) {
        out = out.with("other", other);
    }
    out
}

/// Formats a packed blocked-register mask (`[x | f << 32, v]`) as
/// space-separated architectural register names.
fn reg_names(mask: [u64; 2]) -> String {
    let mut names = Vec::new();
    for i in 0..32 {
        if mask[0] >> i & 1 == 1 {
            names.push(format!("x{i}"));
        }
    }
    for i in 0..32 {
        if mask[0] >> (32 + i) & 1 == 1 {
            names.push(format!("f{i}"));
        }
    }
    for i in 0..32 {
        if mask[1] >> i & 1 == 1 {
            names.push(format!("v{i}"));
        }
    }
    names.join(" ")
}

/// The causal stall-attribution section: per-core CPI stacks and the
/// bounded top-K critical-PC table.
fn attribution_json(sim: &Simulation) -> JsonValue {
    let attr = sim.attribution();
    let per_core: Vec<JsonValue> = (0..sim.config().cores)
        .map(|core| {
            let dep = &attr.dep()[core];
            let dep_total: u64 = dep.iter().sum();
            let total = attr.active()[core] + dep_total + attr.fetch()[core] + attr.drained()[core];
            JsonValue::object()
                .with("core", core)
                .with("active", attr.active()[core])
                .with("dep_stall", blame_json(dep))
                .with("fetch_stall", attr.fetch()[core])
                .with("drained", attr.drained()[core])
                .with("total_cycles", total)
        })
        .collect();
    let top_pcs: Vec<JsonValue> = attr
        .top()
        .ranked()
        .into_iter()
        .map(|(pc, entry)| {
            let mut dominant = Blame::ALL[0];
            for blame in Blame::ALL {
                if entry.blame[blame as usize] > entry.blame[dominant as usize] {
                    dominant = blame;
                }
            }
            JsonValue::object()
                .with("pc", format!("{pc:#x}"))
                .with("cycles", entry.cycles)
                .with("count", entry.count)
                .with("error", entry.error)
                .with("dominant", dominant.name())
                .with("blame", blame_json(&entry.blame))
                .with("regs", reg_names(entry.reg_mask))
        })
        .collect();
    JsonValue::object()
        .with("top_k", sim.config().attribution_top_k)
        .with("dropped_links", attr.dropped_links())
        .with("per_core", JsonValue::Array(per_core))
        .with("top_pcs", JsonValue::Array(top_pcs))
}

fn time_series_json(sim: &Simulation) -> JsonValue {
    let Some(sink) = sim.telemetry() else {
        return JsonValue::Null;
    };
    let series = sink.series();
    let retired: u64 = series.samples().iter().map(|s| s.retired).sum();
    JsonValue::object()
        .with("interval", sink.interval())
        .with("epochs", series.len())
        .with("compactions", u64::from(series.compactions()))
        .with("total_retired", retired)
}

/// The `host_profile` section: the orchestrator phase tree, named
/// counters, event-queue drain volume, and fused-pipeline introspection
/// (per-core arm/validate outcomes, the window-abort reason taxonomy,
/// chunk- and run-length distributions). `Null` unless the run was
/// profiled ([`crate::config::SimConfig::profiling`]).
///
/// Host observation never feeds back into the model: stripping this
/// section from a profiled run's document must leave it byte-identical
/// to an unprofiled run (property-tested in `prof_invariance`). In
/// counter mode every field is additionally a pure function of the
/// simulated schedule, so the whole section is byte-stable across
/// hosts.
#[must_use]
pub fn host_profile_json(sim: &Simulation) -> JsonValue {
    let Some(prof) = sim.host_prof() else {
        return JsonValue::Null;
    };
    let phases: Vec<JsonValue> = prof
        .roots()
        .iter()
        .map(|&id| phase_json(prof, id))
        .collect();
    let mut counters = JsonValue::object();
    for (name, value) in prof.counters() {
        counters = counters.with(name, value);
    }
    let mut merged_runs = Histogram::new();
    let per_core: Vec<JsonValue> = sim
        .cores()
        .iter()
        .map(|core| {
            let diag = core.fuse_diag();
            let mut stops = JsonValue::object();
            for stop in FuseStop::ALL {
                stops = stops.with(stop.name(), diag.stops[stop as usize]);
            }
            let runs = run_length_hist(diag);
            merged_runs.merge(&runs);
            let chunks = prof
                .core_hists("chunk_len")
                .and_then(|hists| hists.get(core.index()))
                .cloned()
                .unwrap_or_default();
            JsonValue::object()
                .with("core", core.index())
                .with("template_arms", diag.template_arms)
                .with("full_validations", diag.full_validations)
                .with("armed_runs", diag.armed_runs)
                .with("stops", stops)
                .with("run_lengths", histogram_json(&runs))
                .with("chunk_lengths", histogram_json(&chunks))
        })
        .collect();
    // The window-abort taxonomy: per-core validation stop reasons
    // summed across cores, plus the two orchestrator-level aborts that
    // no single core owns.
    let mut abort = JsonValue::object();
    for stop in FuseStop::ALL {
        let total: u64 = sim
            .cores()
            .iter()
            .map(|core| core.fuse_diag().stops[stop as usize])
            .sum();
        abort = abort.with(stop.name(), total);
    }
    abort = abort
        .with(
            "cross_core_conflict",
            prof.counter("window/cross_core_conflict"),
        )
        .with(
            "text_invalidation",
            prof.counter("window/text_invalidation"),
        );
    JsonValue::object()
        .with("mode", prof.clock().name())
        .with("phases", JsonValue::Array(phases))
        .with("counters", counters)
        .with("event_pops", sim.event_pops())
        .with("abort_reasons", abort)
        .with(
            "chunk_lengths",
            histogram_json(&prof.merged_core_hist("chunk_len")),
        )
        .with("run_lengths", histogram_json(&merged_runs))
        .with("per_core", JsonValue::Array(per_core))
}

/// One phase-tree node: timing aggregates plus recursive children.
fn phase_json(prof: &HostProf, id: usize) -> JsonValue {
    let phase = prof.phase(id);
    let children: Vec<JsonValue> = phase
        .children
        .iter()
        .map(|&child| phase_json(prof, child))
        .collect();
    JsonValue::object()
        .with("name", phase.name)
        .with("count", phase.count)
        .with("total_ns", phase.total_ns)
        .with("exclusive_ns", prof.exclusive_ns(id))
        .with("latency", histogram_json(phase.hist))
        .with("children", JsonValue::Array(children))
}

/// Converts a core's exact armed-run-length count table into a log2
/// histogram (bulk inserts — no per-sample replay).
fn run_length_hist(diag: &FuseDiag) -> Histogram {
    let mut hist = Histogram::new();
    for (len, &count) in diag.run_len_counts.iter().enumerate() {
        hist.record_n(len as u64, count);
    }
    hist
}

/// Human name for a Paraver state code (Chrome slice labels).
fn state_name(code: u64) -> &'static str {
    match code {
        trace::STATE_RUNNING => "running",
        trace::STATE_DEP_STALL => "dep stall",
        trace::STATE_FETCH_STALL => "fetch stall",
        trace::STATE_HALTED => "halted",
        _ => "unknown",
    }
}

/// Miss-kind name recovered from a request tag (see the orchestrator's
/// tag encoding).
fn request_name(tag: u64) -> &'static str {
    match crate::sim::decode_tag(tag).1 {
        coyote_iss::MissKind::Ifetch => "ifetch",
        coyote_iss::MissKind::Load => "load",
        coyote_iss::MissKind::Store => "store",
        coyote_iss::MissKind::Writeback => "writeback",
    }
}

/// Row groups in the exported Chrome trace.
const PID_CORES: u32 = 1;
const PID_BANKS: u32 = 2;
const PID_MCS: u32 = 3;
const PID_REQUESTS: u32 = 4;

/// Builds the Chrome trace-event document from the run's core-state
/// intervals and captured request lifecycles. Requires
/// [`SimConfig::chrome_trace`] to have been set for the run; otherwise
/// the document is valid but empty.
#[must_use]
pub fn chrome_trace_json(sim: &Simulation) -> JsonValue {
    let mut out = ChromeTrace::new();
    out.name_process(PID_CORES, "cores");
    out.name_process(PID_BANKS, "L2 banks (bank stage)");
    out.name_process(PID_MCS, "memory controllers");
    out.name_process(PID_REQUESTS, "requests end-to-end (by core)");

    for core in 0..sim.config().cores {
        out.name_thread(PID_CORES, core as u32, &format!("core {core}"));
    }
    for interval in sim.chrome_states() {
        // Trailing halted intervals add nothing but timeline width.
        if interval.state == trace::STATE_HALTED {
            continue;
        }
        out.push(ChromeEvent {
            name: state_name(interval.state).to_owned(),
            cat: "core-state",
            ts: interval.start,
            dur: interval.end - interval.start,
            pid: PID_CORES,
            tid: interval.core as u32,
            args: Vec::new(),
        });
    }

    if let Some(mem) = sim.mem_telemetry() {
        // Slices accumulate in completion pop order, which same-cycle
        // completions leave unspecified; sort canonically so the
        // exported trace is byte-stable across legal schedules.
        let mut slices: Vec<_> = mem.slices().to_vec();
        slices.sort_by_key(|s| (s.submit, s.complete, s.line_addr, s.tag));
        for slice in &slices {
            let name = request_name(slice.tag);
            let (core, _) = crate::sim::decode_tag(slice.tag);
            let args = vec![
                (
                    "line_addr".to_owned(),
                    JsonValue::Str(format!("{:#x}", slice.line_addr)),
                ),
                ("core".to_owned(), JsonValue::UInt(core as u64)),
                ("bank".to_owned(), JsonValue::UInt(slice.bank as u64)),
            ];
            out.push(ChromeEvent {
                name: name.to_owned(),
                cat: "request",
                ts: slice.submit,
                dur: slice.complete - slice.submit,
                pid: PID_REQUESTS,
                tid: core as u32,
                args: args.clone(),
            });
            if let (Some(arrive), Some(done)) = (slice.bank_arrive, slice.mc_send.or(slice.respond))
            {
                out.push(ChromeEvent {
                    name: name.to_owned(),
                    cat: "bank",
                    ts: arrive,
                    dur: done.saturating_sub(arrive),
                    pid: PID_BANKS,
                    tid: slice.bank as u32,
                    args: args.clone(),
                });
            }
            if let (Some(mc), Some(send), Some(respond)) =
                (slice.mc, slice.mc_send, slice.mc_respond)
            {
                out.push(ChromeEvent {
                    name: name.to_owned(),
                    cat: "mc",
                    ts: send,
                    dur: respond - send,
                    pid: PID_MCS,
                    tid: mc as u32,
                    args,
                });
            }
        }
    }

    // Flow events bind each closed stall interval to the request that
    // ended it: the flow starts on the causing request's slice and
    // finishes on the core's stall slice. Links accumulate in wakeup
    // order, which is already canonical per core, but sort anyway so
    // the export never depends on collection order.
    let mut links: Vec<_> = sim.attribution().links().to_vec();
    links.sort_by_key(|l| (l.core, l.start, l.line_addr, l.tag));
    for (idx, link) in links.iter().enumerate() {
        let id = idx as u64 + 1;
        out.push_flow(FlowEvent {
            name: format!("stall pc {:#x}", link.pc),
            cat: "stall-cause",
            id,
            ts: link.submit,
            pid: PID_REQUESTS,
            tid: link.core as u32,
            start: true,
        });
        out.push_flow(FlowEvent {
            name: format!("stall pc {:#x}", link.pc),
            cat: "stall-cause",
            id,
            ts: link.start,
            pid: PID_CORES,
            tid: link.core as u32,
            start: false,
        });
    }
    out.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn run_telemetry_sim() -> (Simulation, Report) {
        let src = "
            .data
            buf: .zero 8192
            .text
            _start:
                csrr t0, mhartid
                la t1, buf
                li t2, 32
            loop:
                slli t3, t0, 3
                add t3, t1, t3
                ld t4, 0(t3)
                addi t4, t4, 1
                sd t4, 0(t3)
                addi t0, t0, 2
                addi t2, t2, -1
                bnez t2, loop
                li a0, 0
                li a7, 93
                ecall";
        let program = coyote_asm::assemble(src).unwrap();
        let config = SimConfig::builder()
            .cores(2)
            .telemetry(true)
            .metrics_interval(100)
            .chrome_trace(true)
            .build()
            .unwrap();
        let mut sim = Simulation::new(config, &program).unwrap();
        let report = sim.run().unwrap();
        (sim, report)
    }

    #[test]
    fn json_document_has_pinned_top_level_keys() {
        let (sim, report) = run_telemetry_sim();
        let doc = metrics_json(&sim, &report);
        assert_eq!(
            doc.keys(),
            Some(vec![
                "schema_version",
                "config",
                "report",
                "hierarchy",
                "histograms",
                "time_series",
                "attribution",
                "host_profile",
            ])
        );
        assert_eq!(
            doc.get("schema_version").and_then(JsonValue::as_u64),
            Some(SCHEMA_VERSION)
        );
        // Round-trips through the parser.
        let text = doc.to_string_pretty();
        assert_eq!(coyote_telemetry::parse_json(&text).unwrap(), doc);
        // Unprofiled runs carry the key with a null section.
        assert_eq!(doc.get("host_profile"), Some(&JsonValue::Null));
    }

    #[test]
    fn host_profile_section_exports_taxonomy_and_distributions() {
        let src = "
            _start:
                li t0, 64
            loop:
                addi t0, t0, -1
                bnez t0, loop
                li a0, 0
                li a7, 93
                ecall";
        let program = coyote_asm::assemble(src).unwrap();
        let config = SimConfig::builder()
            .cores(2)
            .profiling(crate::config::ProfMode::Counter)
            .build()
            .unwrap();
        let mut sim = Simulation::new(config, &program).unwrap();
        let report = sim.run().unwrap();
        let doc = metrics_json(&sim, &report);
        let profile = doc.get("host_profile").expect("profiled run");
        assert_eq!(
            profile.get("mode").and_then(JsonValue::as_str),
            Some("counter")
        );
        let phases = profile.get("phases").and_then(JsonValue::as_array).unwrap();
        assert!(
            phases
                .iter()
                .any(|p| p.get("name").and_then(JsonValue::as_str) == Some("execute")),
            "phase tree must contain the execute phase"
        );
        // The abort taxonomy carries every FuseStop reason plus the two
        // orchestrator-level aborts.
        let abort = profile.get("abort_reasons").unwrap();
        for stop in FuseStop::ALL {
            assert!(abort.get(stop.name()).is_some(), "missing {}", stop.name());
        }
        assert!(abort.get("cross_core_conflict").is_some());
        assert!(abort.get("text_invalidation").is_some());
        // Counter mode: all phase timings are zero, counts are not.
        assert!(phases
            .iter()
            .all(|p| { p.get("total_ns").and_then(JsonValue::as_u64) == Some(0) }));
        assert!(
            profile
                .get("event_pops")
                .and_then(JsonValue::as_u64)
                .unwrap()
                > 0
        );
        assert_eq!(
            profile
                .get("per_core")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(2)
        );
        // Predecode counters made it across from the decoded text.
        let counters = profile.get("counters").unwrap();
        assert!(
            counters
                .get("predecode/words")
                .and_then(JsonValue::as_u64)
                .unwrap()
                > 0
        );
    }

    #[test]
    fn e2e_histogram_count_matches_completed_requests() {
        let (sim, report) = run_telemetry_sim();
        let doc = metrics_json(&sim, &report);
        let e2e_count = doc
            .get("histograms")
            .and_then(|h| h.get("stages"))
            .and_then(|s| s.get("end_to_end"))
            .and_then(|h| h.get("count"))
            .and_then(JsonValue::as_u64)
            .unwrap();
        assert_eq!(e2e_count, report.hierarchy.completed);
        assert!(e2e_count > 0);
    }

    #[test]
    fn csv_retired_deltas_sum_to_total_retired() {
        let (sim, report) = run_telemetry_sim();
        let csv = metrics_csv(&sim);
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        let retired_col = header.iter().position(|&h| h == "retired").unwrap();
        let total: u64 = lines
            .map(|row| {
                row.split(',')
                    .nth(retired_col)
                    .unwrap()
                    .parse::<u64>()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, report.total_retired());
    }

    #[test]
    fn chrome_trace_has_core_and_request_slices() {
        let (sim, _report) = run_telemetry_sim();
        let doc = chrome_trace_json(&sim);
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        let slices: Vec<&JsonValue> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert!(slices
            .iter()
            .any(|e| e.get("cat").and_then(JsonValue::as_str) == Some("core-state")));
        assert!(slices
            .iter()
            .any(|e| e.get("cat").and_then(JsonValue::as_str) == Some("request")));
        // Every slice is well-formed: ts and dur present.
        for slice in &slices {
            assert!(slice.get("ts").and_then(JsonValue::as_u64).is_some());
            assert!(slice.get("dur").and_then(JsonValue::as_u64).is_some());
        }
    }

    #[test]
    fn disabled_telemetry_exports_nulls_and_empty_csv() {
        let program = coyote_asm::assemble("_start:\n li a0, 0\n li a7, 93\n ecall").unwrap();
        let config = SimConfig::builder().cores(1).build().unwrap();
        let mut sim = Simulation::new(config, &program).unwrap();
        let report = sim.run().unwrap();
        let doc = metrics_json(&sim, &report);
        assert_eq!(doc.get("histograms"), Some(&JsonValue::Null));
        assert_eq!(doc.get("time_series"), Some(&JsonValue::Null));
        // Attribution stays present: CPI stacks need no memory
        // telemetry (blame just lands in `other`).
        assert!(doc
            .get("attribution")
            .and_then(|a| a.get("per_core"))
            .is_some());
        assert_eq!(metrics_csv(&sim).lines().count(), 1);
        let chrome = chrome_trace_json(&sim);
        assert!(chrome.get("traceEvents").is_some());
    }

    /// Reads one CPI-stack row back out of the document.
    fn stack_row(doc: &JsonValue, core: usize) -> JsonValue {
        doc.get("attribution")
            .and_then(|a| a.get("per_core"))
            .and_then(JsonValue::as_array)
            .unwrap()[core]
            .clone()
    }

    #[test]
    fn cpi_stack_partitions_total_cycles() {
        let (sim, report) = run_telemetry_sim();
        let doc = metrics_json(&sim, &report);
        for core in 0..sim.config().cores {
            let row = stack_row(&doc, core);
            let field = |k: &str| row.get(k).and_then(JsonValue::as_u64).unwrap();
            let dep = row.get("dep_stall").unwrap();
            let dep_total: u64 = dep
                .keys()
                .unwrap()
                .iter()
                .map(|k| dep.get(k).and_then(JsonValue::as_u64).unwrap())
                .sum();
            assert_eq!(
                field("active") + dep_total + field("fetch_stall") + field("drained"),
                report.cycles,
                "core {core} CPI stack must partition total cycles"
            );
            assert_eq!(field("total_cycles"), report.cycles);
            // The dep bucket agrees with the core's own stall counter.
            assert_eq!(dep_total, report.cores[core].stats.dep_stall_cycles);
        }
        let top_pcs = doc
            .get("attribution")
            .and_then(|a| a.get("top_pcs"))
            .and_then(JsonValue::as_array)
            .unwrap();
        assert!(!top_pcs.is_empty(), "loop kernel must produce critical PCs");
    }

    #[test]
    fn flow_events_agree_with_critical_pc_table() {
        let (sim, report) = run_telemetry_sim();
        let links = sim.attribution().links();
        assert!(!links.is_empty(), "chrome run must record stall links");
        // No eviction in this small run: per-PC sums over the links
        // must equal the exported top_pcs cycles exactly.
        let mut by_pc = std::collections::BTreeMap::new();
        for link in links {
            *by_pc.entry(format!("{:#x}", link.pc)).or_insert(0u64) += link.end - link.start;
        }
        let doc = metrics_json(&sim, &report);
        let top_pcs = doc
            .get("attribution")
            .and_then(|a| a.get("top_pcs"))
            .and_then(JsonValue::as_array)
            .unwrap();
        assert!(by_pc.len() <= sim.config().attribution_top_k);
        for entry in top_pcs {
            let pc = entry.get("pc").and_then(JsonValue::as_str).unwrap();
            let cycles = entry.get("cycles").and_then(JsonValue::as_u64).unwrap();
            assert_eq!(by_pc.get(pc), Some(&cycles), "pc {pc}");
            assert_eq!(entry.get("error").and_then(JsonValue::as_u64), Some(0));
        }
        // Each link becomes one start/finish flow pair in the trace.
        let chrome = chrome_trace_json(&sim);
        let events = chrome
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        let ph_count = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some(ph))
                .count()
        };
        assert_eq!(ph_count("s"), links.len());
        assert_eq!(ph_count("f"), links.len());
    }

    #[test]
    fn critical_pcs_name_blocked_registers() {
        let (sim, report) = run_telemetry_sim();
        let doc = metrics_json(&sim, &report);
        let top_pcs = doc
            .get("attribution")
            .and_then(|a| a.get("top_pcs"))
            .and_then(JsonValue::as_array)
            .unwrap();
        // The kernel stalls on `t4` (x29) right behind its load.
        assert!(
            top_pcs.iter().any(|e| {
                e.get("regs")
                    .and_then(JsonValue::as_str)
                    .is_some_and(|regs| regs.split(' ').any(|r| r == "x29"))
            }),
            "expected a critical PC blocked on x29: {}",
            doc.get("attribution").unwrap().to_string_pretty()
        );
    }
}
