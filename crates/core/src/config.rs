//! Simulation configuration.
//!
//! Gathers every knob the paper names: core count and tiling, L1 and L2
//! geometry, L2 sharing, data-mapping policy, NoC latencies, memory
//! controllers, VLEN — plus the Spike-interleaving ablation control.

use coyote_iss::{CacheConfig, CoreConfig};
use coyote_mem::hierarchy::{HierarchyConfig, L2Sharing};
use coyote_mem::l2::L2Config;
use coyote_mem::mapping::MappingPolicy;
use coyote_mem::mc::McConfig;
use coyote_mem::noc::NocModel;
use std::fmt;

/// Complete configuration of a Coyote simulation.
///
/// Build with [`SimConfig::builder`]; `SimConfig::default()` models a
/// single 8-core tile resembling one ACME VAS tile.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Total simulated cores.
    pub cores: usize,
    /// Cores per tile (the paper's VAS tile holds 8).
    pub cores_per_tile: usize,
    /// L2 banks per tile.
    pub banks_per_tile: usize,
    /// Per-core configuration (L1s + VLEN).
    pub core: CoreConfig,
    /// Per-bank L2 configuration.
    pub l2: L2Config,
    /// Shared vs. tile-private L2.
    pub sharing: L2Sharing,
    /// Bank-mapping policy.
    pub mapping: MappingPolicy,
    /// NoC model.
    pub noc: NocModel,
    /// Memory controllers.
    pub mc: McConfig,
    /// L2 next-line prefetch degree (0 disables, the paper's baseline).
    pub prefetch_degree: usize,
    /// Instructions each active core executes per simulated cycle.
    ///
    /// Coyote runs with 1 (interleaving disabled, the paper's timing
    /// model); larger values reproduce Spike's back-to-back
    /// interleaving as an ablation of the Figure 3 bottleneck
    /// discussion.
    pub interleave: usize,
    /// Cycle budget before [`crate::sim::RunError::CycleLimit`].
    pub max_cycles: u64,
    /// Whether to collect the Paraver L1-miss trace.
    pub trace: bool,
    /// Whether to run the differential co-simulation oracle: a pure
    /// functional reference machine replays every retirement and the
    /// run aborts with [`crate::sim::RunError::OracleDivergence`] on
    /// the first architectural mismatch.
    pub oracle: bool,
    /// Whether to collect telemetry: request-lifecycle latency
    /// histograms in the hierarchy plus the epoch-sampled time series
    /// (see [`crate::metrics`]). Off by default — the disabled path
    /// costs one branch per hierarchy event.
    pub telemetry: bool,
    /// Telemetry sampling epoch in cycles (must be at least 1). Each
    /// epoch contributes one row to the exported time-series CSV.
    pub metrics_interval: u64,
    /// Whether to additionally retain per-request lifecycles and
    /// core-state intervals for Chrome trace-event export (implies
    /// `telemetry`; bounded memory, see
    /// [`coyote_mem::telemetry::SLICE_CAP`]).
    pub chrome_trace: bool,
    /// Schedule-perturbation seed for the `coyote-audit --race`
    /// detector. 0 (the default) is the canonical schedule; any other
    /// value permutes the pop order of same-cycle events from
    /// *different* arbitration domains in the hierarchy event queue — a
    /// legal reordering that must not change any architectural result
    /// or statistic.
    pub perturb_seed: u64,
    /// How many critical PCs the stall-attribution top-K table keeps
    /// (must be at least 1). Attribution itself is always on — it costs
    /// a few counters per core — and the table is O(K) regardless of
    /// run length.
    pub attribution_top_k: usize,
    /// Whether the superblock fusion fast path may retire validated
    /// straight-line runs through [`coyote_iss::Core`]'s fused
    /// dispatch and the orchestrator's multi-cycle windows. A
    /// host-execution knob like `jobs`: every cycle count, digest and
    /// exported metric is bit-identical either way (property-tested),
    /// only wall time changes. On by default; `false` forces the
    /// per-instruction path everywhere (the A/B reference).
    pub fusion: bool,
    /// Host worker threads stepping the cores each cycle (must be at
    /// least 1). `jobs = 1` is the sequential orchestrator; larger
    /// values shard the per-cycle core loop across a fixed worker pool
    /// while store-buffer commit, miss-buffer merge, and conflict
    /// fallback keep every observable result bit-identical to
    /// `jobs = 1`. A host-execution knob only: it never appears in
    /// exported metrics or the determinism digest.
    pub jobs: usize,
    /// Host-side self-profiling mode (see `coyote-prof`). A
    /// host-execution knob like `jobs`: it never appears in the
    /// determinism digest or in `config_json`, and turning it on must
    /// not change any simulated result — the only observable addition
    /// is the `host_profile` metrics section (property-tested).
    pub profiling: ProfMode,
    /// Whether to run the static disjointness analysis at load time
    /// and, when it proves all cross-core write/any access pairs
    /// disjoint, skip the runtime conflict sweeps (the parallel
    /// execute phase's byte sweep and the fused window's cross-core
    /// check). A host-execution knob like `jobs`: the certificate is
    /// only ever granted when the sweeps provably cannot fire, so
    /// every simulated result is bit-identical either way
    /// (property-tested); it never appears in the determinism digest
    /// or `config_json`. Off by default — the analysis costs load
    /// time on workloads that may not earn a certificate.
    pub certify: bool,
}

/// How the host-side self-profiler observes the orchestrator.
///
/// A host-execution knob like [`SimConfig::jobs`]: excluded from the
/// determinism digest and from `config_json`, and forbidden from
/// feeding back into simulated state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfMode {
    /// No profiling (the default): the hot path pays one predictable
    /// branch per phase site and records nothing.
    #[default]
    Off,
    /// Wall-clock phase timing plus deterministic counters. Timings
    /// come from the workspace's single pinned wall-clock site
    /// (`coyote_telemetry::hostprof`); everything else in the profile
    /// is a pure function of the simulated schedule.
    Wall,
    /// Wall-clock-free mode: phase *entry counts* instead of
    /// durations. The whole profile is then byte-stable across hosts
    /// and legal schedule perturbations, which is what
    /// `coyote-audit --race --profile` checks.
    Counter,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cores: 8,
            cores_per_tile: 8,
            banks_per_tile: 4,
            core: CoreConfig::default(),
            l2: L2Config::default(),
            sharing: L2Sharing::Shared,
            mapping: MappingPolicy::SetInterleave,
            noc: NocModel::default(),
            mc: McConfig::default(),
            prefetch_degree: 0,
            interleave: 1,
            max_cycles: 2_000_000_000,
            trace: false,
            oracle: false,
            telemetry: false,
            metrics_interval: 10_000,
            chrome_trace: false,
            perturb_seed: 0,
            attribution_top_k: 32,
            fusion: true,
            jobs: 1,
            profiling: ProfMode::Off,
            certify: false,
        }
    }
}

impl SimConfig {
    /// Starts a builder from the defaults.
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::default(),
        }
    }

    /// Number of tiles implied by `cores` and `cores_per_tile`.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.cores.div_ceil(self.cores_per_tile)
    }

    /// The tile hosting a core.
    #[must_use]
    pub fn tile_of_core(&self, core: usize) -> usize {
        core / self.cores_per_tile
    }

    /// Derives the hierarchy configuration.
    #[must_use]
    pub fn hierarchy(&self) -> HierarchyConfig {
        HierarchyConfig {
            tiles: self.tiles(),
            banks_per_tile: self.banks_per_tile,
            l2: self.l2,
            sharing: self.sharing,
            mapping: self.mapping,
            noc: self.noc,
            mc: self.mc,
            prefetch_degree: self.prefetch_degree,
            perturb_seed: self.perturb_seed,
        }
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] describing the first problem found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("core count must be positive"));
        }
        if self.cores_per_tile == 0 {
            return Err(ConfigError::new("cores_per_tile must be positive"));
        }
        if self.interleave == 0 {
            return Err(ConfigError::new("interleave must be at least 1"));
        }
        if self.metrics_interval == 0 {
            return Err(ConfigError::new("metrics_interval must be at least 1"));
        }
        if self.attribution_top_k == 0 {
            return Err(ConfigError::new("attribution_top_k must be at least 1"));
        }
        if self.jobs == 0 {
            return Err(ConfigError::new("jobs must be at least 1"));
        }
        self.core
            .l1i
            .validate()
            .map_err(|m| ConfigError::new(format!("l1i: {m}")))?;
        self.core
            .l1d
            .validate()
            .map_err(|m| ConfigError::new(format!("l1d: {m}")))?;
        if self.core.l1d.line_bytes != self.l2.line_bytes
            || self.core.l1i.line_bytes != self.l2.line_bytes
        {
            return Err(ConfigError::new(
                "L1 and L2 line sizes must match (line-granular hierarchy requests)",
            ));
        }
        self.hierarchy().validate().map_err(ConfigError::new)?;
        Ok(())
    }
}

/// Error describing an invalid [`SimConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    pub(crate) fn new(message: impl Into<String>) -> ConfigError {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid simulation config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`SimConfig`].
///
/// # Examples
///
/// ```
/// use coyote::config::SimConfig;
/// use coyote_mem::hierarchy::L2Sharing;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SimConfig::builder()
///     .cores(16)
///     .cores_per_tile(8)
///     .sharing(L2Sharing::Private)
///     .build()?;
/// assert_eq!(config.tiles(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the total core count.
    #[must_use]
    pub fn cores(mut self, cores: usize) -> Self {
        self.config.cores = cores;
        self
    }

    /// Sets the cores per tile.
    #[must_use]
    pub fn cores_per_tile(mut self, n: usize) -> Self {
        self.config.cores_per_tile = n;
        self
    }

    /// Sets the L2 banks per tile.
    #[must_use]
    pub fn banks_per_tile(mut self, n: usize) -> Self {
        self.config.banks_per_tile = n;
        self
    }

    /// Sets the per-core configuration.
    #[must_use]
    pub fn core(mut self, core: CoreConfig) -> Self {
        self.config.core = core;
        self
    }

    /// Sets the L1D geometry.
    #[must_use]
    pub fn l1d(mut self, l1d: CacheConfig) -> Self {
        self.config.core.l1d = l1d;
        self
    }

    /// Sets the L1I geometry.
    #[must_use]
    pub fn l1i(mut self, l1i: CacheConfig) -> Self {
        self.config.core.l1i = l1i;
        self
    }

    /// Sets the per-bank L2 configuration.
    #[must_use]
    pub fn l2(mut self, l2: L2Config) -> Self {
        self.config.l2 = l2;
        self
    }

    /// Sets L2 sharing.
    #[must_use]
    pub fn sharing(mut self, sharing: L2Sharing) -> Self {
        self.config.sharing = sharing;
        self
    }

    /// Sets the mapping policy.
    #[must_use]
    pub fn mapping(mut self, mapping: MappingPolicy) -> Self {
        self.config.mapping = mapping;
        self
    }

    /// Sets the NoC model.
    #[must_use]
    pub fn noc(mut self, noc: NocModel) -> Self {
        self.config.noc = noc;
        self
    }

    /// Sets the memory-controller configuration.
    #[must_use]
    pub fn mc(mut self, mc: McConfig) -> Self {
        self.config.mc = mc;
        self
    }

    /// Sets the L2 next-line prefetch degree (0 disables).
    #[must_use]
    pub fn prefetch_degree(mut self, degree: usize) -> Self {
        self.config.prefetch_degree = degree;
        self
    }

    /// Sets the interleaving factor (1 = Coyote's timing model).
    #[must_use]
    pub fn interleave(mut self, interleave: usize) -> Self {
        self.config.interleave = interleave;
        self
    }

    /// Sets the cycle budget.
    #[must_use]
    pub fn max_cycles(mut self, max_cycles: u64) -> Self {
        self.config.max_cycles = max_cycles;
        self
    }

    /// Enables or disables trace collection.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.config.trace = trace;
        self
    }

    /// Enables or disables the differential co-simulation oracle.
    #[must_use]
    pub fn oracle(mut self, oracle: bool) -> Self {
        self.config.oracle = oracle;
        self
    }

    /// Enables or disables telemetry (lifecycle histograms + epoch
    /// time series).
    #[must_use]
    pub fn telemetry(mut self, telemetry: bool) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Sets the telemetry sampling epoch in cycles.
    #[must_use]
    pub fn metrics_interval(mut self, interval: u64) -> Self {
        self.config.metrics_interval = interval;
        self
    }

    /// Enables or disables Chrome-trace lifecycle capture (implies
    /// telemetry).
    #[must_use]
    pub fn chrome_trace(mut self, chrome_trace: bool) -> Self {
        self.config.chrome_trace = chrome_trace;
        if chrome_trace {
            self.config.telemetry = true;
        }
        self
    }

    /// Sets the schedule-perturbation seed (0 = canonical order; used
    /// by `coyote-audit --race`).
    #[must_use]
    pub fn perturb_seed(mut self, seed: u64) -> Self {
        self.config.perturb_seed = seed;
        self
    }

    /// Sets the critical-PC top-K table size for stall attribution.
    #[must_use]
    pub fn attribution_top_k(mut self, k: usize) -> Self {
        self.config.attribution_top_k = k;
        self
    }

    /// Enables or disables the superblock fusion fast path (on by
    /// default; disabling forces the per-instruction reference path).
    #[must_use]
    pub fn fusion(mut self, fusion: bool) -> Self {
        self.config.fusion = fusion;
        self
    }

    /// Sets the host worker-thread count for the per-cycle core loop
    /// (1 = sequential stepping, today's behavior).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = jobs;
        self
    }

    /// Sets the host-side self-profiling mode (off by default).
    #[must_use]
    pub fn profiling(mut self, mode: ProfMode) -> Self {
        self.config.profiling = mode;
        self
    }

    /// Enables or disables load-time disjointness certification (off
    /// by default; a granted certificate skips the runtime conflict
    /// sweeps without changing any simulated result).
    #[must_use]
    pub fn certify(mut self, certify: bool) -> Self {
        self.config.certify = certify;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SimConfig::default().validate().is_ok());
    }

    #[test]
    fn tiles_round_up() {
        let c = SimConfig::builder()
            .cores(12)
            .cores_per_tile(8)
            .build()
            .unwrap();
        assert_eq!(c.tiles(), 2);
        assert_eq!(c.tile_of_core(0), 0);
        assert_eq!(c.tile_of_core(7), 0);
        assert_eq!(c.tile_of_core(8), 1);
    }

    #[test]
    fn zero_cores_rejected() {
        assert!(SimConfig::builder().cores(0).build().is_err());
    }

    #[test]
    fn mismatched_line_sizes_rejected() {
        let l2 = L2Config {
            line_bytes: 128,
            ..L2Config::default()
        };
        let err = SimConfig::builder().l2(l2).build().unwrap_err();
        assert!(err.to_string().contains("line sizes"));
    }

    #[test]
    fn zero_interleave_rejected() {
        assert!(SimConfig::builder().interleave(0).build().is_err());
    }

    #[test]
    fn zero_metrics_interval_rejected() {
        let err = SimConfig::builder()
            .metrics_interval(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("metrics_interval"));
    }

    #[test]
    fn zero_jobs_rejected() {
        let err = SimConfig::builder().jobs(0).build().unwrap_err();
        assert!(err.to_string().contains("jobs"));
    }

    #[test]
    fn zero_attribution_top_k_rejected() {
        let err = SimConfig::builder()
            .attribution_top_k(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("attribution_top_k"));
    }

    #[test]
    fn hierarchy_reflects_topology() {
        let c = SimConfig::builder()
            .cores(32)
            .cores_per_tile(8)
            .banks_per_tile(2)
            .build()
            .unwrap();
        let h = c.hierarchy();
        assert_eq!(h.tiles, 4);
        assert_eq!(h.total_banks(), 8);
    }
}
