//! Paraver-compatible L1-miss trace output.
//!
//! The paper: "Simulation outputs [...] a trace of L1 misses. This trace
//! can be analyzed using the Paraver Visualization Tools". This module
//! collects per-cycle miss events during simulation and serializes them
//! as a Paraver `.prv` event trace (one application, one task per core)
//! plus the matching `.pcf` configuration naming the event types.

use std::io::{self, Write};

use coyote_iss::MissKind;

/// Paraver event type for L1 miss kind (value = [`kind_code`]).
pub const EVENT_MISS_KIND: u64 = 42_000_001;
/// Paraver event type carrying the missing line address.
pub const EVENT_LINE_ADDR: u64 = 42_000_002;
/// Paraver event type carrying the PC of the missing instruction (the
/// causal anchor used by stall attribution; 0 for synthetic traffic).
pub const EVENT_PC: u64 = 42_000_003;

/// Paraver state value: the core is executing.
pub const STATE_RUNNING: u64 = 1;
/// Paraver state value: stalled on a register dependency.
pub const STATE_DEP_STALL: u64 = 2;
/// Paraver state value: stalled on an instruction fetch.
pub const STATE_FETCH_STALL: u64 = 3;
/// Paraver state value: halted.
pub const STATE_HALTED: u64 = 0;

/// Encodes a miss kind as a Paraver event value.
#[must_use]
pub fn kind_code(kind: MissKind) -> u64 {
    match kind {
        MissKind::Ifetch => 1,
        MissKind::Load => 2,
        MissKind::Store => 3,
        MissKind::Writeback => 4,
    }
}

/// One recorded miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle of the miss.
    pub cycle: u64,
    /// Issuing core.
    pub core: usize,
    /// Miss kind.
    pub kind: MissKind,
    /// Line-aligned address.
    pub line_addr: u64,
    /// PC of the missing instruction (0 for synthetic traffic such as
    /// L2-victim writebacks).
    pub pc: u64,
}

/// One recorded core-state interval (Paraver record type 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateInterval {
    /// Core the interval belongs to.
    pub core: usize,
    /// First cycle of the interval.
    pub start: u64,
    /// One past the last cycle of the interval.
    pub end: u64,
    /// State value (`STATE_RUNNING`, `STATE_DEP_STALL`, …).
    pub state: u64,
}

/// In-memory collector of miss events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    states: Vec<StateInterval>,
    cores: usize,
    final_cycle: u64,
}

impl Trace {
    /// Creates an empty trace for a system of `cores` cores.
    #[must_use]
    pub fn new(cores: usize) -> Trace {
        Trace {
            events: Vec::new(),
            states: Vec::new(),
            cores,
            final_cycle: 0,
        }
    }

    /// Records one miss.
    pub fn record(&mut self, event: TraceEvent) {
        self.final_cycle = self.final_cycle.max(event.cycle);
        self.events.push(event);
    }

    /// Records a core-state interval (emitted as a Paraver state
    /// record). Zero-length intervals are dropped.
    pub fn record_state(&mut self, interval: StateInterval) {
        if interval.end > interval.start {
            self.final_cycle = self.final_cycle.max(interval.end);
            self.states.push(interval);
        }
    }

    /// Number of cores in the traced system (from the constructor, or
    /// the `.prv` header when parsed). Cores that never missed or
    /// stalled still count.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Recorded state intervals.
    #[must_use]
    pub fn states(&self) -> &[StateInterval] {
        &self.states
    }

    /// Recorded events in emission order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Writes the Paraver `.prv` trace.
    ///
    /// Layout: one node, one application with `cores` tasks of one
    /// thread each; every miss becomes a pair of punctual events
    /// ([`EVENT_MISS_KIND`], [`EVENT_LINE_ADDR`]) on the issuing core's
    /// task.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`. A `&mut Vec<u8>` or `&mut File`
    /// can be passed for `out`.
    pub fn write_prv<W: Write>(&self, mut out: W) -> io::Result<()> {
        let cores = self.cores.max(1);
        // Header: #Paraver (date):duration:nodes(cpus):apps:app1(tasks)
        write!(
            out,
            "#Paraver (01/01/2021 at 00:00):{}:1({}):1:{}(",
            self.final_cycle + 1,
            cores,
            cores
        )?;
        for task in 0..cores {
            if task > 0 {
                write!(out, ",")?;
            }
            write!(out, "1:1")?;
        }
        writeln!(out, ")")?;
        for st in &self.states {
            // Record type 1 (state): 1:cpu:appl:task:thread:begin:end:state
            writeln!(
                out,
                "1:{cpu}:1:{task}:1:{begin}:{end}:{state}",
                cpu = st.core + 1,
                task = st.core + 1,
                begin = st.start,
                end = st.end,
                state = st.state,
            )?;
        }
        for ev in &self.events {
            // Record type 2 (event): 2:cpu:appl:task:thread:time:type:value[:type:value]
            writeln!(
                out,
                "2:{cpu}:1:{task}:1:{time}:{kt}:{kv}:{at}:{av}:{pt}:{pv}",
                cpu = ev.core + 1,
                task = ev.core + 1,
                time = ev.cycle,
                kt = EVENT_MISS_KIND,
                kv = kind_code(ev.kind),
                at = EVENT_LINE_ADDR,
                av = ev.line_addr,
                pt = EVENT_PC,
                pv = ev.pc,
            )?;
        }
        Ok(())
    }

    /// Writes the Paraver `.pcf` configuration naming the event types.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_pcf<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(out, "STATES")?;
        writeln!(out, "{STATE_HALTED}	halted")?;
        writeln!(out, "{STATE_RUNNING}	running")?;
        writeln!(out, "{STATE_DEP_STALL}	dependency stall")?;
        writeln!(out, "{STATE_FETCH_STALL}	fetch stall")?;
        writeln!(out)?;
        writeln!(out, "EVENT_TYPE")?;
        writeln!(out, "0\t{EVENT_MISS_KIND}\tL1 miss kind")?;
        writeln!(out, "VALUES")?;
        writeln!(out, "1\tinstruction fetch")?;
        writeln!(out, "2\tdata load")?;
        writeln!(out, "3\tdata store")?;
        writeln!(out, "4\twriteback")?;
        writeln!(out)?;
        writeln!(out, "EVENT_TYPE")?;
        writeln!(out, "0\t{EVENT_LINE_ADDR}\tL1 miss line address")?;
        writeln!(out)?;
        writeln!(out, "EVENT_TYPE")?;
        writeln!(out, "0\t{EVENT_PC}\tL1 miss instruction PC")?;
        Ok(())
    }
}

/// Error from parsing a `.prv` trace back in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line of the malformed record.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "prv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

impl Trace {
    /// Parses a `.prv` trace previously produced by
    /// [`Trace::write_prv`] (state records and the miss-event pairs
    /// this simulator emits; other Paraver record types are rejected).
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] for malformed records.
    pub fn parse_prv(text: &str) -> Result<Trace, ParseTraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| ParseTraceError {
            line: 1,
            message: "empty trace".to_owned(),
        })?;
        if !header.starts_with("#Paraver") {
            return Err(ParseTraceError {
                line: 1,
                message: "missing #Paraver header".to_owned(),
            });
        }
        // Task count from "...:1:N(1:1,...)": scan fields right-to-left
        // for the last `N(` field (the date and task list also contain
        // colons, so positional splitting is unreliable).
        let cores = header
            .split(':')
            .rev()
            .find_map(|field| {
                let (digits, _) = field.split_once('(')?;
                digits.parse::<usize>().ok()
            })
            .ok_or_else(|| ParseTraceError {
                line: 1,
                message: "cannot read task count from header".to_owned(),
            })?;
        let mut trace = Trace::new(cores);
        for (idx, line) in lines {
            let err = |message: String| ParseTraceError {
                line: idx + 1,
                message,
            };
            let fields: Vec<&str> = line.split(':').collect();
            match fields.first() {
                Some(&"1") => {
                    if fields.len() != 8 {
                        return Err(err("state record needs 8 fields".to_owned()));
                    }
                    let parse = |s: &str| s.parse::<u64>().map_err(|e| err(format!("{e}: `{s}`")));
                    trace.record_state(StateInterval {
                        core: parse(fields[3])? as usize - 1,
                        start: parse(fields[5])?,
                        end: parse(fields[6])?,
                        state: parse(fields[7])?,
                    });
                }
                Some(&"2") => {
                    // 10 fields: the pre-PC format (kind + line address);
                    // 12 fields: with the trailing EVENT_PC pair.
                    if fields.len() != 10 && fields.len() != 12 {
                        return Err(err("event record needs 10 or 12 fields".to_owned()));
                    }
                    let parse = |s: &str| s.parse::<u64>().map_err(|e| err(format!("{e}: `{s}`")));
                    let kind = match parse(fields[6])? {
                        k if k == EVENT_MISS_KIND => match parse(fields[7])? {
                            1 => MissKind::Ifetch,
                            2 => MissKind::Load,
                            3 => MissKind::Store,
                            4 => MissKind::Writeback,
                            other => return Err(err(format!("unknown miss kind {other}"))),
                        },
                        other => return Err(err(format!("unknown event type {other}"))),
                    };
                    let pc = if fields.len() == 12 {
                        if parse(fields[10])? != EVENT_PC {
                            return Err(err(format!("unknown event type {}", fields[10])));
                        }
                        parse(fields[11])?
                    } else {
                        0
                    };
                    trace.record(TraceEvent {
                        cycle: parse(fields[5])?,
                        core: parse(fields[3])? as usize - 1,
                        kind,
                        line_addr: parse(fields[9])?,
                        pc,
                    });
                }
                Some(other) => {
                    return Err(err(format!("unsupported record type `{other}`")));
                }
                None => {}
            }
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new(2);
        t.record(TraceEvent {
            cycle: 10,
            core: 0,
            kind: MissKind::Load,
            line_addr: 0x1000,
            pc: 0x8000_0010,
        });
        t.record(TraceEvent {
            cycle: 12,
            core: 1,
            kind: MissKind::Ifetch,
            line_addr: 0x2000,
            pc: 0x8000_0024,
        });
        t
    }

    #[test]
    fn collects_events_in_order() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.events()[0].cycle, 10);
        assert_eq!(t.events()[1].core, 1);
    }

    #[test]
    fn prv_format_lines() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_prv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("#Paraver"));
        assert!(header.contains(":13:1(2):1:2(1:1,1:1)"), "header: {header}");
        assert_eq!(
            lines.next().unwrap(),
            "2:1:1:1:1:10:42000001:2:42000002:4096:42000003:2147483664"
        );
        assert_eq!(
            lines.next().unwrap(),
            "2:2:1:2:1:12:42000001:1:42000002:8192:42000003:2147483684"
        );
    }

    #[test]
    fn pcf_names_event_values() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_pcf(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("L1 miss kind"));
        assert!(text.contains("data load"));
    }

    #[test]
    fn state_records_serialize_before_events() {
        let mut t = sample();
        t.record_state(StateInterval {
            core: 0,
            start: 0,
            end: 10,
            state: STATE_RUNNING,
        });
        t.record_state(StateInterval {
            core: 0,
            start: 10,
            end: 20,
            state: STATE_DEP_STALL,
        });
        // Zero-length intervals are dropped.
        t.record_state(StateInterval {
            core: 1,
            start: 5,
            end: 5,
            state: STATE_RUNNING,
        });
        assert_eq!(t.states().len(), 2);
        let mut buf = Vec::new();
        t.write_prv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1], "1:1:1:1:1:0:10:1");
        assert_eq!(lines[2], "1:1:1:1:1:10:20:2");
        assert!(lines[3].starts_with("2:"));
    }

    #[test]
    fn pcf_names_states() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_pcf(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("dependency stall"));
    }

    #[test]
    fn kind_codes_are_distinct() {
        let codes = [
            kind_code(MissKind::Ifetch),
            kind_code(MissKind::Load),
            kind_code(MissKind::Store),
            kind_code(MissKind::Writeback),
        ];
        let set: std::collections::BTreeSet<u64> = codes.into_iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn prv_round_trips_through_parse() {
        let mut t = sample();
        t.record_state(StateInterval {
            core: 1,
            start: 0,
            end: 12,
            state: STATE_RUNNING,
        });
        let mut buf = Vec::new();
        t.write_prv(&mut buf).unwrap();
        let parsed = Trace::parse_prv(&String::from_utf8(buf).unwrap()).unwrap();
        assert_eq!(parsed.events(), t.events());
        assert_eq!(parsed.states(), t.states());
    }

    #[test]
    fn parse_accepts_pre_pc_ten_field_records() {
        let old = "#Paraver (x):20:1(1):1:1(1:1)
2:1:1:1:1:10:42000001:2:42000002:4096
";
        let parsed = Trace::parse_prv(old).unwrap();
        assert_eq!(parsed.events().len(), 1);
        assert_eq!(parsed.events()[0].line_addr, 4096);
        assert_eq!(parsed.events()[0].pc, 0, "missing PC defaults to 0");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::parse_prv("").is_err());
        assert!(Trace::parse_prv(
            "not a header
"
        )
        .is_err());
        let bad_record = "#Paraver (x):10:1(1):1:1(1:1)
9:1:1:1:1:0:1:1
";
        assert!(Trace::parse_prv(bad_record).is_err());
    }

    #[test]
    fn empty_trace_writes_valid_header() {
        let t = Trace::new(1);
        let mut buf = Vec::new();
        t.write_prv(&mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().starts_with("#Paraver"));
    }
}
