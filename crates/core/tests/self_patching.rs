//! Regression: stores into the text segment must invalidate the
//! predecoded `DecodedText` entries (and abort any fused superblock
//! run containing them). The table is built once at load; before the
//! invalidation hook a self-patching kernel silently kept executing
//! the stale micro-op. The kernel below runs a hot loop (fusable:
//! straight-line, cache-resident), patches the loop body's `addi`
//! in place, and re-runs it — the exit code proves which semantics
//! executed.

use coyote::{SimConfig, Simulation};

/// Ten iterations of `addi a0, a0, 1`, then the word is patched to
/// `addi a0, a0, 2` (0x0025_0513) and the loop runs ten more times:
/// a0 = 10 * 1 + 10 * 2 = 30 iff the patch takes effect.
const SELF_PATCHING: &str = "
    .text
    _start:
        li s1, 2            # phases remaining
        li a0, 0
    restart:
        li s0, 10           # iterations per phase
    patchme:
        addi a0, a0, 1      # patched to `addi a0, a0, 2` for phase 2
        addi s0, s0, -1
        bnez s0, patchme
        addi s1, s1, -1
        beqz s1, done
        la t0, patchme
        li t1, 0x00250513   # addi a0, a0, 2
        sw t1, 0(t0)
        j restart
    done:
        li a7, 93
        ecall";

fn run(oracle: bool, fusion: bool) -> (Vec<i64>, u64, f64) {
    let (exits, digest, hit, _) = run_certify(oracle, fusion, false);
    (exits, digest, hit)
}

fn run_certify(oracle: bool, fusion: bool, certify: bool) -> (Vec<i64>, u64, f64, bool) {
    let program = coyote_asm::assemble(SELF_PATCHING).expect("assemble");
    let config = SimConfig::builder()
        .cores(1)
        .oracle(oracle)
        .fusion(fusion)
        .certify(certify)
        .build()
        .expect("valid config");
    let mut sim = Simulation::new(config, &program).expect("create sim");
    let report = sim.run().expect("run completes");
    (
        report.exit_codes().expect("all harts exited"),
        sim.determinism_digest(),
        report.block_hit_rate(),
        sim.certificate_active(),
    )
}

#[test]
fn patched_instruction_reexecutes_with_new_semantics_under_oracle() {
    // The oracle steps a functional twin in lockstep; a stale decode
    // on either side diverges and fails the run outright.
    let (exits, _, _) = run(true, true);
    assert_eq!(exits, vec![30], "patched addi must add 2 in phase 2");
}

#[test]
fn fused_runs_see_the_patch_and_match_per_instruction_stepping() {
    // Fusion on: the hot loop retires through validated superblock
    // runs, so the store must bump the text generation, abort the
    // armed run, and force re-validation over the patched slot.
    let (fused_exits, fused_digest, hit) = run(false, true);
    assert_eq!(fused_exits, vec![30]);
    assert!(
        hit > 0.0,
        "the hot loop must actually exercise the fused path"
    );
    // Fusion off: the reference per-instruction schedule.
    let (plain_exits, plain_digest, plain_hit) = run(false, false);
    assert_eq!(plain_exits, vec![30]);
    assert_eq!(plain_hit, 0.0, "fusion off must not fuse");
    assert_eq!(
        fused_digest, plain_digest,
        "fused execution diverged from per-instruction stepping"
    );
}

#[test]
fn text_store_revokes_the_disjointness_certificate_mid_run() {
    // A single hart is trivially separable, so the static analysis
    // grants a certificate at load time — but the certificate is tied
    // to the text generation it analyzed. The self-patch invalidates
    // the predecoded text, so by run end the certificate must be gone
    // (the analyzed program is no longer the one executing), and the
    // patched semantics must still hold, bit-identical to the
    // uncertified schedule.
    let (exits, digest, _, active) = run_certify(false, true, true);
    assert_eq!(exits, vec![30], "patched addi must add 2 in phase 2");
    assert!(
        !active,
        "the text store must revoke the load-time certificate"
    );
    let (plain_exits, plain_digest, _, plain_active) = run_certify(false, true, false);
    assert_eq!(plain_exits, vec![30]);
    assert!(!plain_active, "certify off must never report a certificate");
    assert_eq!(
        digest, plain_digest,
        "revoked-certificate run diverged from the uncertified schedule"
    );
}
