//! Integration test for the `coyote-sim` command-line driver.

use std::io::Write;
use std::process::Command;

fn sim_binary() -> &'static str {
    env!("CARGO_BIN_EXE_coyote-sim")
}

fn write_temp_program(name: &str, source: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("coyote-sim-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    let mut file = std::fs::File::create(&path).expect("create temp file");
    file.write_all(source.as_bytes()).expect("write program");
    path
}

#[test]
fn runs_a_program_and_propagates_exit_code() {
    let path = write_temp_program(
        "exit7.s",
        "_start:
            li a0, 7
            li a7, 93
            ecall",
    );
    let output = Command::new(sim_binary())
        .arg(&path)
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(7));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cycles:"), "report on stderr: {stderr}");
}

#[test]
fn prints_console_output_on_stdout() {
    let path = write_temp_program(
        "print.s",
        "_start:
            li a0, 104     # 'h'
            li a7, 64
            ecall
            li a0, 105     # 'i'
            ecall
            li a0, 0
            li a7, 93
            ecall",
    );
    let output = Command::new(sim_binary())
        .arg(&path)
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&output.stdout), "hi\n");
}

#[test]
fn multicore_flags_and_trace_output() {
    let path = write_temp_program(
        "multi.s",
        "_start:
            csrr t0, mhartid
            li a0, 0
            li a7, 93
            ecall",
    );
    let trace = std::env::temp_dir().join("coyote-sim-tests/trace-out");
    let output = Command::new(sim_binary())
        .arg(&path)
        .args(["--cores", "4", "--l2-private", "--mapping", "page"])
        .args(["--prefetch", "2", "--noc-latency", "3"])
        .arg("--trace")
        .arg(&trace)
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(0));
    let prv = trace.with_extension("prv");
    let contents = std::fs::read_to_string(&prv).expect("trace written");
    assert!(contents.starts_with("#Paraver"));
    assert!(trace.with_extension("pcf").exists());
}

#[test]
fn bad_arguments_fail_cleanly() {
    let output = Command::new(sim_binary())
        .arg("--cores")
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--cores"));

    let output = Command::new(sim_binary())
        .arg("/nonexistent/file.s")
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn assembly_errors_point_at_the_line() {
    let path = write_temp_program(
        "broken.s",
        "_start:
            nop
            bogus_mnemonic a0",
    );
    let output = Command::new(sim_binary())
        .arg(&path)
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("line 3"), "stderr: {stderr}");
}

#[test]
fn every_documented_flag_parses() {
    let path = write_temp_program(
        "flags.s",
        "_start:
            li a0, 0
            li a7, 93
            ecall",
    );
    let trace = std::env::temp_dir().join("coyote-sim-tests/flags-trace");
    let metrics = std::env::temp_dir().join("coyote-sim-tests/flags-metrics");
    let chrome = std::env::temp_dir().join("coyote-sim-tests/flags-chrome.json");
    let output = Command::new(sim_binary())
        .arg(&path)
        .args([
            "--cores",
            "4",
            "--cores-per-tile",
            "2",
            "--banks-per-tile",
            "2",
        ])
        .args(["--l2-private", "--mapping", "set", "--noc-latency", "2"])
        .args(["--mesh", "2x2", "--prefetch", "1", "--interleave", "2"])
        .args(["--max-cycles", "100000", "--metrics-interval", "500"])
        .args(["--top-k", "16"])
        .arg("--trace")
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        .arg("--chrome-trace")
        .arg(&chrome)
        .arg("--oracle")
        .output()
        .expect("spawn coyote-sim");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(0), "stderr: {stderr}");
}

#[test]
fn metrics_out_writes_well_formed_json_and_csv() {
    let path = write_temp_program(
        "metrics.s",
        ".data
         buf: .zero 1024
         .text
         _start:
            la t0, buf
            li t1, 16
         loop:
            ld t2, 0(t0)
            sd t2, 8(t0)
            addi t0, t0, 64
            addi t1, t1, -1
            bnez t1, loop
            li a0, 0
            li a7, 93
            ecall",
    );
    let metrics = std::env::temp_dir().join("coyote-sim-tests/metrics-out");
    let output = Command::new(sim_binary())
        .arg(&path)
        .args(["--cores", "2", "--metrics-interval", "1000"])
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(0));

    let text = std::fs::read_to_string(metrics.with_extension("json")).expect("metrics json");
    let doc = coyote_telemetry::parse_json(&text).expect("valid JSON");
    assert_eq!(
        doc.get("schema_version")
            .and_then(coyote_telemetry::JsonValue::as_u64),
        Some(coyote::SCHEMA_VERSION)
    );
    assert!(doc
        .get("histograms")
        .is_some_and(|h| h.get("stages").is_some()));

    let csv = std::fs::read_to_string(metrics.with_extension("csv")).expect("metrics csv");
    let header = csv.lines().next().expect("csv header");
    assert!(
        header.starts_with("epoch,start,end,retired,ipc"),
        "{header}"
    );
    assert!(csv.lines().count() > 1, "csv has at least one epoch row");
}

#[test]
fn chrome_trace_flag_writes_trace_event_json() {
    let path = write_temp_program(
        "chrome.s",
        ".data
         v: .dword 3
         .text
         _start:
            la t0, v
            ld t1, 0(t0)
            li a0, 0
            li a7, 93
            ecall",
    );
    let chrome = std::env::temp_dir().join("coyote-sim-tests/chrome-out.json");
    let output = Command::new(sim_binary())
        .arg(&path)
        .arg("--chrome-trace")
        .arg(&chrome)
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(0));

    let text = std::fs::read_to_string(&chrome).expect("chrome trace");
    let doc = coyote_telemetry::parse_json(&text).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for event in events {
        let ph = event.get("ph").and_then(|v| v.as_str()).expect("ph field");
        // X = slice, M = metadata, s/f = stall-attribution flow pair.
        assert!(
            ph == "X" || ph == "M" || ph == "s" || ph == "f",
            "unexpected phase {ph}"
        );
    }
}

#[test]
fn zero_metrics_interval_is_rejected() {
    let path = write_temp_program(
        "zero-interval.s",
        "_start:
            li a0, 0
            li a7, 93
            ecall",
    );
    let metrics = std::env::temp_dir().join("coyote-sim-tests/zero-interval-metrics");
    let output = Command::new(sim_binary())
        .arg(&path)
        .args(["--metrics-interval", "0"])
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("metrics_interval"), "stderr: {stderr}");

    let output = Command::new(sim_binary())
        .arg(&path)
        .args(["--top-k", "0"])
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("attribution_top_k"), "stderr: {stderr}");
}

#[test]
fn empty_output_paths_are_rejected() {
    let path = write_temp_program(
        "empty-path.s",
        "_start:
            li a0, 0
            li a7, 93
            ecall",
    );
    for flag in [
        "--metrics-out",
        "--chrome-trace",
        "--prof-out",
        "--status-out",
        "--crash-out",
        "--stop-file",
    ] {
        for bad in ["", "   "] {
            let output = Command::new(sim_binary())
                .arg(&path)
                .args([flag, bad])
                .output()
                .expect("spawn coyote-sim");
            assert_eq!(
                output.status.code(),
                Some(1),
                "{flag} {bad:?} should be rejected"
            );
            let stderr = String::from_utf8_lossy(&output.stderr);
            assert!(
                stderr.contains(&format!("{flag} needs a non-empty path")),
                "stderr for {flag} {bad:?}: {stderr}"
            );
        }
    }
}

#[test]
fn zero_status_interval_is_rejected() {
    let path = write_temp_program(
        "zero-status.s",
        "_start:
            li a0, 0
            li a7, 93
            ecall",
    );
    let status_file = std::env::temp_dir().join("coyote-sim-tests/zero-status.jsonl");
    let output = Command::new(sim_binary())
        .arg(&path)
        .arg("--status-out")
        .arg(&status_file)
        .args(["--status-interval", "0"])
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--status-interval must be at least 1"),
        "stderr: {stderr}"
    );
}

#[test]
fn status_stream_feeds_coyote_top() {
    let path = write_temp_program(
        "status.s",
        ".data
         buf: .zero 2048
         .text
         _start:
            csrr t0, mhartid
            slli t0, t0, 7
            la t1, buf
            add t1, t1, t0
            li t2, 8
         loop:
            ld t3, 0(t1)
            sd t3, 8(t1)
            addi t1, t1, 64
            addi t2, t2, -1
            bnez t2, loop
            li a0, 0
            li a7, 93
            ecall",
    );
    let status_file = std::env::temp_dir().join("coyote-sim-tests/status.jsonl");
    let output = Command::new(sim_binary())
        .arg(&path)
        .args(["--cores", "2"])
        .arg("--status-out")
        .arg(&status_file)
        .args(["--status-interval", "1"])
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(0));

    // The stream is non-empty, parseable, and passes the watcher's CI
    // gate.
    let text = std::fs::read_to_string(&status_file).expect("status file");
    assert!(text.lines().any(|l| !l.trim().is_empty()));
    let top_bin = env!("CARGO_BIN_EXE_coyote-top");
    let output = Command::new(top_bin)
        .arg(&status_file)
        .args(["--once", "--check"])
        .output()
        .expect("spawn coyote-top");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(0), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("coyote-top"), "{stdout}");
    assert!(stdout.contains("core   0"), "{stdout}");
    assert!(stdout.contains("core   1"), "{stdout}");

    // The watcher rejects a malformed stream.
    let broken = std::env::temp_dir().join("coyote-sim-tests/broken-status.jsonl");
    std::fs::write(&broken, "{\"seq\": 1}\n").expect("write broken stream");
    let output = Command::new(top_bin)
        .arg(&broken)
        .args(["--once", "--check"])
        .output()
        .expect("spawn coyote-top");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("missing pinned key"), "stderr: {stderr}");
}

#[test]
fn stop_file_truncates_the_run_with_a_crash_dump() {
    // A long-running kernel; the stop file exists before launch, so
    // the watchdog fires on its first poll and the run stops after a
    // cycle boundary.
    let path = write_temp_program(
        "stoppable.s",
        "_start:
            li t0, 50000000
        loop:
            addi t0, t0, -1
            bnez t0, loop
            li a0, 0
            li a7, 93
            ecall",
    );
    let dir = std::env::temp_dir().join("coyote-sim-tests");
    let stop = dir.join("stop-now");
    std::fs::write(&stop, b"").expect("create stop file");
    let metrics = dir.join("stopped-metrics");
    let crash = dir.join("stopped-crash.json");
    let output = Command::new(sim_binary())
        .arg(&path)
        .arg("--stop-file")
        .arg(&stop)
        .arg("--metrics-out")
        .arg(&metrics)
        .arg("--crash-out")
        .arg(&crash)
        .output()
        .expect("spawn coyote-sim");
    let _ = std::fs::remove_file(&stop);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(130), "stderr: {stderr}");
    assert!(stderr.contains("stop requested"), "stderr: {stderr}");

    // Partial metrics are marked truncated.
    let text = std::fs::read_to_string(metrics.with_extension("json")).expect("metrics json");
    let doc = coyote_telemetry::parse_json(&text).expect("valid JSON");
    assert_eq!(
        doc.get("report")
            .and_then(|r| r.get("truncated"))
            .map(coyote_telemetry::JsonValue::to_string_compact),
        Some("true".to_owned())
    );

    // The crash dump parses and names the stop.
    let text = std::fs::read_to_string(&crash).expect("crash dump");
    let dump = coyote_telemetry::parse_json(&text).expect("valid crash JSON");
    assert_eq!(
        dump.get("reason")
            .and_then(coyote_telemetry::JsonValue::as_str),
        Some("stopped")
    );
    assert!(dump.get("flight_recorder").is_some());
}

#[test]
fn explain_checks_a_metrics_document() {
    let path = write_temp_program(
        "explain.s",
        ".data
         buf: .zero 2048
         .text
         _start:
            la t0, buf
            li t1, 24
         loop:
            ld t2, 0(t0)
            addi t3, t2, 1    # RAW behind the load: dep stalls
            sd t3, 8(t0)
            addi t0, t0, 64
            addi t1, t1, -1
            bnez t1, loop
            li a0, 0
            li a7, 93
            ecall",
    );
    let metrics = std::env::temp_dir().join("coyote-sim-tests/explain-metrics");
    let status = Command::new(sim_binary())
        .arg(&path)
        .args(["--cores", "2", "--metrics-interval", "200"])
        .arg("--metrics-out")
        .arg(&metrics)
        .status()
        .expect("spawn coyote-sim");
    assert!(status.success());

    let explain_bin = env!("CARGO_BIN_EXE_coyote-explain");
    let output = Command::new(explain_bin)
        .arg(metrics.with_extension("json"))
        .args(["--check", "--top", "5"])
        .output()
        .expect("spawn coyote-explain");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(0), "stderr: {stderr}");
    assert!(stdout.contains("Per-core CPI stack"), "{stdout}");
    assert!(stdout.contains("Top critical PCs"), "{stdout}");
    assert!(stdout.contains("check: OK"), "{stdout}");

    // Unreadable input fails cleanly.
    let output = Command::new(explain_bin)
        .arg("/nonexistent/metrics.json")
        .output()
        .expect("spawn coyote-explain");
    assert_eq!(output.status.code(), Some(1));

    let output = Command::new(explain_bin)
        .arg("--frobnicate")
        .output()
        .expect("spawn coyote-explain");
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--frobnicate"));
}

#[test]
fn unknown_flags_fail_with_usage_hint() {
    let output = Command::new(sim_binary())
        .arg("--frobnicate")
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--frobnicate"), "stderr: {stderr}");

    let stats_bin = env!("CARGO_BIN_EXE_coyote-trace-stats");
    let output = Command::new(stats_bin)
        .args(["trace.prv", "--frobnicate"])
        .output()
        .expect("spawn coyote-trace-stats");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--frobnicate"), "stderr: {stderr}");
}

#[test]
fn trace_stats_shows_idle_cores_and_emits_json() {
    // Core 0 does memory work; cores 1..3 exit immediately. The
    // breakdown must still print one row per header core.
    let path = write_temp_program(
        "idle.s",
        ".data
         x: .dword 7
         .text
         _start:
            csrr t0, mhartid
            bnez t0, done
            la t1, x
            ld t2, 0(t1)
         done:
            li a0, 0
            li a7, 93
            ecall",
    );
    let trace = std::env::temp_dir().join("coyote-sim-tests/idle-trace");
    let status = Command::new(sim_binary())
        .arg(&path)
        .args(["--cores", "4"])
        .arg("--trace")
        .arg(&trace)
        .status()
        .expect("spawn coyote-sim");
    assert!(status.success());

    let stats_bin = env!("CARGO_BIN_EXE_coyote-trace-stats");
    let output = Command::new(stats_bin)
        .arg(trace.with_extension("prv"))
        .output()
        .expect("spawn coyote-trace-stats");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    for core in 0..4 {
        assert!(
            stdout.contains(&format!("\n  {core:>4}  ")),
            "missing row for core {core}: {stdout}"
        );
    }

    let output = Command::new(stats_bin)
        .arg(trace.with_extension("prv"))
        .arg("--json")
        .output()
        .expect("spawn coyote-trace-stats --json");
    assert_eq!(output.status.code(), Some(0));
    let doc = coyote_telemetry::parse_json(&String::from_utf8_lossy(&output.stdout))
        .expect("valid JSON from --json");
    assert_eq!(
        doc.get("cores")
            .and_then(coyote_telemetry::JsonValue::as_u64),
        Some(4)
    );
    let per_core = doc
        .get("per_core")
        .and_then(|v| v.as_array())
        .expect("per_core array");
    assert_eq!(per_core.len(), 4);
}

#[test]
fn trace_stats_summarizes_a_trace() {
    let path = write_temp_program(
        "traced.s",
        ".data
         x: .dword 7
         .text
         _start:
            la t0, x
            ld t1, 0(t0)
            addi t2, t1, 1
            li a0, 0
            li a7, 93
            ecall",
    );
    let trace = std::env::temp_dir().join("coyote-sim-tests/stats-trace");
    let status = Command::new(sim_binary())
        .arg(&path)
        .args(["--cores", "2"])
        .arg("--trace")
        .arg(&trace)
        .status()
        .expect("spawn coyote-sim");
    assert!(status.success());

    let stats_bin = env!("CARGO_BIN_EXE_coyote-trace-stats");
    let output = Command::new(stats_bin)
        .arg(trace.with_extension("prv"))
        .output()
        .expect("spawn coyote-trace-stats");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("miss mix"), "{stdout}");
    assert!(stdout.contains("per-core time breakdown"), "{stdout}");
    assert!(stdout.contains("data load"), "{stdout}");
}
