//! Integration test for the `coyote-sim` command-line driver.

use std::io::Write;
use std::process::Command;

fn sim_binary() -> &'static str {
    env!("CARGO_BIN_EXE_coyote-sim")
}

fn write_temp_program(name: &str, source: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("coyote-sim-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    let mut file = std::fs::File::create(&path).expect("create temp file");
    file.write_all(source.as_bytes()).expect("write program");
    path
}

#[test]
fn runs_a_program_and_propagates_exit_code() {
    let path = write_temp_program(
        "exit7.s",
        "_start:
            li a0, 7
            li a7, 93
            ecall",
    );
    let output = Command::new(sim_binary())
        .arg(&path)
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(7));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cycles:"), "report on stderr: {stderr}");
}

#[test]
fn prints_console_output_on_stdout() {
    let path = write_temp_program(
        "print.s",
        "_start:
            li a0, 104     # 'h'
            li a7, 64
            ecall
            li a0, 105     # 'i'
            ecall
            li a0, 0
            li a7, 93
            ecall",
    );
    let output = Command::new(sim_binary())
        .arg(&path)
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&output.stdout), "hi\n");
}

#[test]
fn multicore_flags_and_trace_output() {
    let path = write_temp_program(
        "multi.s",
        "_start:
            csrr t0, mhartid
            li a0, 0
            li a7, 93
            ecall",
    );
    let trace = std::env::temp_dir().join("coyote-sim-tests/trace-out");
    let output = Command::new(sim_binary())
        .arg(&path)
        .args(["--cores", "4", "--l2-private", "--mapping", "page"])
        .args(["--prefetch", "2", "--noc-latency", "3"])
        .arg("--trace")
        .arg(&trace)
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(0));
    let prv = trace.with_extension("prv");
    let contents = std::fs::read_to_string(&prv).expect("trace written");
    assert!(contents.starts_with("#Paraver"));
    assert!(trace.with_extension("pcf").exists());
}

#[test]
fn bad_arguments_fail_cleanly() {
    let output = Command::new(sim_binary())
        .arg("--cores")
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--cores"));

    let output = Command::new(sim_binary())
        .arg("/nonexistent/file.s")
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn assembly_errors_point_at_the_line() {
    let path = write_temp_program(
        "broken.s",
        "_start:
            nop
            bogus_mnemonic a0",
    );
    let output = Command::new(sim_binary())
        .arg(&path)
        .output()
        .expect("spawn coyote-sim");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("line 3"), "stderr: {stderr}");
}

#[test]
fn trace_stats_summarizes_a_trace() {
    let path = write_temp_program(
        "traced.s",
        ".data
         x: .dword 7
         .text
         _start:
            la t0, x
            ld t1, 0(t0)
            addi t2, t1, 1
            li a0, 0
            li a7, 93
            ecall",
    );
    let trace = std::env::temp_dir().join("coyote-sim-tests/stats-trace");
    let status = Command::new(sim_binary())
        .arg(&path)
        .args(["--cores", "2"])
        .arg("--trace")
        .arg(&trace)
        .status()
        .expect("spawn coyote-sim");
    assert!(status.success());

    let stats_bin = env!("CARGO_BIN_EXE_coyote-trace-stats");
    let output = Command::new(stats_bin)
        .arg(trace.with_extension("prv"))
        .output()
        .expect("spawn coyote-trace-stats");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("miss mix"), "{stdout}");
    assert!(stdout.contains("per-core time breakdown"), "{stdout}");
    assert!(stdout.contains("data load"), "{stdout}");
}
