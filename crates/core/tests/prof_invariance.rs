//! The host-profiler's non-negotiable invariant: profiling is pure
//! observation. For arbitrary machine shapes, kernels, job counts, and
//! perturbation seeds, a profiled run (wall or counter clock) must
//! yield a bit-identical determinism digest and byte-identical metrics
//! JSON — once the `host_profile` section itself is stripped — to the
//! same run with profiling off. Host clock reads must never leak into
//! simulated state.

use std::time::Duration;

use coyote::{JsonValue, L2Sharing, ProfMode, SimConfig, Simulation};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Machine {
    cores: usize,
    sharing: L2Sharing,
    iterations: u64,
}

fn machine_strategy() -> impl Strategy<Value = Machine> {
    (
        2usize..9,
        prop_oneof![Just(L2Sharing::Shared), Just(L2Sharing::Private)],
        4u64..32,
    )
        .prop_map(|(cores, sharing, iterations)| Machine {
            cores,
            sharing,
            iterations,
        })
}

/// Hart-partitioned load/store kernel (no conflicts) or a contended
/// one-dword kernel (conflict fallbacks every parallel cycle).
fn kernel(machine: &Machine, contended: bool) -> String {
    if contended {
        format!(
            "
            .data
            hot: .dword 0
            .text
            _start:
                csrr t0, mhartid
                la t1, hot
                li t2, {iters}
            loop:
                ld t3, 0(t1)
                add t3, t3, t0
                sd t3, 0(t1)
                addi t2, t2, -1
                bnez t2, loop
                li a0, 0
                li a7, 93
                ecall",
            iters = machine.iterations,
        )
    } else {
        format!(
            "
            .data
            buf: .zero 16384
            .text
            _start:
                csrr t0, mhartid
                la t1, buf
                slli t2, t0, 9
                add t1, t1, t2
                li t3, {iters}
            loop:
                ld t4, 0(t1)
                addi t4, t4, 1
                sd t4, 0(t1)
                addi t1, t1, 64
                addi t3, t3, -1
                bnez t3, loop
                mv a0, t0
                li a7, 93
                ecall",
            iters = machine.iterations,
        )
    }
}

/// Rebuilds the document without its `host_profile` member. Both the
/// unprofiled document (`"host_profile": null`) and profiled ones
/// carry the key, so stripping from *both* sides keeps the comparison
/// honest — a missing key would fail the schema test, not this one.
fn strip_host_profile(doc: JsonValue) -> JsonValue {
    match doc {
        JsonValue::Object(pairs) => JsonValue::Object(
            pairs
                .into_iter()
                .filter(|(key, _)| key != "host_profile")
                .collect(),
        ),
        other => other,
    }
}

/// Runs `src` with the given profiling mode, returning the determinism
/// digest, the metrics JSON bytes with `host_profile` stripped and
/// wall time zeroed (both are host observation, not model output),
/// and the full metrics document for section-level checks.
fn run(
    src: &str,
    machine: &Machine,
    jobs: usize,
    profiling: ProfMode,
    perturb: u64,
) -> (u64, String, JsonValue) {
    let program = coyote_asm::assemble(src).expect("assemble");
    let config = SimConfig::builder()
        .cores(machine.cores)
        .sharing(machine.sharing)
        .perturb_seed(perturb)
        .telemetry(true)
        .metrics_interval(64)
        .jobs(jobs)
        .profiling(profiling)
        .build()
        .expect("valid config");
    let mut sim = Simulation::new(config, &program).expect("create sim");
    let mut report = sim.run().expect("run completes");
    report.wall_time = Duration::ZERO;
    let doc = coyote::metrics_json(&sim, &report);
    let json = strip_host_profile(doc.clone()).to_string_pretty();
    (sim.determinism_digest(), json, doc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant: Off vs Wall vs Counter, sequential and
    /// parallel, partitioned and contended, perturbed and canonical —
    /// same digest, same metrics bytes.
    #[test]
    fn profiling_never_perturbs_the_simulation(
        machine in machine_strategy(),
        contended in any::<bool>(),
        perturb in prop_oneof![Just(0u64), 1u64..u64::MAX],
    ) {
        let src = kernel(&machine, contended);
        for jobs in [1usize, 4] {
            let (off_digest, off_json, off_doc) =
                run(&src, &machine, jobs, ProfMode::Off, perturb);
            prop_assert_eq!(
                off_doc.get("host_profile"),
                Some(&JsonValue::Null),
                "unprofiled run must export a null host_profile"
            );
            for mode in [ProfMode::Wall, ProfMode::Counter] {
                let (digest, json, doc) = run(&src, &machine, jobs, mode, perturb);
                prop_assert_eq!(
                    digest, off_digest,
                    "profiling leaked into the digest (mode={:?}, jobs={})",
                    mode, jobs
                );
                prop_assert_eq!(
                    &json, &off_json,
                    "profiling leaked into the metrics JSON (mode={:?}, jobs={})",
                    mode, jobs
                );
                prop_assert!(
                    doc.get("host_profile") != Some(&JsonValue::Null),
                    "profiled run exported no host_profile section"
                );
            }
        }
    }
}

/// Deterministic regression twin of the proptest: the exact fixed
/// shape the CI smoke uses, checked without proptest's shrinking in
/// the way.
#[test]
fn profiled_contended_run_matches_unprofiled() {
    let machine = Machine {
        cores: 4,
        sharing: L2Sharing::Shared,
        iterations: 24,
    };
    let src = kernel(&machine, true);
    let (off_digest, off_json, _) = run(&src, &machine, 4, ProfMode::Off, 0);
    for mode in [ProfMode::Wall, ProfMode::Counter] {
        let (digest, json, _) = run(&src, &machine, 4, mode, 0);
        assert_eq!(digest, off_digest, "digest diverged ({mode:?})");
        assert_eq!(json, off_json, "metrics JSON diverged ({mode:?})");
    }
}

/// Counter-mode profiles are a pure function of the simulated
/// schedule, so every simulation-derived section must be byte-stable
/// across job counts: the per-core fused-pipeline diagnostics, the
/// abort-reason taxonomy, the chunk-/run-length distributions, and
/// the event-pop total. Only the phase *tree* may differ (jobs = 4
/// takes the parallel phases; jobs = 1 never enters them).
#[test]
fn counter_profiles_aggregate_by_core_order_across_jobs() {
    let machine = Machine {
        cores: 4,
        sharing: L2Sharing::Shared,
        iterations: 24,
    };
    for contended in [false, true] {
        let src = kernel(&machine, contended);
        let (seq_digest, _, seq_doc) = run(&src, &machine, 1, ProfMode::Counter, 0);
        let (par_digest, _, par_doc) = run(&src, &machine, 4, ProfMode::Counter, 0);
        assert_eq!(
            seq_digest, par_digest,
            "digest diverged (contended={contended})"
        );
        let seq = seq_doc.get("host_profile").expect("profiled");
        let par = par_doc.get("host_profile").expect("profiled");
        for section in [
            "per_core",
            "abort_reasons",
            "chunk_lengths",
            "run_lengths",
            "event_pops",
        ] {
            let a = seq.get(section).expect("section present");
            let b = par.get(section).expect("section present");
            assert_eq!(
                a.to_string_pretty(),
                b.to_string_pretty(),
                "host_profile.{section} depends on the job count (contended={contended})"
            );
        }
        // And the phase trees do legitimately differ in shape: the
        // parallel run enters phases the sequential one never has.
        let seq_phases = seq.get("phases").expect("phases").to_string_pretty();
        let par_phases = par.get("phases").expect("phases").to_string_pretty();
        if contended {
            assert!(
                par_phases.contains("conflict_check"),
                "jobs=4 must enter the parallel conflict-check phase"
            );
        }
        assert!(
            !seq_phases.contains("shard_step"),
            "jobs=1 must never enter the parallel shard phase"
        );
    }
}
