//! Mutation tests of the differential co-simulation oracle: prove it
//! stays silent on clean runs and catches deliberately injected
//! timing-model corruption at the exact retiring instruction.

use coyote::{RunError, SimConfig, Simulation};
use coyote_isa::XReg;

fn sim(src: &str, config: SimConfig) -> Simulation {
    let program = coyote_asm::assemble(src).expect("valid program");
    Simulation::new(config, &program).expect("valid config")
}

const LOAD_CHAIN: &str = "
    .data
    x: .dword 7
    .text
    _start:
        la t0, x
        ld t1, 0(t0)
        addi t2, t1, 1
        sd t2, 8(t0)
        li a0, 0
        li a7, 93
        ecall";

#[test]
fn clean_run_is_oracle_silent() {
    let config = SimConfig::builder().cores(1).oracle(true).build().unwrap();
    let report = sim(LOAD_CHAIN, config).run().expect("oracle-clean run");
    assert_eq!(report.exit_codes(), Some(vec![0]));
}

#[test]
fn clean_multicore_amo_run_is_oracle_silent() {
    // Shared-counter AMOs race across harts; the oracle replays the
    // simulation's own retirement interleaving, so even racy programs
    // must check out clean.
    let src = "
        .data
        counter: .dword 0
        .text
        _start:
            la t0, counter
            li t1, 1
            amoadd.d t2, t1, (t0)
            amoadd.d t3, t1, (t0)
            li a0, 0
            li a7, 93
            ecall";
    let config = SimConfig::builder().cores(4).oracle(true).build().unwrap();
    let mut s = sim(src, config);
    let report = s.run().expect("oracle-clean run");
    assert_eq!(report.exit_codes(), Some(vec![0; 4]));
    let program = coyote_asm::assemble(src).unwrap();
    let counter = program.symbol("counter").unwrap();
    assert_eq!(s.memory().read_u64(counter), 8);
}

#[test]
fn injected_fill_corruption_is_caught_at_the_retiring_instruction() {
    let config = SimConfig::builder().cores(1).oracle(true).build().unwrap();
    let mut s = sim(LOAD_CHAIN, config);
    s.set_oracle_replay_seed(0x00c0_ffee);
    // Arm the fault: the first data fill delivers into t1 instead of
    // completing cleanly, corrupting the loaded value the dependent
    // addi consumes.
    let t1 = XReg::parse("t1").unwrap();
    s.inject_fill_corruption(0, t1);
    let err = s.run().expect_err("oracle must catch the corruption");
    let divergence = match err {
        RunError::OracleDivergence(d) => d,
        other => panic!("expected OracleDivergence, got {other}"),
    };
    // The corruption lands when the ld's line fill completes, so the
    // first retirement that can observe it is the dependent addi.
    assert_eq!(divergence.core, 0);
    assert!(divergence.cycle > 0);
    assert!(
        divergence.inst.starts_with("addi"),
        "diverged at `{}`, expected the dependent addi",
        divergence.inst
    );
    // The register delta names the corrupted register and both values.
    assert!(
        divergence.deltas.iter().any(|d| d.item.contains("t1")),
        "deltas: {:?}",
        divergence.deltas
    );
    assert!(!divergence.context.is_empty(), "per-core context missing");
    // The flight-recorder tail rides along: the corrupting fill is the
    // last completion the recorder saw before the diverging retirement.
    assert!(
        !divergence.trail.is_empty(),
        "flight-recorder trail missing"
    );
    assert!(
        divergence.trail.iter().any(|l| l.contains("completion")),
        "trail should mention the corrupting fill: {:?}",
        divergence.trail
    );
    let rendered = divergence.to_string();
    assert!(rendered.contains("recent events:"), "{rendered}");
    assert!(rendered.contains("core 0"), "{rendered}");
    assert!(rendered.contains("cycle"), "{rendered}");
    assert!(
        rendered.contains(&format!("{:#x}", divergence.pc)),
        "{rendered}"
    );
    assert!(rendered.contains("replay seed"), "{rendered}");
}

#[test]
fn corruption_without_oracle_goes_unnoticed() {
    // Control case: the same fault with the oracle off silently
    // corrupts the result — which is exactly why the oracle exists.
    let config = SimConfig::builder().cores(1).build().unwrap();
    let mut s = sim(LOAD_CHAIN, config);
    s.inject_fill_corruption(0, XReg::parse("t1").unwrap());
    let report = s.run().expect("runs to completion");
    assert_eq!(report.exit_codes(), Some(vec![0]));
    let program = coyote_asm::assemble(LOAD_CHAIN).unwrap();
    let x = program.symbol("x").unwrap();
    assert_ne!(s.memory().read_u64(x + 8), 8, "fault should corrupt x+8");
}

#[test]
fn deadlock_report_carries_core_snapshots() {
    use coyote::{CoreSnapshot, StallInfo};
    use coyote_iss::CoreState;

    let err = RunError::Deadlock {
        cycle: 1234,
        cores: vec![CoreSnapshot {
            core: 0,
            state: CoreState::StalledDep,
            pc: 0x8000_0040,
            in_flight_lines: 2,
            pending_fetch: None,
            retired: 17,
        }],
        stalls: vec![StallInfo {
            core: 0,
            pc: 0x8000_0040,
            line: Some(0x8100_0000),
            bank: Some(3),
            issue_pc: Some(0x8000_0038),
        }],
    };
    let rendered = err.to_string();
    assert!(rendered.contains("deadlock at cycle 1234"), "{rendered}");
    assert!(rendered.contains("0x80000040"), "{rendered}");
    assert!(rendered.contains("StalledDep"), "{rendered}");
    assert!(rendered.contains("2 data line(s) in flight"), "{rendered}");
    assert!(rendered.contains("17 retired"), "{rendered}");
    // The stall attribution rides along with the snapshots.
    assert!(rendered.contains("blocked on:"), "{rendered}");
    assert!(rendered.contains("0x81000000"), "{rendered}");
    assert!(rendered.contains("bank 3"), "{rendered}");
    assert!(rendered.contains("0x80000038"), "{rendered}");
}
