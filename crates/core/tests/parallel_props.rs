//! Property tests of the deterministic parallel execute phase: for
//! arbitrary machine shapes and kernels, a `jobs = 4` run must be
//! bit-identical to the `jobs = 1` sequential schedule — same
//! determinism digest, byte-identical metrics JSON, and oracle-clean —
//! whether the kernel partitions memory cleanly or hammers one shared
//! dword hard enough to force conflict fallbacks every cycle.

use std::time::Duration;

use coyote::{L2Sharing, SimConfig, Simulation};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Machine {
    cores: usize,
    sharing: L2Sharing,
    iterations: u64,
    stride: u64,
}

fn machine_strategy() -> impl Strategy<Value = Machine> {
    (
        2usize..9,
        prop_oneof![Just(L2Sharing::Shared), Just(L2Sharing::Private)],
        4u64..32,
        prop_oneof![Just(8u64), Just(64), Just(72)],
    )
        .prop_map(|(cores, sharing, iterations, stride)| Machine {
            cores,
            sharing,
            iterations,
            stride,
        })
}

/// Hart-partitioned load/store kernel: each hart walks its own slice,
/// so parallel cycles commit without conflicts.
fn partitioned_kernel(machine: &Machine) -> String {
    format!(
        "
        .data
        buf: .zero 16384
        .text
        _start:
            csrr t0, mhartid
            la t1, buf
            slli t2, t0, 9
            add t1, t1, t2
            li t3, {iters}
        loop:
            ld t4, 0(t1)
            addi t4, t4, 1
            sd t4, 0(t1)
            addi t1, t1, {stride}
            addi t3, t3, -1
            bnez t3, loop
            mv a0, t0
            li a7, 93
            ecall",
        iters = machine.iterations,
        stride = machine.stride,
    )
}

/// Contended kernel: every hart read-modify-writes the SAME dword, so
/// any same-cycle pair of active cores overlaps and the parallel phase
/// must discard its shards and re-run those cycles sequentially.
fn contended_kernel(iterations: u64) -> String {
    format!(
        "
        .data
        hot: .dword 0
        .text
        _start:
            csrr t0, mhartid
            la t1, hot
            li t2, {iterations}
        loop:
            ld t3, 0(t1)
            add t3, t3, t0
            sd t3, 0(t1)
            addi t2, t2, -1
            bnez t2, loop
            li a0, 0
            li a7, 93
            ecall",
    )
}

/// Runs `src` with the given `jobs`, returning the determinism digest,
/// the metrics JSON bytes (wall time zeroed: it is host noise, not
/// model output), and the conflict-fallback count. The oracle is on,
/// so any timed-vs-functional divergence fails the run outright.
fn run(src: &str, machine: &Machine, jobs: usize) -> (u64, String, u64) {
    let program = coyote_asm::assemble(src).expect("assemble");
    let config = SimConfig::builder()
        .cores(machine.cores)
        .sharing(machine.sharing)
        .oracle(true)
        .telemetry(true)
        .metrics_interval(64)
        .jobs(jobs)
        .build()
        .expect("valid config");
    let mut sim = Simulation::new(config, &program).expect("create sim");
    let mut report = sim.run().expect("oracle-clean run");
    report.wall_time = Duration::ZERO;
    let json = coyote::metrics_json(&sim, &report).to_string_pretty();
    (sim.determinism_digest(), json, sim.conflict_fallbacks())
}

/// Runs `src` with superblock fusion on or off (no oracle: fused
/// *windows* are gated off under the oracle, and the point here is
/// comparing window execution against plain per-instruction stepping),
/// returning the digest and metrics JSON bytes.
fn run_fusion(
    src: &str,
    machine: &Machine,
    jobs: usize,
    fusion: bool,
    perturb: u64,
) -> (u64, String) {
    let program = coyote_asm::assemble(src).expect("assemble");
    let config = SimConfig::builder()
        .cores(machine.cores)
        .sharing(machine.sharing)
        .fusion(fusion)
        .perturb_seed(perturb)
        .telemetry(true)
        .metrics_interval(64)
        .jobs(jobs)
        .build()
        .expect("valid config");
    let mut sim = Simulation::new(config, &program).expect("create sim");
    let mut report = sim.run().expect("run completes");
    report.wall_time = Duration::ZERO;
    let json = coyote::metrics_json(&sim, &report).to_string_pretty();
    (sim.determinism_digest(), json)
}

/// Drops the translation-coverage counters (`fused_retired`,
/// `block_hit_rate`) and the `fusion` config echo from pretty-printed
/// metrics JSON: they report how much work took the fused path (and
/// whether it was enabled), so they legitimately differ between fusion
/// on and off while every model-output field must not.
fn strip_coverage_counters(json: &str) -> String {
    let stripped: Vec<&str> = json
        .lines()
        .filter(|l| {
            !l.contains("fused_retired")
                && !l.contains("block_hit_rate")
                && !l.contains("\"fusion\"")
        })
        .collect();
    assert!(
        stripped.len() < json.lines().count(),
        "coverage counters missing from metrics JSON — schema drifted"
    );
    stripped.join("\n")
}

/// Deterministic regression twin of the contended proptest below: a
/// fixed machine whose harts all hammer one dword must take the
/// conflict-fallback path and still emit byte-identical metrics JSON
/// for `jobs = 1` vs `jobs = 4` — any request-lifecycle stamp or
/// histogram record surviving from a discarded shard attempt would
/// surface here as a JSON diff. Fusion stays on (the default), so
/// discarded shards, superblock windows, and the telemetry sink all
/// compose in one run.
#[test]
fn conflict_fallbacks_leave_no_telemetry_residue() {
    let machine = Machine {
        cores: 4,
        sharing: L2Sharing::Shared,
        iterations: 24,
        stride: 8,
    };
    let src = contended_kernel(24);
    let (seq_digest, seq_json, seq_fallbacks) = run(&src, &machine, 1);
    assert_eq!(seq_fallbacks, 0, "jobs=1 never runs the parallel phase");
    let (par_digest, par_json, fallbacks) = run(&src, &machine, 4);
    assert!(
        fallbacks > 0,
        "every hart hammers one dword; the conflict detector must fire"
    );
    assert_eq!(par_digest, seq_digest, "fallback changed the digest");
    assert_eq!(par_json, seq_json, "fallback left telemetry residue");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partitioned_kernels_match_sequential(machine in machine_strategy()) {
        let src = partitioned_kernel(&machine);
        let (seq_digest, seq_json, seq_fallbacks) = run(&src, &machine, 1);
        prop_assert_eq!(seq_fallbacks, 0, "jobs=1 never runs the parallel phase");
        let (par_digest, par_json, _) = run(&src, &machine, 4);
        prop_assert_eq!(par_digest, seq_digest, "determinism digest diverged");
        prop_assert_eq!(par_json, seq_json, "metrics JSON diverged");
    }

    #[test]
    fn fused_blocks_match_per_instruction_stepping(
        machine in machine_strategy(),
        contended in any::<bool>(),
        perturb in prop_oneof![Just(0u64), 1u64..u64::MAX],
    ) {
        // Reference: fusion off, sequential, canonical schedule — the
        // plain per-instruction interleaving everything must equal.
        let src = if contended {
            contended_kernel(machine.iterations)
        } else {
            partitioned_kernel(&machine)
        };
        let (ref_digest, ref_json) = run_fusion(&src, &machine, 1, false, 0);
        let ref_scrubbed = strip_coverage_counters(&ref_json);
        let mut fused_jsons = Vec::new();
        for jobs in [1usize, 4] {
            let (digest, json) = run_fusion(&src, &machine, jobs, true, perturb);
            prop_assert_eq!(
                digest, ref_digest,
                "fused run diverged from per-instruction stepping (jobs={})", jobs
            );
            prop_assert_eq!(
                strip_coverage_counters(&json), ref_scrubbed.clone(),
                "fused metrics JSON diverged (jobs={})", jobs
            );
            fused_jsons.push(json);
        }
        // Within the fused configuration the JSON must be identical to
        // the last byte — including the coverage counters: translation
        // coverage is deterministic, not schedule-dependent.
        prop_assert_eq!(
            &fused_jsons[0], &fused_jsons[1],
            "fused coverage depends on the job count"
        );
    }

    #[test]
    fn contended_kernels_fall_back_and_still_match(
        machine in machine_strategy(),
        iterations in 8u64..48,
    ) {
        let src = contended_kernel(iterations);
        let (seq_digest, seq_json, _) = run(&src, &machine, 1);
        let (par_digest, par_json, fallbacks) = run(&src, &machine, 4);
        prop_assert!(
            fallbacks > 0,
            "every hart hammers one dword; the conflict detector must fire"
        );
        prop_assert_eq!(par_digest, seq_digest, "fallback changed the digest");
        prop_assert_eq!(par_json, seq_json, "fallback changed the metrics JSON");
    }
}
