//! Golden-file test pinning the metrics document schema.
//!
//! `tests/golden/metrics_schema.txt` lists the schema version and the
//! key paths downstream tooling may rely on. If this test fails you
//! changed the externally visible metrics schema: either restore the
//! old shape, or bump [`coyote::SCHEMA_VERSION`] and regenerate the
//! golden file to match (and mention the break in DESIGN.md).

use coyote::{metrics_json, JsonValue, ProfMode, SimConfig, Simulation};

fn metrics_document() -> JsonValue {
    let program = coyote_asm::assemble(
        ".data
         buf: .zero 2048
         .text
         _start:
            csrr t0, mhartid
            slli t0, t0, 7
            la t1, buf
            add t1, t1, t0
            li t2, 8
         loop:
            ld t3, 0(t1)
            sd t3, 8(t1)
            addi t1, t1, 64
            addi t2, t2, -1
            bnez t2, loop
            li a0, 0
            li a7, 93
            ecall",
    )
    .expect("assemble");
    // Counter-mode profiling keeps the document fully deterministic
    // while pinning the `host_profile` section's key paths too.
    let config = SimConfig::builder()
        .cores(2)
        .telemetry(true)
        .metrics_interval(200)
        .chrome_trace(true)
        .profiling(ProfMode::Counter)
        .build()
        .expect("config");
    let mut sim = Simulation::new(config, &program).expect("create sim");
    let report = sim.run().expect("run");
    metrics_json(&sim, &report)
}

/// Every `parent.child` key path present in `doc`, one level deep per
/// golden-file line (dotted paths address nested objects).
fn key_paths(doc: &JsonValue) -> Vec<String> {
    let mut paths = Vec::new();
    if let Some(keys) = doc.keys() {
        for key in keys {
            paths.push(key.to_owned());
        }
    }
    paths
}

fn lookup<'a>(doc: &'a JsonValue, path: &str) -> Option<&'a JsonValue> {
    let mut value = doc;
    for part in path.split('.') {
        value = value.get(part)?;
    }
    Some(value)
}

#[test]
fn metrics_schema_matches_golden_file() {
    let golden = include_str!("golden/metrics_schema.txt");
    let doc = metrics_document();

    let mut lines = golden.lines().filter(|l| !l.trim().is_empty());
    let version_line = lines.next().expect("golden file has a version line");
    let version: u64 = version_line
        .strip_prefix("schema_version=")
        .expect("first golden line is schema_version=N")
        .parse()
        .expect("numeric schema version");
    assert_eq!(
        coyote::SCHEMA_VERSION,
        version,
        "SCHEMA_VERSION changed; regenerate tests/golden/metrics_schema.txt"
    );
    assert_eq!(
        doc.get("schema_version").and_then(JsonValue::as_u64),
        Some(version)
    );

    // Every golden key path must exist in the document...
    for path in lines.clone() {
        assert!(
            lookup(&doc, path).is_some(),
            "metrics document lost pinned key `{path}` — \
             bump SCHEMA_VERSION and update the golden file"
        );
    }

    // ...and no new top-level keys may appear unpinned.
    let pinned_top: Vec<&str> = lines.filter(|l| !l.contains('.')).collect();
    assert_eq!(
        key_paths(&doc),
        pinned_top,
        "top-level key set changed — bump SCHEMA_VERSION and update the golden file"
    );
}
