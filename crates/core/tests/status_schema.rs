//! Golden-file test pinning the status-snapshot JSON-lines schema.
//!
//! `tests/golden/status_schema.txt` lists the schema version and the
//! key paths `coyote-top` (and any external watcher) may rely on. If
//! this test fails you changed the externally visible status-line
//! shape: either restore the old shape, or bump
//! [`coyote::SCHEMA_VERSION`] and regenerate the golden file to match
//! (and mention the break in DESIGN.md).

use std::path::PathBuf;

use coyote::{parse_json, JsonValue, SimConfig, Simulation, StatusEmitter};

/// Runs a small two-core kernel with a status stream attached and
/// returns the last emitted snapshot line, parsed.
fn last_snapshot() -> JsonValue {
    let program = coyote_asm::assemble(
        ".data
         buf: .zero 1024
         .text
         _start:
            csrr t0, mhartid
            slli t0, t0, 6
            la t1, buf
            add t1, t1, t0
            li t2, 4
         loop:
            ld t3, 0(t1)
            sd t3, 8(t1)
            addi t2, t2, -1
            bnez t2, loop
            li a0, 0
            li a7, 93
            ecall",
    )
    .expect("assemble");
    let config = SimConfig::builder().cores(2).build().expect("config");
    let mut sim = Simulation::new(config, &program).expect("create sim");
    let dir = std::env::temp_dir().join("coyote-status-schema");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path: PathBuf = dir.join(format!("{}.jsonl", std::process::id()));
    let emitter = StatusEmitter::create(&path, 3_600_000).expect("emitter");
    sim.set_status(emitter);
    sim.run().expect("run completes");
    let text = std::fs::read_to_string(&path).expect("status file");
    let _ = std::fs::remove_file(&path);
    let line = text
        .lines()
        .rfind(|l| !l.trim().is_empty())
        .expect("at least the final snapshot");
    parse_json(line).expect("snapshot line parses")
}

fn lookup<'a>(doc: &'a JsonValue, path: &str) -> Option<&'a JsonValue> {
    let mut value = doc;
    for part in path.split('.') {
        // Key paths under `cores` address the array's first element.
        if let Some(items) = value.as_array() {
            value = items.first()?;
        }
        value = value.get(part)?;
    }
    Some(value)
}

#[test]
fn status_schema_matches_golden_file() {
    let golden = include_str!("golden/status_schema.txt");
    let snap = last_snapshot();

    let mut lines = golden.lines().filter(|l| !l.trim().is_empty());
    let version_line = lines.next().expect("golden file has a version line");
    let version: u64 = version_line
        .strip_prefix("schema_version=")
        .expect("first golden line is schema_version=N")
        .parse()
        .expect("numeric schema version");
    assert_eq!(
        coyote::SCHEMA_VERSION,
        version,
        "SCHEMA_VERSION changed; regenerate tests/golden/status_schema.txt"
    );
    assert_eq!(
        snap.get("schema_version").and_then(JsonValue::as_u64),
        Some(version)
    );

    // Every golden key path must exist in the snapshot line...
    for path in lines.clone() {
        assert!(
            lookup(&snap, path).is_some(),
            "status snapshot lost pinned key `{path}` — \
             bump SCHEMA_VERSION and update the golden file"
        );
    }

    // ...and no new top-level keys may appear unpinned.
    let pinned_top: Vec<&str> = lines.filter(|l| !l.contains('.')).collect();
    assert_eq!(
        snap.keys().expect("snapshot is an object"),
        pinned_top,
        "top-level key set changed — bump SCHEMA_VERSION and update the golden file"
    );
}

#[test]
fn final_snapshot_reflects_the_finished_run() {
    let snap = last_snapshot();
    // Both cores halted, so the final cut shows the end state.
    assert_eq!(snap.get("halted").and_then(JsonValue::as_u64), Some(2));
    let cores = snap
        .get("cores")
        .and_then(JsonValue::as_array)
        .expect("cores array");
    assert_eq!(cores.len(), 2);
    for core in cores {
        assert_eq!(
            core.get("state").and_then(JsonValue::as_str),
            Some("halted")
        );
        assert!(core.get("retired").and_then(JsonValue::as_u64).unwrap_or(0) > 0);
    }
}
