//! Equivalence tests for static disjointness certificates: a certified
//! run skips the dynamic conflict sweeps (`par::conflicting` and the
//! fused-window byte sweep), so it must be bit-identical to the swept
//! schedule — same determinism digest, byte-identical metrics JSON —
//! across sequential and parallel execute phases and under schedule
//! perturbation. A contended kernel must be *denied* the certificate,
//! and its runs must also stay identical (the flag alone changes
//! nothing).

use std::time::Duration;

use coyote::{SimConfig, Simulation};
use proptest::prelude::*;

/// Hart-partitioned kernel: each hart read-modify-writes its own
/// 512-byte slice of `buf`, touching 16 dwords at stride 8 — cleanly
/// separable by the static analysis.
const PARTITIONED: &str = "
    .data
    buf: .zero 16384
    .text
    _start:
        csrr t0, mhartid
        la t1, buf
        slli t2, t0, 9
        add t1, t1, t2
        li t3, 16
    loop:
        ld t4, 0(t1)
        addi t4, t4, 1
        sd t4, 0(t1)
        addi t1, t1, 8
        addi t3, t3, -1
        bnez t3, loop
        mv a0, t0
        li a7, 93
        ecall";

/// Contended kernel: every hart read-modify-writes the SAME dword.
/// The write footprints provably intersect, so no certificate may be
/// granted and the dynamic sweeps must keep running.
const CONTENDED: &str = "
    .data
    hot: .dword 0
    .text
    _start:
        csrr t0, mhartid
        la t1, hot
        li t2, 16
    loop:
        ld t3, 0(t1)
        add t3, t3, t0
        sd t3, 0(t1)
        addi t2, t2, -1
        bnez t2, loop
        li a0, 0
        li a7, 93
        ecall";

struct RunResult {
    digest: u64,
    metrics: String,
    certified: bool,
    exits: Option<Vec<i64>>,
}

fn run(
    src: &str,
    cores: usize,
    jobs: usize,
    certify: bool,
    perturb: u64,
    oracle: bool,
) -> RunResult {
    let program = coyote_asm::assemble(src).expect("assemble");
    let config = SimConfig::builder()
        .cores(cores)
        .jobs(jobs)
        .certify(certify)
        .perturb_seed(perturb)
        .oracle(oracle)
        .telemetry(true)
        .metrics_interval(64)
        .build()
        .expect("valid config");
    let mut sim = Simulation::new(config, &program).expect("create sim");
    let mut report = sim.run().expect("run completes");
    report.wall_time = Duration::ZERO;
    RunResult {
        digest: sim.determinism_digest(),
        metrics: coyote::metrics_json(&sim, &report).to_string_pretty(),
        certified: sim.certificate_active(),
        exits: report.exit_codes(),
    }
}

#[test]
fn partitioned_kernel_earns_a_certificate_and_matches_the_swept_run() {
    let swept = run(PARTITIONED, 4, 1, false, 0, true);
    assert!(
        !swept.certified,
        "certify off must never report a certificate"
    );
    for jobs in [1, 4] {
        let certified = run(PARTITIONED, 4, jobs, true, 0, true);
        assert!(
            certified.certified,
            "hart-partitioned slices must be statically separable (jobs={jobs})"
        );
        assert_eq!(certified.exits, swept.exits);
        assert_eq!(
            certified.digest, swept.digest,
            "certified digest diverged (jobs={jobs})"
        );
        assert_eq!(
            certified.metrics, swept.metrics,
            "certified metrics bytes diverged (jobs={jobs})"
        );
    }
}

#[test]
fn contended_kernel_is_denied_a_certificate() {
    let swept = run(CONTENDED, 4, 4, false, 0, true);
    let flagged = run(CONTENDED, 4, 4, true, 0, true);
    assert!(
        !flagged.certified,
        "provably intersecting write footprints must be denied"
    );
    // Denial means the sweeps keep running; nothing may change.
    assert_eq!(flagged.digest, swept.digest);
    assert_eq!(flagged.metrics, swept.metrics);
}

#[test]
fn certificate_holds_through_fused_windows() {
    // Without the oracle the fused-window path runs, whose
    // `window_conflicts` sweep is also certificate-gated; the window
    // outcome must still be bit-identical to the swept schedule.
    let swept = run(PARTITIONED, 4, 4, false, 0, false);
    let certified = run(PARTITIONED, 4, 4, true, 0, false);
    assert!(certified.certified);
    assert_eq!(certified.digest, swept.digest);
    assert_eq!(certified.metrics, swept.metrics);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn certified_runs_match_under_perturbation(
        perturb in any::<u64>(),
        cores in 2usize..7,
        parallel in proptest::bool::ANY,
        contended in proptest::bool::ANY,
    ) {
        let src = if contended { CONTENDED } else { PARTITIONED };
        let jobs = if parallel { 4 } else { 1 };
        let swept = run(src, cores, jobs, false, perturb, false);
        let certified = run(src, cores, jobs, true, perturb, false);
        // Exactly the separable kernel earns the certificate (for a
        // single core there is no other footprint to intersect, so the
        // contended kernel is trivially separable too — cores >= 2
        // keeps the expectation strict).
        prop_assert_eq!(certified.certified, !contended);
        prop_assert_eq!(certified.digest, swept.digest, "digest diverged");
        prop_assert_eq!(certified.metrics, swept.metrics, "metrics bytes diverged");
    }
}
