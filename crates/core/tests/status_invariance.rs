//! The introspection plane's non-negotiable invariant: watching a run
//! is pure observation. For arbitrary machine shapes, kernels, job
//! counts and perturbation seeds, a run with a live status stream
//! attached must yield a bit-identical determinism digest and
//! byte-identical metrics JSON to the same run without one — host
//! clock reads inside the emitter must never leak into simulated
//! state. The always-on flight recorder rides the same proof: it is
//! active in every run below, so a recorder that perturbed the
//! schedule would fail these comparisons too.

use std::path::PathBuf;
use std::time::Duration;

use coyote::{JsonValue, L2Sharing, SimConfig, Simulation, StatusEmitter};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Machine {
    cores: usize,
    sharing: L2Sharing,
    iterations: u64,
}

fn machine_strategy() -> impl Strategy<Value = Machine> {
    (
        2usize..9,
        prop_oneof![Just(L2Sharing::Shared), Just(L2Sharing::Private)],
        4u64..32,
    )
        .prop_map(|(cores, sharing, iterations)| Machine {
            cores,
            sharing,
            iterations,
        })
}

/// Hart-partitioned load/store kernel (no conflicts) or a contended
/// one-dword kernel (conflict fallbacks every parallel cycle).
fn kernel(machine: &Machine, contended: bool) -> String {
    if contended {
        format!(
            "
            .data
            hot: .dword 0
            .text
            _start:
                csrr t0, mhartid
                la t1, hot
                li t2, {iters}
            loop:
                ld t3, 0(t1)
                add t3, t3, t0
                sd t3, 0(t1)
                addi t2, t2, -1
                bnez t2, loop
                li a0, 0
                li a7, 93
                ecall",
            iters = machine.iterations,
        )
    } else {
        format!(
            "
            .data
            buf: .zero 16384
            .text
            _start:
                csrr t0, mhartid
                la t1, buf
                slli t2, t0, 9
                add t1, t1, t2
                li t3, {iters}
            loop:
                ld t4, 0(t1)
                addi t4, t4, 1
                sd t4, 0(t1)
                addi t1, t1, 64
                addi t3, t3, -1
                bnez t3, loop
                mv a0, t0
                li a7, 93
                ecall",
            iters = machine.iterations,
        )
    }
}

fn temp_status_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coyote-status-invariance");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{tag}.jsonl", std::process::id()))
}

/// Runs `src` with or without a status stream attached, returning the
/// determinism digest and the metrics JSON bytes with wall time zeroed
/// (host observation, not model output).
fn run(src: &str, machine: &Machine, jobs: usize, perturb: u64, status: bool) -> (u64, String) {
    let program = coyote_asm::assemble(src).expect("assemble");
    let config = SimConfig::builder()
        .cores(machine.cores)
        .sharing(machine.sharing)
        .perturb_seed(perturb)
        .telemetry(true)
        .metrics_interval(64)
        .jobs(jobs)
        .build()
        .expect("valid config");
    let mut sim = Simulation::new(config, &program).expect("create sim");
    let path = status.then(|| temp_status_path(&format!("j{jobs}-p{perturb:x}-{}", machine.cores)));
    if let Some(path) = &path {
        // 1 ms cadence so snapshots genuinely fire mid-run; the point
        // is that firing cannot matter.
        let emitter = StatusEmitter::create(path, 1).expect("status emitter");
        sim.set_status(emitter);
    }
    let mut report = sim.run().expect("run completes");
    report.wall_time = Duration::ZERO;
    let json = coyote::metrics_json(&sim, &report).to_string_pretty();
    if let Some(path) = &path {
        let stream = std::fs::read_to_string(path).expect("status file readable");
        assert!(
            stream.lines().any(|l| !l.trim().is_empty()),
            "status stream never emitted a snapshot"
        );
        let _ = std::fs::remove_file(path);
    }
    (sim.determinism_digest(), json)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant: status stream on vs off, sequential and
    /// parallel, partitioned and contended, perturbed and canonical —
    /// same digest, same metrics bytes. The metrics document never
    /// carries a status section, so no stripping is needed: equality
    /// is over the complete document.
    #[test]
    fn status_stream_never_perturbs_the_simulation(
        machine in machine_strategy(),
        contended in any::<bool>(),
        perturb in prop_oneof![Just(0u64), 1u64..u64::MAX],
    ) {
        let src = kernel(&machine, contended);
        for jobs in [1usize, 4] {
            let (off_digest, off_json) = run(&src, &machine, jobs, perturb, false);
            let (on_digest, on_json) = run(&src, &machine, jobs, perturb, true);
            prop_assert_eq!(
                on_digest, off_digest,
                "status stream leaked into the digest (jobs={})",
                jobs
            );
            prop_assert_eq!(
                &on_json, &off_json,
                "status stream leaked into the metrics JSON (jobs={})",
                jobs
            );
        }
    }
}

/// Deterministic regression twin of the proptest: the exact fixed
/// shape the CI smoke uses, checked without proptest's shrinking in
/// the way.
#[test]
fn watched_contended_run_matches_unwatched() {
    let machine = Machine {
        cores: 4,
        sharing: L2Sharing::Shared,
        iterations: 24,
    };
    let src = kernel(&machine, true);
    for jobs in [1usize, 4] {
        let (off_digest, off_json) = run(&src, &machine, jobs, 0, false);
        let (on_digest, on_json) = run(&src, &machine, jobs, 0, true);
        assert_eq!(on_digest, off_digest, "digest diverged (jobs={jobs})");
        assert_eq!(on_json, off_json, "metrics JSON diverged (jobs={jobs})");
    }
}

/// A forced deadlock (lost data fill) must produce a parseable crash
/// dump carrying the stall attribution and the flight-recorder tail.
#[test]
fn deadlock_crash_dump_carries_stalls_and_flight_tail() {
    let src = "
        .data
        x: .dword 7
        .text
        _start:
            la t0, x
            ld t1, 0(t0)
            addi a0, t1, 1
            li a7, 93
            ecall";
    let program = coyote_asm::assemble(src).expect("assemble");
    let config = SimConfig::builder().cores(1).build().expect("config");
    let mut sim = Simulation::new(config, &program).expect("create sim");
    sim.debug_inject_lost_fill();
    let err = sim.run().expect_err("lost fill must deadlock");
    let rendered = err.to_string();
    assert!(rendered.contains("deadlock at cycle"), "{rendered}");
    assert!(rendered.contains("blocked on:"), "{rendered}");

    let dump = sim.crash_json("deadlock");
    let text = dump.to_string_pretty();
    let parsed = coyote::parse_json(&text).expect("crash dump parses");
    assert_eq!(
        parsed.get("reason").and_then(JsonValue::as_str),
        Some("deadlock")
    );
    let stalls = parsed
        .get("stalls")
        .and_then(JsonValue::as_array)
        .expect("stalls array");
    assert!(!stalls.is_empty(), "no stall attribution in the dump");
    assert!(
        stalls[0].get("line").is_some() && stalls[0].get("pc").is_some(),
        "stall entries must carry line and pc"
    );
    let flight = parsed.get("flight_recorder").expect("flight recorder");
    let events = flight
        .get("events")
        .and_then(JsonValue::as_array)
        .expect("events array");
    assert!(!events.is_empty(), "flight tail is empty");
    assert!(
        events
            .iter()
            .any(|e| e.get("kind").and_then(JsonValue::as_str) == Some("stall")),
        "flight tail should record the stall"
    );
    assert!(
        parsed.get("mshr_occupancy").is_some(),
        "mshr occupancy missing"
    );
    assert!(parsed.get("cores").is_some(), "core snapshots missing");
}

/// A graceful stop yields a partial report marked `truncated`, and the
/// truncation flag shows up in the metrics document.
#[test]
fn stop_token_truncates_the_run() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let src = "
        _start:
            li t0, 100000
        loop:
            addi t0, t0, -1
            bnez t0, loop
            li a0, 0
            li a7, 93
            ecall";
    let program = coyote_asm::assemble(src).expect("assemble");
    let config = SimConfig::builder().cores(1).build().expect("config");
    let mut sim = Simulation::new(config, &program).expect("create sim");
    let stop = Arc::new(AtomicBool::new(true));
    sim.set_stop_handle(Arc::clone(&stop));
    match sim.run() {
        Err(coyote::RunError::Stopped { cycle }) => {
            assert!(cycle >= 1, "stop must land after a completed cycle");
        }
        other => panic!("expected Stopped, got {other:?}"),
    }
    let report = sim.partial_report();
    assert!(report.truncated, "partial report must be marked truncated");
    let doc = coyote::metrics_json(&sim, &report);
    assert_eq!(
        doc.get("report")
            .and_then(|r| r.get("truncated"))
            .map(JsonValue::to_string_compact),
        Some("true".to_owned())
    );
}
