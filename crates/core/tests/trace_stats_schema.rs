//! Golden-file test pinning the `coyote-trace-stats --json` schema.
//!
//! `tests/golden/trace_stats_schema.txt` lists the schema version and
//! the key paths downstream tooling may rely on, in the same format as
//! `metrics_schema.txt`: a `schema_version=N` line, then one key path
//! per line (non-dotted lines double as the exact top-level key set).

use std::io::Write;
use std::process::Command;

use coyote::JsonValue;

/// A hand-written 12-field trace: two cores, a state interval, and
/// misses from two distinct PCs (plus one synthetic writeback, PC 0).
const SAMPLE_PRV: &str = "#Paraver (01/01/2021 at 00:00):101:1(2):1:2(1:1,1:1)
1:1:1:1:1:0:40:1
1:1:1:1:1:40:90:2
2:1:1:1:1:10:42000001:2:42000002:4096:42000003:2147483652
2:1:1:1:1:35:42000001:2:42000002:4160:42000003:2147483652
2:2:1:2:1:50:42000001:1:42000002:8192:42000003:2147483700
2:2:1:2:1:80:42000001:4:42000002:8256:42000003:0
";

fn stats_json() -> JsonValue {
    let dir = std::env::temp_dir().join("coyote-trace-stats-golden");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let prv = dir.join("sample.prv");
    let mut file = std::fs::File::create(&prv).expect("create prv");
    file.write_all(SAMPLE_PRV.as_bytes()).expect("write prv");
    drop(file);

    let output = Command::new(env!("CARGO_BIN_EXE_coyote-trace-stats"))
        .arg(&prv)
        .arg("--json")
        .output()
        .expect("spawn coyote-trace-stats");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    coyote::parse_json(&String::from_utf8_lossy(&output.stdout)).expect("valid JSON")
}

fn lookup<'a>(doc: &'a JsonValue, path: &str) -> Option<&'a JsonValue> {
    let mut value = doc;
    for part in path.split('.') {
        value = value.get(part)?;
    }
    Some(value)
}

#[test]
fn trace_stats_schema_matches_golden_file() {
    let golden = include_str!("golden/trace_stats_schema.txt");
    let doc = stats_json();

    let mut lines = golden.lines().filter(|l| !l.trim().is_empty());
    let version: u64 = lines
        .next()
        .expect("golden file has a version line")
        .strip_prefix("schema_version=")
        .expect("first golden line is schema_version=N")
        .parse()
        .expect("numeric schema version");
    assert_eq!(
        doc.get("schema_version").and_then(JsonValue::as_u64),
        Some(version),
        "schema version changed — regenerate tests/golden/trace_stats_schema.txt"
    );

    for path in lines.clone() {
        assert!(
            lookup(&doc, path).is_some(),
            "trace-stats document lost pinned key `{path}`"
        );
    }
    let pinned_top: Vec<&str> = lines.filter(|l| !l.contains('.')).collect();
    assert_eq!(
        doc.keys().expect("top-level object"),
        pinned_top,
        "top-level key set changed — update the golden file"
    );
}

#[test]
fn critical_pcs_rank_by_miss_count_and_skip_synthetic() {
    let doc = stats_json();
    let pcs = doc
        .get("hottest_pcs")
        .and_then(JsonValue::as_array)
        .expect("hottest_pcs array");
    // Two real PCs; the writeback's PC 0 must not be ranked.
    assert_eq!(pcs.len(), 2);
    assert_eq!(
        pcs[0].get("pc").and_then(JsonValue::as_str),
        Some("0x80000004")
    );
    assert_eq!(pcs[0].get("misses").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(
        pcs[1].get("pc").and_then(JsonValue::as_str),
        Some("0x80000034")
    );
}
