//! Property tests over the stall-attribution subsystem: for arbitrary
//! (valid) machine shapes and kernel sizes, every core's CPI-stack
//! components exactly partition the run's cycle count, and the dep and
//! fetch buckets agree with the core's own stall counters.

use coyote::{L2Config, L2Sharing, SimConfig, Simulation};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Machine {
    cores: usize,
    interleave: usize,
    mshrs: usize,
    sharing: L2Sharing,
    telemetry: bool,
    iterations: u64,
    stride: u64,
}

fn machine_strategy() -> impl Strategy<Value = Machine> {
    (
        1usize..5,                                    // cores
        prop_oneof![Just(1usize), Just(2), Just(4)],  // interleave
        prop_oneof![Just(1usize), Just(2), Just(16)], // mshrs
        prop_oneof![Just(L2Sharing::Shared), Just(L2Sharing::Private)],
        any::<bool>(),                               // telemetry
        4u64..40,                                    // loop iterations
        prop_oneof![Just(8u64), Just(64), Just(72)], // access stride
    )
        .prop_map(
            |(cores, interleave, mshrs, sharing, telemetry, iterations, stride)| Machine {
                cores,
                interleave,
                mshrs,
                sharing,
                telemetry,
                iterations,
                stride,
            },
        )
}

/// A pointer-chasing kernel with a RAW dependency right behind every
/// load, sized so each hart touches its own slice.
fn kernel(machine: &Machine) -> String {
    format!(
        "
        .data
        buf: .zero 16384
        .text
        _start:
            csrr t0, mhartid
            la t1, buf
            slli t2, t0, 9
            add t1, t1, t2
            li t3, {iters}
        loop:
            ld t4, 0(t1)
            addi t4, t4, 1     # RAW: dep stall on a miss
            sd t4, 0(t1)
            addi t1, t1, {stride}
            addi t3, t3, -1
            bnez t3, loop
            mv a0, t0
            li a7, 93
            ecall",
        iters = machine.iterations,
        stride = machine.stride,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cpi_stack_partitions_cycles_for_any_machine(machine in machine_strategy()) {
        let program = coyote_asm::assemble(&kernel(&machine)).expect("assemble");
        let mut builder = SimConfig::builder()
            .cores(machine.cores)
            .interleave(machine.interleave)
            .l2(L2Config {
                mshrs: machine.mshrs,
                ..L2Config::default()
            })
            .sharing(machine.sharing);
        if machine.telemetry {
            builder = builder.telemetry(true).metrics_interval(128);
        }
        let config = builder.build().expect("valid config");
        let mut sim = Simulation::new(config, &program).expect("create sim");
        let report = sim.run().expect("run");
        let attr = sim.attribution();
        for core in 0..machine.cores {
            let dep: u64 = attr.dep()[core].iter().sum();
            let total = attr.active()[core] + dep + attr.fetch()[core] + attr.drained()[core];
            prop_assert_eq!(
                total,
                report.cycles,
                "core {} stack {{active: {}, dep: {}, fetch: {}, drained: {}}} vs {} cycles",
                core,
                attr.active()[core],
                dep,
                attr.fetch()[core],
                attr.drained()[core],
                report.cycles
            );
            prop_assert_eq!(dep, report.cores[core].stats.dep_stall_cycles);
            prop_assert_eq!(attr.fetch()[core], report.cores[core].stats.fetch_stall_cycles);
        }
        // The critical-PC table never exceeds its bound, and without
        // memory telemetry all dep blame degrades to `other`.
        prop_assert!(attr.top().len() <= sim.config().attribution_top_k);
        if !machine.telemetry {
            for row in attr.dep() {
                for &cycles in &row[..row.len() - 1] {
                    prop_assert_eq!(cycles, 0);
                }
            }
        }
    }
}
