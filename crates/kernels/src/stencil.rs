//! Vector 5-point stencil kernel (the paper's fourth kernel family).
//!
//! Performs `iters` Jacobi sweeps over an `n × m` `f64` grid:
//! `out = c0·center + c1·(north + south + west + east)` on interior
//! cells, with boundary cells held fixed. Rows are block-partitioned
//! across harts; iterations are separated by a sense-free counting
//! barrier built from `amoadd.d` (exercising the A extension the way
//! the paper's MCPU discussion envisions).

use coyote::SparseMemory;
use coyote_asm::{AsmError, Assembler, Program};

use crate::data::{random_vector, stencil_step};
use crate::workload::{read_f64_slice, verify_f64_slice, write_f64_slice, VerifyError, Workload};

/// Vectorized multi-iteration 2D stencil.
#[derive(Debug, Clone)]
pub struct StencilVector {
    n: usize,
    m: usize,
    iters: usize,
    c0: f64,
    c1: f64,
    grid: Vec<f64>,
}

impl StencilVector {
    /// Creates an `n × m` stencil with `iters` Jacobi sweeps over a
    /// seeded random grid.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 3`, `m >= 3` and `iters >= 1`.
    #[must_use]
    pub fn new(n: usize, m: usize, iters: usize, seed: u64) -> StencilVector {
        assert!(n >= 3 && m >= 3, "grid must have interior cells");
        assert!(iters >= 1, "at least one iteration");
        StencilVector {
            n,
            m,
            iters,
            c0: 0.5,
            c1: 0.125,
            grid: random_vector(n * m, seed),
        }
    }

    /// Grid rows.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Grid columns.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The label holding the final grid after `iters` sweeps.
    fn result_symbol(&self) -> &'static str {
        if self.iters.is_multiple_of(2) {
            "g0"
        } else {
            "g1"
        }
    }
}

impl Workload for StencilVector {
    fn name(&self) -> &'static str {
        "stencil-vector"
    }

    fn program(&self, harts: usize) -> Result<Program, AsmError> {
        let (n, m, iters) = (self.n, self.m, self.iters);
        let grid_bytes = 8 * n * m;
        let row_bytes = 8 * m;
        // Interior rows 1..n-1 split into blocks.
        let block = (n - 2).div_ceil(harts).max(1);
        let src = format!(
            "
            .data
            g0: .zero {grid_bytes}
            g1: .zero {grid_bytes}
            coef: .double {c0}, {c1}
            barrier: .dword 0
            .text
            _start:
                csrr s0, mhartid
                li s10, {harts}
                li s11, {iters}
                la s9, barrier
                la t0, coef
                fld fs0, 0(t0)          # c0
                fld fs1, 8(t0)          # c1
                li t1, {block}
                mul s1, s0, t1
                addi s1, s1, 1          # r0 (interior starts at 1)
                add s2, s1, t1          # r1 exclusive
                li t2, {n_minus_1}
                blt s2, t2, clamped
                mv s2, t2
            clamped:
                li s8, 0                # iteration
            iter_loop:
                bge s8, s11, finish
                andi t0, s8, 1
                la s3, g0               # src
                la s4, g1               # dst
                beqz t0, no_swap
                mv t3, s3
                mv s3, s4
                mv s4, t3
            no_swap:
                mv s5, s1               # row
            row_loop:
                bge s5, s2, sync
                li s6, 1                # j
            col_strip:
                li t4, {m_minus_1}
                sub t6, t4, s6          # remaining interior cols
                blez t6, row_done
                vsetvli s7, t6, e64,m1,ta,ma
                li t4, {m}
                mul t5, s5, t4
                add t5, t5, s6
                slli t5, t5, 3          # (row*m + j) * 8
                add t0, s3, t5          # src center
                vle64.v v1, (t0)
                li t4, {row_bytes}
                sub t2, t0, t4
                vle64.v v2, (t2)        # north
                add t2, t0, t4
                vle64.v v3, (t2)        # south
                addi t2, t0, -8
                vle64.v v4, (t2)        # west
                addi t2, t0, 8
                vle64.v v5, (t2)        # east
                vfadd.vv v2, v2, v3
                vfadd.vv v4, v4, v5
                vfadd.vv v2, v2, v4     # neighbor sum
                vfmul.vf v1, v1, fs0    # c0 * center
                vfmacc.vf v1, v2, fs1   # += c1 * sum
                add t2, s4, t5          # dst
                vse64.v v1, (t2)
                add s6, s6, s7
                j col_strip
            row_done:
                addi s5, s5, 1
                j row_loop
            sync:
                li t0, 1
                amoadd.d t1, t0, (s9)
                addi s8, s8, 1
                mul t2, s8, s10         # barrier target = harts * iter
            spin:
                ld t3, 0(s9)
                blt t3, t2, spin
                j iter_loop
            finish:
                li a0, 0
                li a7, 93
                ecall
            ",
            c0 = self.c0,
            c1 = self.c1,
            n_minus_1 = n - 1,
            m_minus_1 = m - 1,
        );
        Assembler::new().assemble(&src)
    }

    fn populate(&self, program: &Program, mem: &mut SparseMemory) {
        // Both buffers start with the same data so boundary cells (never
        // written) remain consistent after swaps.
        write_f64_slice(mem, program.symbol("g0").expect("g0"), &self.grid);
        write_f64_slice(mem, program.symbol("g1").expect("g1"), &self.grid);
    }

    fn verify(&self, program: &Program, mem: &SparseMemory) -> Result<(), VerifyError> {
        let mut expected = self.grid.clone();
        for _ in 0..self.iters {
            expected = stencil_step(&expected, self.n, self.m, self.c0, self.c1);
        }
        let addr = program.symbol(self.result_symbol()).expect("grid symbol");
        let got = read_f64_slice(mem, addr, self.n * self.m);
        verify_f64_slice(&got, &expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use coyote::SimConfig;

    #[test]
    fn single_iteration_single_core() {
        let w = StencilVector::new(8, 8, 1, 21);
        let config = SimConfig::builder().cores(1).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn multi_iteration_multicore_barrier() {
        let w = StencilVector::new(10, 12, 3, 22);
        let config = SimConfig::builder().cores(4).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn more_harts_than_interior_rows() {
        let w = StencilVector::new(4, 8, 2, 23);
        let config = SimConfig::builder().cores(8).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn wide_grid_strip_mines() {
        // m-2 = 30 interior columns with VLMAX=16 forces two strips.
        let w = StencilVector::new(5, 32, 2, 24);
        let config = SimConfig::builder().cores(2).build().unwrap();
        run_workload(&w, config).unwrap();
    }
}
