//! The [`Workload`] abstraction: a kernel + its data + its oracle.
//!
//! Every paper kernel implements this trait so the benchmark harness
//! can assemble, populate, simulate and verify any of them uniformly.

use std::fmt;

use coyote::{Report, RunError, SimConfig, Simulation, SparseMemory};
use coyote_asm::{AsmError, Program};

/// Numerical tolerance for verifying kernel output against the host
/// oracle. The kernels mirror the oracle's operation order, so results
/// are usually bit-exact; the tolerance absorbs unordered reductions.
pub const VERIFY_EPSILON: f64 = 1e-9;

/// Error raised when a kernel's output does not match the oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Which output element diverged.
    pub index: usize,
    /// Value the simulation produced.
    pub got: f64,
    /// Value the oracle expects.
    pub expected: f64,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output[{}] = {} differs from expected {}",
            self.index, self.got, self.expected
        )
    }
}

impl std::error::Error for VerifyError {}

/// Compares simulated output `got` against `expected` element-wise.
///
/// # Errors
///
/// Returns the first diverging element.
pub fn verify_f64_slice(got: &[f64], expected: &[f64]) -> Result<(), VerifyError> {
    assert_eq!(got.len(), expected.len(), "verification length mismatch");
    for (index, (&g, &e)) in got.iter().zip(expected).enumerate() {
        let tolerance = VERIFY_EPSILON * e.abs().max(1.0);
        if (g - e).abs() > tolerance || g.is_nan() != e.is_nan() {
            return Err(VerifyError {
                index,
                got: g,
                expected: e,
            });
        }
    }
    Ok(())
}

/// Reads `len` consecutive `f64`s from simulated memory.
#[must_use]
pub fn read_f64_slice(mem: &SparseMemory, addr: u64, len: usize) -> Vec<f64> {
    (0..len as u64)
        .map(|i| mem.read_f64(addr + i * 8))
        .collect()
}

/// Writes a slice of `f64` into simulated memory.
pub fn write_f64_slice(mem: &mut SparseMemory, addr: u64, values: &[f64]) {
    for (i, &v) in values.iter().enumerate() {
        mem.write_f64(addr + (i as u64) * 8, v);
    }
}

/// Writes a slice of `u64` into simulated memory.
pub fn write_u64_slice(mem: &mut SparseMemory, addr: u64, values: &[u64]) {
    for (i, &v) in values.iter().enumerate() {
        mem.write_u64(addr + (i as u64) * 8, v);
    }
}

/// A runnable, verifiable kernel.
pub trait Workload {
    /// Kernel name (used in reports and benchmark rows).
    fn name(&self) -> &'static str;

    /// Assembles the kernel for a system of `harts` cores.
    ///
    /// # Errors
    ///
    /// Returns the assembler error (a kernel bug).
    fn program(&self, harts: usize) -> Result<Program, AsmError>;

    /// Writes the input data into simulated memory. `program` is the
    /// image returned by [`Workload::program`] (for symbol lookup).
    fn populate(&self, program: &Program, mem: &mut SparseMemory);

    /// Checks the kernel's output in simulated memory against the host
    /// oracle.
    ///
    /// # Errors
    ///
    /// Returns the first diverging output element.
    fn verify(&self, program: &Program, mem: &SparseMemory) -> Result<(), VerifyError>;
}

/// Error from [`run_workload`].
#[derive(Debug)]
pub enum WorkloadError {
    /// The kernel failed to assemble (a kernel bug).
    Asm(AsmError),
    /// The simulation faulted or exceeded its budget.
    Run(RunError),
    /// A core exited with a non-zero code.
    ExitCode(Vec<i64>),
    /// The output did not match the oracle.
    Verify(VerifyError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Asm(e) => write!(f, "assembly failed: {e}"),
            WorkloadError::Run(e) => write!(f, "simulation failed: {e}"),
            WorkloadError::ExitCode(codes) => write!(f, "non-zero exit codes: {codes:?}"),
            WorkloadError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Asm(e) => Some(e),
            WorkloadError::Run(e) => Some(e),
            WorkloadError::Verify(e) => Some(e),
            WorkloadError::ExitCode(_) => None,
        }
    }
}

impl From<AsmError> for WorkloadError {
    fn from(e: AsmError) -> Self {
        WorkloadError::Asm(e)
    }
}
impl From<RunError> for WorkloadError {
    fn from(e: RunError) -> Self {
        WorkloadError::Run(e)
    }
}
impl From<VerifyError> for WorkloadError {
    fn from(e: VerifyError) -> Self {
        WorkloadError::Verify(e)
    }
}

/// Assembles, populates, simulates and verifies a workload under
/// `config`, returning the report (and, when tracing was enabled, the
/// trace inside the returned simulation).
///
/// # Errors
///
/// Returns [`WorkloadError`] for assembly, simulation, exit-code or
/// verification failures.
pub fn run_workload(
    workload: &dyn Workload,
    config: SimConfig,
) -> Result<(Report, Simulation), WorkloadError> {
    let program = workload.program(config.cores)?;
    let mut sim = Simulation::new(config, &program)?;
    workload.populate(&program, sim.memory_mut());
    let report = sim.run()?;
    match report.exit_codes() {
        Some(codes) if codes.iter().all(|&c| c == 0) => {}
        Some(codes) => return Err(WorkloadError::ExitCode(codes)),
        None => unreachable!("run() returned without all cores halting"),
    }
    workload.verify(&program, sim.memory())?;
    Ok((report, sim))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_slice_accepts_exact_and_close() {
        verify_f64_slice(&[1.0, 2.0], &[1.0, 2.0 + 1e-12]).unwrap();
    }

    #[test]
    fn verify_slice_rejects_divergence() {
        let err = verify_f64_slice(&[1.0, 2.5], &[1.0, 2.0]).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.got, 2.5);
        assert!(err.to_string().contains("output[1]"));
    }

    #[test]
    fn verify_slice_scales_tolerance() {
        // Relative tolerance for large magnitudes.
        verify_f64_slice(&[1.0e12 + 1.0], &[1.0e12]).unwrap();
        assert!(verify_f64_slice(&[1.0e12 + 1.0e4], &[1.0e12]).is_err());
    }

    #[test]
    fn slice_io_round_trips() {
        let mut mem = SparseMemory::new();
        write_f64_slice(&mut mem, 0x1000, &[1.5, -2.5, 3.5]);
        assert_eq!(read_f64_slice(&mem, 0x1000, 3), vec![1.5, -2.5, 3.5]);
        write_u64_slice(&mut mem, 0x2000, &[7, 8]);
        assert_eq!(mem.read_u64(0x2008), 8);
    }
}
