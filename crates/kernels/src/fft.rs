//! Radix-2 complex FFT kernel — the "FFT" workload from the paper's
//! future-work list.
//!
//! Iterative Cooley–Tukey over split real/imaginary `f64` arrays. The
//! kernel performs the bit-reversal permutation (index-table driven)
//! and `log2 n` butterfly stages; harts own contiguous blocks of each
//! stage's butterflies and synchronize with an `amoadd.d` counting
//! barrier between stages (each stage reads the previous stage's
//! output).
//!
//! Within a butterfly block the `j` indices are consecutive, so for
//! half-sizes `m ≥ 2` the complex multiply-add runs on the vector unit
//! with unit-stride loads; the first stage (`m = 1`) runs scalar.

use coyote::SparseMemory;
use coyote_asm::{AsmError, Assembler, Program};

use crate::data::random_vector;
use crate::workload::{read_f64_slice, write_f64_slice, VerifyError, Workload};

/// Host-side reference FFT mirroring the kernel's stage order exactly.
fn reference_fft(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut m = 1usize;
    while m < n {
        for block in 0..(n / (2 * m)) {
            for j in 0..m {
                let angle = -std::f64::consts::PI * j as f64 / m as f64;
                let (w_im, w_re) = angle.sin_cos();
                let i0 = block * 2 * m + j;
                let i1 = i0 + m;
                // Complex t = w * x1, mirroring the kernel's fused ops:
                // tr = w_re*x1_re - w_im*x1_im (fmsub-style)
                // ti = w_re*x1_im + w_im*x1_re (fmadd-style)
                let tr = w_re.mul_add(re[i1], -(w_im * im[i1]));
                let ti = w_re.mul_add(im[i1], w_im * re[i1]);
                re[i1] = re[i0] - tr;
                im[i1] = im[i0] - ti;
                re[i0] += tr;
                im[i0] += ti;
            }
        }
        m *= 2;
    }
}

/// Radix-2 FFT over `n` complex points (split re/im layout).
#[derive(Debug, Clone)]
pub struct FftRadix2 {
    n: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl FftRadix2 {
    /// Creates an `n`-point FFT over seeded random complex input.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two ≥ 4.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> FftRadix2 {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "n must be a power of two >= 4"
        );
        FftRadix2 {
            n,
            re: random_vector(n, seed),
            im: random_vector(n, seed ^ 0xabcd),
        }
    }

    /// Transform length.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The bit-reversal index table.
    fn bitrev_table(&self) -> Vec<u64> {
        let bits = self.n.trailing_zeros();
        (0..self.n as u64)
            .map(|i| i.reverse_bits() >> (64 - bits) as u64)
            .collect()
    }

    /// Flat twiddle tables: for each stage (half-size m = 1, 2, 4, …)
    /// the `m` factors `exp(-iπ j / m)`, concatenated. The stage with
    /// half-size `m` starts at offset `m - 1`.
    fn twiddles(&self) -> (Vec<f64>, Vec<f64>) {
        let mut w_re = Vec::with_capacity(self.n - 1);
        let mut w_im = Vec::with_capacity(self.n - 1);
        let mut m = 1usize;
        while m < self.n {
            for j in 0..m {
                let angle = -std::f64::consts::PI * j as f64 / m as f64;
                let (s, c) = angle.sin_cos();
                w_re.push(c);
                w_im.push(s);
            }
            m *= 2;
        }
        (w_re, w_im)
    }
}

impl Workload for FftRadix2 {
    fn name(&self) -> &'static str {
        "fft-radix2"
    }

    fn program(&self, harts: usize) -> Result<Program, AsmError> {
        let n = self.n;
        // Each barrier episode adds `harts` to the counter; there is one
        // barrier after the permutation and one after each stage.
        let src = format!(
            "
            .data
            in_re:  .zero {vb}
            in_im:  .zero {vb}
            re:     .zero {vb}
            im:     .zero {vb}
            brev:   .zero {vb}
            w_re:   .zero {tb}
            w_im:   .zero {tb}
            barrier: .dword 0
            .text
            _start:
                csrr s0, mhartid
                li s10, {harts}
                li s11, {n}
                li s8, 0                # completed barrier episodes

                # ---- bit-reversal permutation: re[i] = in_re[brev[i]] ----
                la t0, brev
                la t1, in_re
                la t2, in_im
                la t3, re
                la t4, im
                mv t5, s0               # i = hart
            perm_loop:
                bge t5, s11, perm_done
                slli t6, t5, 3
                add a0, t0, t6
                ld a1, 0(a0)            # src index
                slli a1, a1, 3
                add a2, t1, a1
                fld fa0, 0(a2)
                add a2, t2, a1
                fld fa1, 0(a2)
                add a2, t3, t6
                fsd fa0, 0(a2)
                add a2, t4, t6
                fsd fa1, 0(a2)
                add t5, t5, s10
                j perm_loop
            perm_done:
                jal ra, barrier_sync

                # ---- butterfly stages ----
                # Contiguous ownership: hart h owns butterflies
                # [h*chunk, min((h+1)*chunk, n/2)), so vector strips
                # never cross into another hart's range.
                li s1, 1                # m: butterfly half-size
            stage_loop:
                bge s1, s11, done
                srli s2, s11, 1         # n/2 total butterflies
                li t0, {chunk}
                mul s3, s0, t0          # k = hart * chunk
                add t1, s3, t0          # tentative end
                blt t1, s2, end_ok
                mv t1, s2
            end_ok:
                mv s2, t1               # k_end for this hart
            bfly_loop:
                bge s3, s2, stage_done
                # block = k / m, j = k % m (m is a power of two)
                addi t0, s1, -1
                and s5, s3, t0          # j
                sub s4, s3, s5          # k - j = block * m
                slli s4, s4, 1          # block * 2m
                add s4, s4, s5          # i0
                # consecutive lanes = min(m - j, k_end - k)
                sub t1, s1, s5
                sub t2, s2, s3
                blt t1, t2, lanes_ok
                mv t1, t2
            lanes_ok:
                li t3, 2
                blt t1, t3, scalar_bfly

                # ---- vector butterflies over consecutive j ----
                vsetvli t4, t1, e64,m1,ta,ma
                # pointers: i0, i1 = i0 + m, twiddle base (m-1)+j
                la a0, re
                la a1, im
                slli t5, s4, 3
                add a2, a0, t5          # &re[i0]
                add a3, a1, t5          # &im[i0]
                slli t6, s1, 3
                add a4, a2, t6          # &re[i1]
                add a5, a3, t6          # &im[i1]
                addi t0, s1, -1
                add t0, t0, s5          # twiddle offset
                slli t0, t0, 3
                la a6, w_re
                add a6, a6, t0
                la a7, w_im
                add a7, a7, t0
                vle64.v v1, (a2)        # x0.re
                vle64.v v2, (a3)        # x0.im
                vle64.v v3, (a4)        # x1.re
                vle64.v v4, (a5)        # x1.im
                vle64.v v5, (a6)        # w.re
                vle64.v v6, (a7)        # w.im
                # tr = w_re*x1_re - w_im*x1_im
                vfmul.vv v7, v5, v3
                vfmul.vv v8, v6, v4
                vfsub.vv v7, v7, v8
                # ti = w_re*x1_im + w_im*x1_re
                vfmul.vv v8, v5, v4
                vfmacc.vv v8, v6, v3
                # x1 = x0 - t ; x0 = x0 + t
                vfsub.vv v9, v1, v7
                vse64.v v9, (a4)
                vfsub.vv v9, v2, v8
                vse64.v v9, (a5)
                vfadd.vv v9, v1, v7
                vse64.v v9, (a2)
                vfadd.vv v9, v2, v8
                vse64.v v9, (a3)
                add s3, s3, t4
                j bfly_loop

                # ---- scalar butterfly (m == 1 or strip tail) ----
            scalar_bfly:
                la a0, re
                la a1, im
                slli t5, s4, 3
                add a2, a0, t5
                add a3, a1, t5
                slli t6, s1, 3
                add a4, a2, t6
                add a5, a3, t6
                addi t0, s1, -1
                add t0, t0, s5
                slli t0, t0, 3
                la a6, w_re
                add a6, a6, t0
                fld fa4, 0(a6)          # w.re
                la a7, w_im
                add a7, a7, t0
                fld fa5, 0(a7)          # w.im
                fld fa0, 0(a2)          # x0.re
                fld fa1, 0(a3)          # x0.im
                fld fa2, 0(a4)          # x1.re
                fld fa3, 0(a5)          # x1.im
                # tr = w_re*x1_re - w_im*x1_im (fused like the oracle)
                fmul.d ft0, fa5, fa3
                fmsub.d ft1, fa4, fa2, ft0
                # ti = w_re*x1_im + w_im*x1_re
                fmul.d ft2, fa5, fa2
                fmadd.d ft3, fa4, fa3, ft2
                fsub.d ft4, fa0, ft1
                fsd ft4, 0(a4)
                fsub.d ft4, fa1, ft3
                fsd ft4, 0(a5)
                fadd.d ft4, fa0, ft1
                fsd ft4, 0(a2)
                fadd.d ft4, fa1, ft3
                fsd ft4, 0(a3)
                addi s3, s3, 1          # next butterfly in this hart's range
                j bfly_loop
            stage_done:
                jal ra, barrier_sync
                slli s1, s1, 1
                j stage_loop

            done:
                li a0, 0
                li a7, 93
                ecall

            # Counting barrier: episode target = harts * (++episodes).
            barrier_sync:
                la t0, barrier
                li t1, 1
                amoadd.d t2, t1, (t0)
                addi s8, s8, 1
                mul t3, s8, s10
            bspin:
                ld t4, 0(t0)
                blt t4, t3, bspin
                ret
            ",
            vb = 8 * n,
            tb = 8 * (n - 1),
            chunk = (n / 2).div_ceil(harts).max(1),
        );
        Assembler::new().assemble(&src)
    }

    fn populate(&self, program: &Program, mem: &mut SparseMemory) {
        let sym = |name: &str| program.symbol(name).expect("fft symbol");
        write_f64_slice(mem, sym("in_re"), &self.re);
        write_f64_slice(mem, sym("in_im"), &self.im);
        let brev = self.bitrev_table();
        for (i, &v) in brev.iter().enumerate() {
            mem.write_u64(sym("brev") + (i as u64) * 8, v);
        }
        let (w_re, w_im) = self.twiddles();
        write_f64_slice(mem, sym("w_re"), &w_re);
        write_f64_slice(mem, sym("w_im"), &w_im);
    }

    fn verify(&self, program: &Program, mem: &SparseMemory) -> Result<(), VerifyError> {
        let mut re = self.re.clone();
        let mut im = self.im.clone();
        reference_fft(&mut re, &mut im);
        let got_re = read_f64_slice(mem, program.symbol("re").expect("re"), self.n);
        let got_im = read_f64_slice(mem, program.symbol("im").expect("im"), self.n);
        verify_slice_scaled(&got_re, &re, self.n)?;
        verify_slice_scaled(&got_im, &im, self.n)
    }
}

/// FFT outputs grow with √n·‖x‖; compare with a tolerance scaled to the
/// transform length.
fn verify_slice_scaled(got: &[f64], expected: &[f64], n: usize) -> Result<(), VerifyError> {
    let tolerance = 1e-10 * (n as f64);
    for (index, (&g, &e)) in got.iter().zip(expected).enumerate() {
        if (g - e).abs() > tolerance * e.abs().max(1.0) {
            return Err(VerifyError {
                index,
                got: g,
                expected: e,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use coyote::SimConfig;

    #[test]
    fn reference_fft_matches_dft() {
        // Check the oracle itself against the O(n²) definition.
        let n = 16;
        let re_in = random_vector(n, 77);
        let im_in = random_vector(n, 78);
        let mut re = re_in.clone();
        let mut im = im_in.clone();
        reference_fft(&mut re, &mut im);
        for k in 0..n {
            let mut acc_re = 0.0f64;
            let mut acc_im = 0.0f64;
            for (t, (&xr, &xi)) in re_in.iter().zip(&im_in).enumerate() {
                let angle = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                let (s, c) = angle.sin_cos();
                acc_re += xr * c - xi * s;
                acc_im += xr * s + xi * c;
            }
            assert!((re[k] - acc_re).abs() < 1e-9, "re[{k}]");
            assert!((im[k] - acc_im).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn fft_single_core_verifies() {
        let w = FftRadix2::new(64, 51);
        let config = SimConfig::builder().cores(1).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn fft_multicore_verifies() {
        let w = FftRadix2::new(128, 52);
        let config = SimConfig::builder().cores(4).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn fft_more_harts_than_butterflies() {
        let w = FftRadix2::new(8, 53);
        let config = SimConfig::builder().cores(8).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let _ = FftRadix2::new(48, 54);
    }
}
