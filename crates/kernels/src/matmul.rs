//! Dense matrix multiplication kernels (scalar and vector), the first
//! two of the paper's four kernel families.
//!
//! Both kernels compute `C = A × B` for row-major `f64` matrices
//! (square by default, rectangular `rows × n` for weak-scaling sweeps),
//! partitioning output rows round-robin across harts by `mhartid`.

use coyote::SparseMemory;
use coyote_asm::{AsmError, Assembler, Program};

use crate::data::DenseMatrix;
use crate::workload::{read_f64_slice, verify_f64_slice, write_f64_slice, VerifyError, Workload};

fn matrix_symbols(program: &Program) -> (u64, u64, u64) {
    (
        program.symbol("a").expect("a"),
        program.symbol("b").expect("b"),
        program.symbol("c").expect("c"),
    )
}

/// Scalar matmul: the plain three-level loop nest with `fmadd.d`
/// accumulation (one of the two workloads in the paper's Figure 3).
#[derive(Debug, Clone)]
pub struct MatmulScalar {
    rows: usize,
    n: usize,
    a: DenseMatrix,
    b: DenseMatrix,
}

impl MatmulScalar {
    /// Creates an `n × n` scalar matmul with seeded random inputs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> MatmulScalar {
        MatmulScalar::with_rows(n, n, seed)
    }

    /// Creates a rectangular `C (rows × n) = A (rows × n) × B (n × n)`
    /// matmul — used for weak-scaling sweeps where the row count grows
    /// with the core count.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn with_rows(rows: usize, n: usize, seed: u64) -> MatmulScalar {
        assert!(rows > 0 && n > 0, "matrix dimensions must be positive");
        MatmulScalar {
            rows,
            n,
            a: DenseMatrix::random(rows, n, seed),
            b: DenseMatrix::random(n, n, seed ^ 0x9e37_79b9),
        }
    }

    /// Inner matrix dimension.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }
}

impl Workload for MatmulScalar {
    fn name(&self) -> &'static str {
        "matmul-scalar"
    }

    fn program(&self, harts: usize) -> Result<Program, AsmError> {
        let n = self.n;
        let rows = self.rows;
        let ab_bytes = 8 * rows * n;
        let b_bytes = 8 * n * n;
        let row_bytes = 8 * n;
        let src = format!(
            "
            .data
            a: .zero {ab_bytes}
            b: .zero {b_bytes}
            c: .zero {ab_bytes}
            .text
            _start:
                csrr s0, mhartid
                li s11, {n}
                li s9, {rows}
                li s10, {harts}
                li t1, {row_bytes}
            outer:
                bge s0, s9, done
                la s1, a
                la s2, b
                la s3, c
                mul t2, s0, t1
                add s1, s1, t2          # &a[i][0]
                add s3, s3, t2          # &c[i][0]
                li s4, 0                # j
            col:
                fmv.d.x fa0, zero
                mv t3, s1
                slli t4, s4, 3
                add t4, s2, t4          # &b[0][j]
                li s5, 0                # k
            inner:
                fld fa1, 0(t3)
                fld fa2, 0(t4)
                fmadd.d fa0, fa1, fa2, fa0
                addi t3, t3, 8
                add t4, t4, t1
                addi s5, s5, 1
                blt s5, s11, inner
                slli t6, s4, 3
                add t6, s3, t6
                fsd fa0, 0(t6)
                addi s4, s4, 1
                blt s4, s11, col
                add s0, s0, s10
                j outer
            done:
                li a0, 0
                li a7, 93
                ecall
            "
        );
        Assembler::new().assemble(&src)
    }

    fn populate(&self, program: &Program, mem: &mut SparseMemory) {
        let (a, b, _) = matrix_symbols(program);
        write_f64_slice(mem, a, &self.a.values);
        write_f64_slice(mem, b, &self.b.values);
    }

    fn verify(&self, program: &Program, mem: &SparseMemory) -> Result<(), VerifyError> {
        let (_, _, c) = matrix_symbols(program);
        let got = read_f64_slice(mem, c, self.rows * self.n);
        let expected = self.a.matmul(&self.b);
        verify_f64_slice(&got, &expected.values)
    }
}

/// Vector matmul: the inner two loops exchanged so each `vfmacc.vf`
/// updates a strip of a `C` row with a broadcast `A` element — the
/// canonical RVV formulation.
#[derive(Debug, Clone)]
pub struct MatmulVector {
    rows: usize,
    n: usize,
    a: DenseMatrix,
    b: DenseMatrix,
}

impl MatmulVector {
    /// Creates an `n × n` vector matmul with seeded random inputs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> MatmulVector {
        MatmulVector::with_rows(n, n, seed)
    }

    /// Creates a rectangular `C (rows × n) = A (rows × n) × B (n × n)`
    /// vector matmul (weak-scaling form).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn with_rows(rows: usize, n: usize, seed: u64) -> MatmulVector {
        assert!(rows > 0 && n > 0, "matrix dimensions must be positive");
        MatmulVector {
            rows,
            n,
            a: DenseMatrix::random(rows, n, seed),
            b: DenseMatrix::random(n, n, seed ^ 0x9e37_79b9),
        }
    }

    /// Inner matrix dimension.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }
}

impl Workload for MatmulVector {
    fn name(&self) -> &'static str {
        "matmul-vector"
    }

    fn program(&self, harts: usize) -> Result<Program, AsmError> {
        let n = self.n;
        let rows = self.rows;
        let ab_bytes = 8 * rows * n;
        let b_bytes = 8 * n * n;
        let row_bytes = 8 * n;
        let src = format!(
            "
            .data
            a: .zero {ab_bytes}
            b: .zero {b_bytes}
            c: .zero {ab_bytes}
            .text
            _start:
                csrr s0, mhartid
                li s11, {n}
                li s9, {rows}
                li s10, {harts}
                li t1, {row_bytes}
            outer:
                bge s0, s9, done
                la s1, a
                la s2, b
                la s3, c
                mul t2, s0, t1
                add s1, s1, t2          # &a[i][0]
                add s3, s3, t2          # &c[i][0]
                li s4, 0                # j: column strip base
            strip:
                sub t0, s11, s4
                vsetvli s5, t0, e64,m1,ta,ma
                vmv.v.i v8, 0           # C strip accumulator
                mv t3, s1               # &a[i][k]
                slli t4, s4, 3
                add t4, s2, t4          # &b[k][j]
                li s6, 0                # k
            inner:
                fld fa0, 0(t3)
                vle64.v v9, (t4)
                vfmacc.vf v8, v9, fa0   # strip += a[i][k] * b[k][j..]
                addi t3, t3, 8
                add t4, t4, t1
                addi s6, s6, 1
                blt s6, s11, inner
                slli t5, s4, 3
                add t5, s3, t5
                vse64.v v8, (t5)
                add s4, s4, s5
                blt s4, s11, strip
                add s0, s0, s10
                j outer
            done:
                li a0, 0
                li a7, 93
                ecall
            "
        );
        Assembler::new().assemble(&src)
    }

    fn populate(&self, program: &Program, mem: &mut SparseMemory) {
        let (a, b, _) = matrix_symbols(program);
        write_f64_slice(mem, a, &self.a.values);
        write_f64_slice(mem, b, &self.b.values);
    }

    fn verify(&self, program: &Program, mem: &SparseMemory) -> Result<(), VerifyError> {
        let (_, _, c) = matrix_symbols(program);
        let got = read_f64_slice(mem, c, self.rows * self.n);
        let expected = self.a.matmul(&self.b);
        verify_f64_slice(&got, &expected.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use coyote::SimConfig;

    #[test]
    fn scalar_matmul_verifies_single_core() {
        let w = MatmulScalar::new(8, 1);
        let config = SimConfig::builder().cores(1).build().unwrap();
        let (report, _) = run_workload(&w, config).unwrap();
        assert!(report.total_retired() > 8 * 8 * 8);
    }

    #[test]
    fn scalar_matmul_verifies_multicore() {
        let w = MatmulScalar::new(12, 2);
        let config = SimConfig::builder().cores(4).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn vector_matmul_verifies() {
        let w = MatmulVector::new(12, 3);
        let config = SimConfig::builder().cores(2).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn vector_needs_fewer_instructions_than_scalar() {
        let n = 16;
        let scalar = MatmulScalar::new(n, 5);
        let vector = MatmulVector::new(n, 5);
        let config = SimConfig::builder().cores(1).build().unwrap();
        let (rs, _) = run_workload(&scalar, config).unwrap();
        let (rv, _) = run_workload(&vector, config).unwrap();
        assert!(
            rv.total_retired() * 2 < rs.total_retired(),
            "vector {} vs scalar {}",
            rv.total_retired(),
            rs.total_retired()
        );
    }

    #[test]
    fn rectangular_weak_scaling_shape_verifies() {
        let w = MatmulScalar::with_rows(6, 16, 9);
        let config = SimConfig::builder().cores(3).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn more_harts_than_rows_is_fine() {
        let w = MatmulScalar::new(3, 7);
        let config = SimConfig::builder().cores(8).build().unwrap();
        run_workload(&w, config).unwrap();
    }
}
