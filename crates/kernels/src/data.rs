//! Deterministic workload generators: dense matrices, CSR/ELL sparse
//! matrices and stencil grids.
//!
//! All generators are seeded so that every run of a benchmark sees the
//! same data — a prerequisite for the simulator's end-to-end
//! determinism tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major values.
    pub values: Vec<f64>,
}

impl DenseMatrix {
    /// Generates a matrix with values in `[-1, 1)`.
    #[must_use]
    pub fn random(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        DenseMatrix {
            rows,
            cols,
            values: (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols);
        self.values[row * self.cols + col]
    }

    /// Host-side reference matmul `self × other`, accumulating with
    /// fused multiply-add in the same order as the simulated kernels
    /// (so results compare exactly).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = vec![0.0f64; self.rows * other.cols];
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0.0f64;
                for k in 0..self.cols {
                    acc = self.at(i, k).mul_add(other.at(k, j), acc);
                }
                out[i * other.cols + j] = acc;
            }
        }
        DenseMatrix {
            rows: self.rows,
            cols: other.cols,
            values: out,
        }
    }
}

/// A sparse matrix in compressed sparse row format. Column indices are
/// stored as `u64` so the vector kernels can gather with `vluxei64`
/// without widening.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// `rows + 1` offsets into `col_idx`/`values`.
    pub row_ptr: Vec<u64>,
    /// Column index of each stored value.
    pub col_idx: Vec<u64>,
    /// Stored values.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Generates a uniformly random sparse matrix with ~`density`
    /// fraction of nonzeros per row (at least one per row, columns
    /// sorted).
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]` or the matrix is empty.
    #[must_use]
    pub fn random(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
        assert!(density > 0.0 && density <= 1.0, "density out of range");
        assert!(rows > 0 && cols > 0, "empty matrix");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let per_row = ((cols as f64 * density).round() as usize).max(1);
        for _ in 0..rows {
            let nnz = rng
                .gen_range((per_row / 2).max(1)..=per_row.max(1) * 2)
                .min(cols);
            let mut cols_of_row: Vec<u64> = Vec::with_capacity(nnz);
            while cols_of_row.len() < nnz {
                let c = rng.gen_range(0..cols as u64);
                if !cols_of_row.contains(&c) {
                    cols_of_row.push(c);
                }
            }
            cols_of_row.sort_unstable();
            for c in cols_of_row {
                col_idx.push(c);
                values.push(rng.gen_range(-1.0..1.0));
            }
            row_ptr.push(col_idx.len() as u64);
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Maximum nonzeros in any row (the ELL width).
    #[must_use]
    pub fn max_row_nnz(&self) -> usize {
        (0..self.rows)
            .map(|r| (self.row_ptr[r + 1] - self.row_ptr[r]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Host-side reference SpMV `y = A·x`, accumulating in CSR order
    /// with fused multiply-add (matches the simulated kernels exactly).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols`.
    #[must_use]
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                let mut acc = 0.0f64;
                for k in self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize {
                    acc = self.values[k].mul_add(x[self.col_idx[k] as usize], acc);
                }
                acc
            })
            .collect()
    }

    /// Converts to ELLPACK: column-major slot arrays padded with
    /// `(col 0, value 0.0)` entries. Returns `(width, cols, vals)` where
    /// `cols[s * rows + r]` is slot `s` of row `r`.
    #[must_use]
    pub fn to_ell(&self) -> (usize, Vec<u64>, Vec<f64>) {
        let width = self.max_row_nnz();
        let mut cols = vec![0u64; width * self.rows];
        let mut vals = vec![0.0f64; width * self.rows];
        for r in 0..self.rows {
            let start = self.row_ptr[r] as usize;
            let end = self.row_ptr[r + 1] as usize;
            for (slot, k) in (start..end).enumerate() {
                cols[slot * self.rows + r] = self.col_idx[k];
                vals[slot * self.rows + r] = self.values[k];
            }
        }
        (width, cols, vals)
    }
}

/// Generates a deterministic dense vector with values in `[-1, 1)`.
#[must_use]
pub fn random_vector(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// One Jacobi sweep of the 5-point stencil over an `n × m` row-major
/// grid (boundary cells copied unchanged) — the host reference for the
/// stencil kernel.
#[must_use]
pub fn stencil_step(grid: &[f64], n: usize, m: usize, c0: f64, c1: f64) -> Vec<f64> {
    assert_eq!(grid.len(), n * m);
    let mut out = grid.to_vec();
    for i in 1..n.saturating_sub(1) {
        for j in 1..m.saturating_sub(1) {
            let center = grid[i * m + j];
            let sum = grid[(i - 1) * m + j]
                + grid[(i + 1) * m + j]
                + grid[i * m + j - 1]
                + grid[i * m + j + 1];
            out[i * m + j] = c1.mul_add(sum, c0 * center);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matrix_is_deterministic() {
        let a = DenseMatrix::random(8, 8, 42);
        let b = DenseMatrix::random(8, 8, 42);
        assert_eq!(a, b);
        let c = DenseMatrix::random(8, 8, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn matmul_identity() {
        let a = DenseMatrix::random(4, 4, 1);
        let mut eye = DenseMatrix {
            rows: 4,
            cols: 4,
            values: vec![0.0; 16],
        };
        for i in 0..4 {
            eye.values[i * 4 + i] = 1.0;
        }
        let c = a.matmul(&eye);
        assert_eq!(c.values, a.values);
    }

    #[test]
    fn csr_structure_is_valid() {
        let m = CsrMatrix::random(32, 64, 0.1, 7);
        assert_eq!(m.row_ptr.len(), 33);
        assert_eq!(m.row_ptr[0], 0);
        assert_eq!(*m.row_ptr.last().unwrap() as usize, m.nnz());
        for r in 0..m.rows {
            let (s, e) = (m.row_ptr[r] as usize, m.row_ptr[r + 1] as usize);
            assert!(s <= e);
            assert!(e - s >= 1, "every row has at least one nonzero");
            // Columns sorted and in range.
            for w in m.col_idx[s..e].windows(2) {
                assert!(w[0] < w[1]);
            }
            for &c in &m.col_idx[s..e] {
                assert!((c as usize) < m.cols);
            }
        }
    }

    #[test]
    fn spmv_against_dense_equivalent() {
        let m = CsrMatrix::random(16, 16, 0.3, 3);
        let x = random_vector(16, 4);
        let y = m.spmv(&x);
        // Expand to dense and compare within FP tolerance (different
        // accumulation orders).
        let mut dense = vec![0.0; 16 * 16];
        for r in 0..16 {
            for k in m.row_ptr[r] as usize..m.row_ptr[r + 1] as usize {
                dense[r * 16 + m.col_idx[k] as usize] = m.values[k];
            }
        }
        for r in 0..16 {
            let expected: f64 = (0..16).map(|c| dense[r * 16 + c] * x[c]).sum();
            assert!((y[r] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn ell_round_trips_spmv() {
        let m = CsrMatrix::random(16, 32, 0.2, 9);
        let (width, cols, vals) = m.to_ell();
        assert_eq!(width, m.max_row_nnz());
        let x = random_vector(32, 10);
        // ELL-order SpMV (slot-major accumulation).
        let mut y = vec![0.0f64; m.rows];
        for slot in 0..width {
            for (r, acc) in y.iter_mut().enumerate() {
                let v = vals[slot * m.rows + r];
                let c = cols[slot * m.rows + r] as usize;
                *acc = v.mul_add(x[c], *acc);
            }
        }
        let reference = m.spmv(&x);
        for (a, b) in y.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn stencil_keeps_boundary() {
        let grid = random_vector(8 * 8, 5);
        let out = stencil_step(&grid, 8, 8, 0.5, 0.125);
        for j in 0..8 {
            assert_eq!(out[j], grid[j]); // top row
            assert_eq!(out[7 * 8 + j], grid[7 * 8 + j]); // bottom row
        }
        for i in 0..8 {
            assert_eq!(out[i * 8], grid[i * 8]); // left col
            assert_eq!(out[i * 8 + 7], grid[i * 8 + 7]); // right col
        }
        // Interior actually changed.
        assert_ne!(out[3 * 8 + 3], grid[3 * 8 + 3]);
    }
}
