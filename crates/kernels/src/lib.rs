//! The paper's HPC kernels, assembled for the Coyote simulator.
//!
//! "Four different kernels have been adapted to baremetal simulation in
//! Spike and can be executed using Coyote [...]: scalar matrix
//! multiplication, vector matrix multiplication, vector SpMV (three
//! different implementations of the algorithm) and vector stencil."
//!
//! This crate provides exactly those six kernels as [`Workload`]s —
//! each bundles its RISC-V assembly, a seeded data generator and a
//! host-side oracle that verifies the simulated result — plus a scalar
//! SpMV used (with scalar matmul) by the Figure 3 throughput
//! experiment, and an [`MlpInference`] "AI" kernel from the paper's
//! future-work list.
//!
//! # Examples
//!
//! ```
//! use coyote::SimConfig;
//! use coyote_kernels::matmul::MatmulScalar;
//! use coyote_kernels::workload::run_workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = MatmulScalar::new(8, 42);
//! let config = SimConfig::builder().cores(2).build()?;
//! let (report, _sim) = run_workload(&workload, config)?;
//! assert!(report.total_retired() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod fft;
pub mod filter;
pub mod matmul;
pub mod mlp;
pub mod spmv;
pub mod stencil;
pub mod workload;

pub use data::{CsrMatrix, DenseMatrix};
pub use fft::FftRadix2;
pub use filter::ThresholdFilter;
pub use matmul::{MatmulScalar, MatmulVector};
pub use mlp::MlpInference;
pub use spmv::{SpmvScalar, SpmvVectorAdaptive, SpmvVectorCsr, SpmvVectorEll};
pub use stencil::StencilVector;
pub use workload::{run_workload, VerifyError, Workload, WorkloadError};
