//! Masked-vector filter kernel: thresholded ReLU sparsification.
//!
//! `y[i] = max(x[i] - tau, 0)` with a global count of surviving
//! (non-zero) activations — the conditional-update pattern of HPDA
//! pipelines, expressed with the V extension's mask subset
//! (`vmfgt.vf` → `vfmerge.vfm`/masked arithmetic → `vcpop.m`) rather
//! than branches. Each hart filters a contiguous block and adds its
//! survivor count to a shared counter with `amoadd.d`.

use coyote::SparseMemory;
use coyote_asm::{AsmError, Assembler, Program};

use crate::data::random_vector;
use crate::workload::{read_f64_slice, verify_f64_slice, write_f64_slice, VerifyError, Workload};

/// Thresholded-ReLU stream filter.
#[derive(Debug, Clone)]
pub struct ThresholdFilter {
    n: usize,
    tau: f64,
    x: Vec<f64>,
}

impl ThresholdFilter {
    /// Creates a filter over `n` seeded random values in `[-1, 1)` with
    /// threshold `tau`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, tau: f64, seed: u64) -> ThresholdFilter {
        assert!(n > 0, "need at least one element");
        ThresholdFilter {
            n,
            tau,
            x: random_vector(n, seed),
        }
    }

    /// The host oracle: filtered vector and survivor count.
    fn oracle(&self) -> (Vec<f64>, u64) {
        let y: Vec<f64> = self.x.iter().map(|&v| (v - self.tau).max(0.0)).collect();
        let count = y.iter().filter(|&&v| v > 0.0).count() as u64;
        (y, count)
    }
}

impl Workload for ThresholdFilter {
    fn name(&self) -> &'static str {
        "threshold-filter"
    }

    fn program(&self, harts: usize) -> Result<Program, AsmError> {
        let n = self.n;
        let block = n.div_ceil(harts);
        let src = format!(
            "
            .data
            x: .zero {vb}
            y: .zero {vb}
            tau: .double {tau}
            survivors: .dword 0
            .text
            _start:
                csrr s0, mhartid
                li t0, {block}
                mul s1, s0, t0          # start
                add s2, s1, t0          # end
                li t1, {n}
                blt s2, t1, clamped
                mv s2, t1
            clamped:
                la t2, tau
                fld fa1, 0(t2)
                fmv.d.x fa2, zero       # 0.0
                li s4, 0                # local survivor count
            strip:
                sub t3, s2, s1
                blez t3, finish
                vsetvli t4, t3, e64,m1,ta,ma
                la t5, x
                slli t6, s1, 3
                add t5, t5, t6
                vle64.v v1, (t5)
                vfsub.vf v1, v1, fa1    # x - tau
                vmflt.vf v0, v1, fa2    # mask: below zero
                vfmerge.vfm v2, v1, fa2, v0   # clamp negatives to 0.0
                vmfgt.vf v3, v1, fa2    # strictly positive survivors
                vcpop.m a1, v3
                add s4, s4, a1
                la t5, y
                add t5, t5, t6
                vse64.v v2, (t5)
                add s1, s1, t4
                j strip
            finish:
                la t0, survivors
                amoadd.d t1, s4, (t0)
                li a0, 0
                li a7, 93
                ecall
            ",
            vb = 8 * n,
            tau = self.tau,
        );
        Assembler::new().assemble(&src)
    }

    fn populate(&self, program: &Program, mem: &mut SparseMemory) {
        write_f64_slice(mem, program.symbol("x").expect("x"), &self.x);
    }

    fn verify(&self, program: &Program, mem: &SparseMemory) -> Result<(), VerifyError> {
        let (expected_y, expected_count) = self.oracle();
        let y = read_f64_slice(mem, program.symbol("y").expect("y"), self.n);
        verify_f64_slice(&y, &expected_y)?;
        let count = mem.read_u64(program.symbol("survivors").expect("survivors"));
        if count != expected_count {
            return Err(VerifyError {
                index: self.n, // sentinel: the counter, not an element
                got: count as f64,
                expected: expected_count as f64,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use coyote::SimConfig;

    #[test]
    fn single_core_filter_verifies() {
        let w = ThresholdFilter::new(100, 0.25, 61);
        let config = SimConfig::builder().cores(1).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn multicore_filter_counts_globally() {
        let w = ThresholdFilter::new(257, 0.0, 62); // odd size: uneven blocks
        let config = SimConfig::builder().cores(4).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn threshold_extremes() {
        // tau = -2: nothing clamped; tau = 2: everything clamped.
        for tau in [-2.0, 2.0] {
            let w = ThresholdFilter::new(64, tau, 63);
            let config = SimConfig::builder().cores(2).build().unwrap();
            run_workload(&w, config).unwrap();
        }
    }

    #[test]
    fn oracle_counts_strictly_positive() {
        let w = ThresholdFilter::new(8, 0.5, 64);
        let (y, count) = w.oracle();
        assert_eq!(count, y.iter().filter(|&&v| v > 0.0).count() as u64);
    }
}
