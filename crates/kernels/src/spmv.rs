//! Sparse matrix–vector multiplication kernels: the paper's scalar SpMV
//! plus "three different implementations of the algorithm" in vector
//! form.
//!
//! All four compute `y = A · x` for a CSR matrix. The vector variants
//! differ in how they map the irregular structure onto the vector unit:
//!
//! * [`SpmvVectorCsr`] — strip-mines each row's nonzeros and gathers
//!   `x` with `vluxei64` (row-per-reduction);
//! * [`SpmvVectorEll`] — converts to ELLPACK and vectorizes *across*
//!   rows with unit-stride slot loads (regular accesses, padded work);
//! * [`SpmvVectorAdaptive`] — per-row hybrid: rows with enough
//!   nonzeros take the gather path, short rows stay scalar.

use coyote::SparseMemory;
use coyote_asm::{AsmError, Assembler, Program};

use crate::data::{random_vector, CsrMatrix};
use crate::workload::{
    read_f64_slice, verify_f64_slice, write_f64_slice, write_u64_slice, VerifyError, Workload,
};

/// Shared inputs of every SpMV variant.
#[derive(Debug, Clone)]
struct SpmvData {
    matrix: CsrMatrix,
    x: Vec<f64>,
}

impl SpmvData {
    fn new(rows: usize, cols: usize, density: f64, seed: u64) -> SpmvData {
        let matrix = CsrMatrix::random(rows, cols, density, seed);
        let x = random_vector(cols, seed ^ 0x5bd1_e995);
        SpmvData { matrix, x }
    }

    fn populate_csr(&self, program: &Program, mem: &mut SparseMemory) {
        write_u64_slice(
            mem,
            program.symbol("row_ptr").expect("row_ptr"),
            &self.matrix.row_ptr,
        );
        write_u64_slice(
            mem,
            program.symbol("col_idx").expect("col_idx"),
            &self.matrix.col_idx,
        );
        write_f64_slice(
            mem,
            program.symbol("vals").expect("vals"),
            &self.matrix.values,
        );
        write_f64_slice(mem, program.symbol("x").expect("x"), &self.x);
    }

    fn verify(&self, program: &Program, mem: &SparseMemory) -> Result<(), VerifyError> {
        let y = read_f64_slice(mem, program.symbol("y").expect("y"), self.matrix.rows);
        verify_f64_slice(&y, &self.matrix.spmv(&self.x))
    }

    fn csr_data_section(&self) -> String {
        format!(
            ".data
             row_ptr: .zero {rp}
             col_idx: .zero {ci}
             vals:    .zero {va}
             x:       .zero {xb}
             y:       .zero {yb}",
            rp = 8 * (self.matrix.rows + 1),
            ci = 8 * self.matrix.nnz(),
            va = 8 * self.matrix.nnz(),
            xb = 8 * self.matrix.cols,
            yb = 8 * self.matrix.rows,
        )
    }
}

/// Scalar CSR SpMV (the paper's Figure 3 "SpMV" workload).
#[derive(Debug, Clone)]
pub struct SpmvScalar {
    data: SpmvData,
}

impl SpmvScalar {
    /// Creates a `rows × cols` SpMV with the given nonzero density.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or density is out of `(0, 1]`.
    #[must_use]
    pub fn new(rows: usize, cols: usize, density: f64, seed: u64) -> SpmvScalar {
        SpmvScalar {
            data: SpmvData::new(rows, cols, density, seed),
        }
    }

    /// The generated matrix.
    #[must_use]
    pub fn matrix(&self) -> &CsrMatrix {
        &self.data.matrix
    }
}

impl Workload for SpmvScalar {
    fn name(&self) -> &'static str {
        "spmv-scalar"
    }

    fn program(&self, harts: usize) -> Result<Program, AsmError> {
        let rows = self.data.matrix.rows;
        let src = format!(
            "
            {data}
            .text
            _start:
                csrr s0, mhartid
                li s11, {rows}
                li s10, {harts}
            outer:
                bge s0, s11, done
                la t0, row_ptr
                slli t1, s0, 3
                add t0, t0, t1
                ld s1, 0(t0)            # k = row start
                ld s2, 8(t0)            # row end
                la s3, col_idx
                la s4, vals
                la s5, x
                fmv.d.x fa0, zero
                bge s1, s2, store
            inner:
                slli t2, s1, 3
                add t3, s3, t2
                ld t4, 0(t3)            # col
                slli t4, t4, 3
                add t4, s5, t4
                fld fa1, 0(t4)          # x[col]
                add t5, s4, t2
                fld fa2, 0(t5)          # value
                fmadd.d fa0, fa2, fa1, fa0
                addi s1, s1, 1
                blt s1, s2, inner
            store:
                la t6, y
                slli t2, s0, 3
                add t6, t6, t2
                fsd fa0, 0(t6)
                add s0, s0, s10
                j outer
            done:
                li a0, 0
                li a7, 93
                ecall
            ",
            data = self.data.csr_data_section(),
        );
        Assembler::new().assemble(&src)
    }

    fn populate(&self, program: &Program, mem: &mut SparseMemory) {
        self.data.populate_csr(program, mem);
    }

    fn verify(&self, program: &Program, mem: &SparseMemory) -> Result<(), VerifyError> {
        self.data.verify(program, mem)
    }
}

/// Vector SpMV, variant 1: per-row strip-mined gather.
#[derive(Debug, Clone)]
pub struct SpmvVectorCsr {
    data: SpmvData,
}

impl SpmvVectorCsr {
    /// Creates a `rows × cols` SpMV with the given nonzero density.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or density is out of `(0, 1]`.
    #[must_use]
    pub fn new(rows: usize, cols: usize, density: f64, seed: u64) -> SpmvVectorCsr {
        SpmvVectorCsr {
            data: SpmvData::new(rows, cols, density, seed),
        }
    }

    /// The generated matrix.
    #[must_use]
    pub fn matrix(&self) -> &CsrMatrix {
        &self.data.matrix
    }
}

impl Workload for SpmvVectorCsr {
    fn name(&self) -> &'static str {
        "spmv-vector-csr"
    }

    fn program(&self, harts: usize) -> Result<Program, AsmError> {
        let rows = self.data.matrix.rows;
        let src = format!(
            "
            {data}
            .text
            _start:
                csrr s0, mhartid
                li s11, {rows}
                li s10, {harts}
                li s9, 65536            # AVL request for VLMAX
            outer:
                bge s0, s11, done
                la t0, row_ptr
                slli t1, s0, 3
                add t0, t0, t1
                ld s1, 0(t0)            # k
                ld s2, 8(t0)            # end
                vsetvli t2, s9, e64,m1,ta,ma
                vmv.v.i v8, 0           # per-lane accumulators
            strip:
                sub t3, s2, s1
                blez t3, reduce
                vsetvli t4, t3, e64,m1,ta,ma
                slli t5, s1, 3
                la t6, col_idx
                add t6, t6, t5
                vle64.v v1, (t6)        # column indices
                vsll.vi v1, v1, 3       # byte offsets
                la s3, x
                vluxei64.v v2, (s3), v1 # gather x[col]
                la s4, vals
                add s4, s4, t5
                vle64.v v3, (s4)
                vfmacc.vv v8, v3, v2    # acc += value * x
                add s1, s1, t4
                j strip
            reduce:
                vsetvli t2, s9, e64,m1,ta,ma
                vmv.v.i v9, 0
                vfredusum.vs v9, v8, v9
                vfmv.f.s fa0, v9
                la t6, y
                slli t5, s0, 3
                add t6, t6, t5
                fsd fa0, 0(t6)
                add s0, s0, s10
                j outer
            done:
                li a0, 0
                li a7, 93
                ecall
            ",
            data = self.data.csr_data_section(),
        );
        Assembler::new().assemble(&src)
    }

    fn populate(&self, program: &Program, mem: &mut SparseMemory) {
        self.data.populate_csr(program, mem);
    }

    fn verify(&self, program: &Program, mem: &SparseMemory) -> Result<(), VerifyError> {
        self.data.verify(program, mem)
    }
}

/// Vector SpMV, variant 2: ELLPACK, vectorized across rows.
#[derive(Debug, Clone)]
pub struct SpmvVectorEll {
    data: SpmvData,
    width: usize,
    ell_cols: Vec<u64>,
    ell_vals: Vec<f64>,
}

impl SpmvVectorEll {
    /// Creates a `rows × cols` SpMV with the given nonzero density.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or density is out of `(0, 1]`.
    #[must_use]
    pub fn new(rows: usize, cols: usize, density: f64, seed: u64) -> SpmvVectorEll {
        let data = SpmvData::new(rows, cols, density, seed);
        let (width, ell_cols, ell_vals) = data.matrix.to_ell();
        SpmvVectorEll {
            data,
            width,
            ell_cols,
            ell_vals,
        }
    }

    /// The ELL width (maximum nonzeros per row).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Workload for SpmvVectorEll {
    fn name(&self) -> &'static str {
        "spmv-vector-ell"
    }

    fn program(&self, harts: usize) -> Result<Program, AsmError> {
        let rows = self.data.matrix.rows;
        let width = self.width;
        let block = rows.div_ceil(harts);
        let slot_bytes = 8 * width * rows;
        let src = format!(
            "
            .data
            ell_cols: .zero {slot_bytes}
            ell_vals: .zero {slot_bytes}
            x:        .zero {xb}
            y:        .zero {yb}
            .text
            _start:
                csrr s0, mhartid
                li t0, {block}
                mul s1, s0, t0          # r0
                add s2, s1, t0          # r1
                li t1, {rows}
                blt s2, t1, clamped
                mv s2, t1
            clamped:
                li s7, {width}
            row_strip:
                bge s1, s2, done
                sub t2, s2, s1
                vsetvli s3, t2, e64,m1,ta,ma
                vmv.v.i v8, 0           # acc for rows r0..r0+vl
                li s4, 0                # slot
            slot_loop:
                bge s4, s7, store
                li t3, {rows}
                mul t4, s4, t3
                add t4, t4, s1
                slli t4, t4, 3          # (slot*rows + r0) * 8
                la t5, ell_cols
                add t5, t5, t4
                vle64.v v1, (t5)        # cols (unit stride across rows)
                vsll.vi v1, v1, 3
                la t6, x
                vluxei64.v v2, (t6), v1
                la t5, ell_vals
                add t5, t5, t4
                vle64.v v3, (t5)
                vfmacc.vv v8, v3, v2
                addi s4, s4, 1
                j slot_loop
            store:
                la t5, y
                slli t4, s1, 3
                add t5, t5, t4
                vse64.v v8, (t5)
                add s1, s1, s3
                j row_strip
            done:
                li a0, 0
                li a7, 93
                ecall
            ",
            xb = 8 * self.data.matrix.cols,
            yb = 8 * rows,
        );
        Assembler::new().assemble(&src)
    }

    fn populate(&self, program: &Program, mem: &mut SparseMemory) {
        write_u64_slice(
            mem,
            program.symbol("ell_cols").expect("ell_cols"),
            &self.ell_cols,
        );
        write_f64_slice(
            mem,
            program.symbol("ell_vals").expect("ell_vals"),
            &self.ell_vals,
        );
        write_f64_slice(mem, program.symbol("x").expect("x"), &self.data.x);
    }

    fn verify(&self, program: &Program, mem: &SparseMemory) -> Result<(), VerifyError> {
        self.data.verify(program, mem)
    }
}

/// Vector SpMV, variant 3: adaptive row hybrid — rows with at least 16
/// nonzeros take the gather path, shorter rows stay scalar (avoiding
/// vector-setup overhead on nearly-empty rows).
#[derive(Debug, Clone)]
pub struct SpmvVectorAdaptive {
    data: SpmvData,
}

impl SpmvVectorAdaptive {
    /// Vector-path threshold in nonzeros per row.
    pub const THRESHOLD: usize = 16;

    /// Creates a `rows × cols` SpMV with the given nonzero density.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or density is out of `(0, 1]`.
    #[must_use]
    pub fn new(rows: usize, cols: usize, density: f64, seed: u64) -> SpmvVectorAdaptive {
        SpmvVectorAdaptive {
            data: SpmvData::new(rows, cols, density, seed),
        }
    }
}

impl Workload for SpmvVectorAdaptive {
    fn name(&self) -> &'static str {
        "spmv-vector-adaptive"
    }

    fn program(&self, harts: usize) -> Result<Program, AsmError> {
        let rows = self.data.matrix.rows;
        let threshold = Self::THRESHOLD;
        let src = format!(
            "
            {data}
            .text
            _start:
                csrr s0, mhartid
                li s11, {rows}
                li s10, {harts}
                li s9, 65536
            outer:
                bge s0, s11, done
                la t0, row_ptr
                slli t1, s0, 3
                add t0, t0, t1
                ld s1, 0(t0)
                ld s2, 8(t0)
                sub t2, s2, s1
                li t3, {threshold}
                bge t2, t3, vector_row

                # ---- scalar path for short rows ----
                la s3, col_idx
                la s4, vals
                la s5, x
                fmv.d.x fa0, zero
                bge s1, s2, store
            scalar_inner:
                slli t2, s1, 3
                add t3, s3, t2
                ld t4, 0(t3)
                slli t4, t4, 3
                add t4, s5, t4
                fld fa1, 0(t4)
                add t5, s4, t2
                fld fa2, 0(t5)
                fmadd.d fa0, fa2, fa1, fa0
                addi s1, s1, 1
                blt s1, s2, scalar_inner
                j store

                # ---- gather path for long rows ----
            vector_row:
                vsetvli t2, s9, e64,m1,ta,ma
                vmv.v.i v8, 0
            vstrip:
                sub t3, s2, s1
                blez t3, vreduce
                vsetvli t4, t3, e64,m1,ta,ma
                slli t5, s1, 3
                la t6, col_idx
                add t6, t6, t5
                vle64.v v1, (t6)
                vsll.vi v1, v1, 3
                la s3, x
                vluxei64.v v2, (s3), v1
                la s4, vals
                add s4, s4, t5
                vle64.v v3, (s4)
                vfmacc.vv v8, v3, v2
                add s1, s1, t4
                j vstrip
            vreduce:
                vsetvli t2, s9, e64,m1,ta,ma
                vmv.v.i v9, 0
                vfredusum.vs v9, v8, v9
                vfmv.f.s fa0, v9
            store:
                la t6, y
                slli t5, s0, 3
                add t6, t6, t5
                fsd fa0, 0(t6)
                add s0, s0, s10
                j outer
            done:
                li a0, 0
                li a7, 93
                ecall
            ",
            data = self.data.csr_data_section(),
        );
        Assembler::new().assemble(&src)
    }

    fn populate(&self, program: &Program, mem: &mut SparseMemory) {
        self.data.populate_csr(program, mem);
    }

    fn verify(&self, program: &Program, mem: &SparseMemory) -> Result<(), VerifyError> {
        self.data.verify(program, mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use coyote::SimConfig;

    fn small_config(cores: usize) -> SimConfig {
        SimConfig::builder().cores(cores).build().unwrap()
    }

    #[test]
    fn scalar_spmv_verifies() {
        let w = SpmvScalar::new(24, 32, 0.2, 11);
        run_workload(&w, small_config(2)).unwrap();
    }

    #[test]
    fn gather_spmv_verifies() {
        let w = SpmvVectorCsr::new(24, 32, 0.3, 12);
        run_workload(&w, small_config(2)).unwrap();
    }

    #[test]
    fn ell_spmv_verifies() {
        let w = SpmvVectorEll::new(24, 32, 0.25, 13);
        assert!(w.width() > 0);
        run_workload(&w, small_config(2)).unwrap();
    }

    #[test]
    fn adaptive_spmv_verifies_with_mixed_rows() {
        // Density chosen so some rows sit below and some above the
        // threshold (rows get 3..=12 nnz at 0.1 of 64... widen range).
        let w = SpmvVectorAdaptive::new(32, 64, 0.25, 14);
        let m = &w.data.matrix;
        let nnzs: Vec<usize> = (0..m.rows)
            .map(|r| (m.row_ptr[r + 1] - m.row_ptr[r]) as usize)
            .collect();
        assert!(
            nnzs.iter().any(|&n| n >= SpmvVectorAdaptive::THRESHOLD)
                && nnzs.iter().any(|&n| n < SpmvVectorAdaptive::THRESHOLD),
            "want mixed row lengths, got {nnzs:?}"
        );
        run_workload(&w, small_config(4)).unwrap();
    }

    #[test]
    fn single_row_matrix() {
        let w = SpmvScalar::new(1, 8, 0.5, 15);
        run_workload(&w, small_config(4)).unwrap();
    }

    #[test]
    fn variants_agree_on_same_seed() {
        // All variants must produce identical y for identical inputs.
        let a = SpmvScalar::new(16, 24, 0.3, 99);
        let b = SpmvVectorCsr::new(16, 24, 0.3, 99);
        assert_eq!(a.data.matrix, b.data.matrix);
        assert_eq!(a.data.x, b.data.x);
    }
}
