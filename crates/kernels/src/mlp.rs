//! Two-layer MLP inference kernel — the "AI" workload from the paper's
//! future-work list ("These will include FFT, AI and other
//! representative HPC and HPDA kernels").
//!
//! Computes `z = W2 · relu(W1 · x + b1) + b2` with dense row-major
//! weights. Layer rows are partitioned round-robin across harts; an
//! `amoadd.d` counting barrier separates the layers (the hidden vector
//! must be complete before layer 2 consumes it). The matrix-vector
//! products use the unit-stride `vfmacc.vv`/`vfredusum` pattern; the
//! ReLU is a scalar `fmax.d` against zero.

use coyote::SparseMemory;
use coyote_asm::{AsmError, Assembler, Program};

use crate::data::{random_vector, DenseMatrix};
use crate::workload::{read_f64_slice, verify_f64_slice, write_f64_slice, VerifyError, Workload};

/// Two-layer MLP inference.
#[derive(Debug, Clone)]
pub struct MlpInference {
    d_in: usize,
    d_hidden: usize,
    d_out: usize,
    w1: DenseMatrix,
    b1: Vec<f64>,
    w2: DenseMatrix,
    b2: Vec<f64>,
    x: Vec<f64>,
}

impl MlpInference {
    /// Creates a `d_in → d_hidden → d_out` MLP with seeded random
    /// weights and input.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(d_in: usize, d_hidden: usize, d_out: usize, seed: u64) -> MlpInference {
        assert!(d_in > 0 && d_hidden > 0 && d_out > 0, "empty layer");
        MlpInference {
            d_in,
            d_hidden,
            d_out,
            w1: DenseMatrix::random(d_hidden, d_in, seed),
            b1: random_vector(d_hidden, seed ^ 0x1111),
            w2: DenseMatrix::random(d_out, d_hidden, seed ^ 0x2222),
            b2: random_vector(d_out, seed ^ 0x3333),
            x: random_vector(d_in, seed ^ 0x4444),
        }
    }

    /// Hidden-layer width.
    #[must_use]
    pub fn d_hidden(&self) -> usize {
        self.d_hidden
    }

    /// Host oracle mirroring the kernel's per-row accumulation order.
    fn oracle(&self) -> Vec<f64> {
        let matvec = |w: &DenseMatrix, b: &[f64], input: &[f64], relu: bool| -> Vec<f64> {
            (0..w.rows)
                .map(|i| {
                    let mut acc = 0.0f64;
                    for (k, &value) in input.iter().enumerate().take(w.cols) {
                        acc = w.at(i, k).mul_add(value, acc);
                    }
                    acc += b[i];
                    if relu {
                        acc.max(0.0)
                    } else {
                        acc
                    }
                })
                .collect()
        };
        let h = matvec(&self.w1, &self.b1, &self.x, true);
        matvec(&self.w2, &self.b2, &h, false)
    }
}

impl Workload for MlpInference {
    fn name(&self) -> &'static str {
        "mlp-inference"
    }

    fn program(&self, harts: usize) -> Result<Program, AsmError> {
        let src = format!(
            "
            .data
            w1: .zero {w1b}
            b1: .zero {b1b}
            w2: .zero {w2b}
            b2: .zero {b2b}
            x:  .zero {xb}
            h:  .zero {hb}
            z:  .zero {zb}
            barrier: .dword 0
            .text
            # Layer routine convention (no stack; inlined twice):
            #   s1 = weights, s2 = bias, s3 = input, s4 = output
            #   s5 = rows, s6 = cols, s7 = relu flag
            _start:
                csrr s0, mhartid
                li s10, {harts}
                li s9, 65536            # AVL request for VLMAX

                # ---- layer 1: h = relu(w1 x + b1) ----
                la s1, w1
                la s2, b1
                la s3, x
                la s4, h
                li s5, {d_hidden}
                li s6, {d_in}
                li s7, 1
                jal ra, layer

                # ---- barrier: all h elements written ----
                la t0, barrier
                li t1, 1
                amoadd.d t2, t1, (t0)
            spin:
                ld t3, 0(t0)
                blt t3, s10, spin

                # ---- layer 2: z = w2 h + b2 ----
                la s1, w2
                la s2, b2
                la s3, h
                la s4, z
                li s5, {d_out}
                li s6, {d_hidden}
                li s7, 0
                jal ra, layer

                li a0, 0
                li a7, 93
                ecall

            layer:
                mv t0, s0               # row = hart
            row_loop:
                bge t0, s5, layer_done
                # acc lanes = 0 at VLMAX
                vsetvli t1, s9, e64,m1,ta,ma
                vmv.v.i v8, 0
                # row pointer = weights + row*cols*8
                mul t2, t0, s6
                slli t2, t2, 3
                add t2, s1, t2
                mv t3, s3               # input pointer
                mv t4, s6               # remaining cols
            strip:
                blez t4, reduce
                vsetvli t5, t4, e64,m1,ta,ma
                vle64.v v1, (t2)
                vle64.v v2, (t3)
                vfmacc.vv v8, v1, v2
                slli t6, t5, 3
                add t2, t2, t6
                add t3, t3, t6
                sub t4, t4, t5
                j strip
            reduce:
                vsetvli t1, s9, e64,m1,ta,ma
                vmv.v.i v9, 0
                vfredusum.vs v9, v8, v9
                vfmv.f.s fa0, v9
                # + bias
                slli t6, t0, 3
                add t5, s2, t6
                fld fa1, 0(t5)
                fadd.d fa0, fa0, fa1
                # optional ReLU
                beqz s7, store
                fmv.d.x fa2, zero
                fmax.d fa0, fa0, fa2
            store:
                add t5, s4, t6
                fsd fa0, 0(t5)
                add t0, t0, s10
                j row_loop
            layer_done:
                ret
            ",
            w1b = 8 * self.d_hidden * self.d_in,
            b1b = 8 * self.d_hidden,
            w2b = 8 * self.d_out * self.d_hidden,
            b2b = 8 * self.d_out,
            xb = 8 * self.d_in,
            hb = 8 * self.d_hidden,
            zb = 8 * self.d_out,
            d_in = self.d_in,
            d_hidden = self.d_hidden,
            d_out = self.d_out,
        );
        Assembler::new().assemble(&src)
    }

    fn populate(&self, program: &Program, mem: &mut SparseMemory) {
        let sym = |name: &str| program.symbol(name).expect("mlp symbol");
        write_f64_slice(mem, sym("w1"), &self.w1.values);
        write_f64_slice(mem, sym("b1"), &self.b1);
        write_f64_slice(mem, sym("w2"), &self.w2.values);
        write_f64_slice(mem, sym("b2"), &self.b2);
        write_f64_slice(mem, sym("x"), &self.x);
    }

    fn verify(&self, program: &Program, mem: &SparseMemory) -> Result<(), VerifyError> {
        let z = read_f64_slice(mem, program.symbol("z").expect("z"), self.d_out);
        verify_f64_slice(&z, &self.oracle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use coyote::SimConfig;

    #[test]
    fn single_core_inference_verifies() {
        let w = MlpInference::new(24, 16, 8, 31);
        let config = SimConfig::builder().cores(1).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn multicore_inference_with_barrier_verifies() {
        let w = MlpInference::new(32, 24, 10, 32);
        let config = SimConfig::builder().cores(4).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn more_harts_than_rows() {
        let w = MlpInference::new(8, 3, 2, 33);
        let config = SimConfig::builder().cores(8).build().unwrap();
        run_workload(&w, config).unwrap();
    }

    #[test]
    fn relu_actually_clamps() {
        // With random weights in [-1, 1) some hidden pre-activations are
        // negative; the oracle must show zeros after ReLU for the kernel
        // comparison to be meaningful.
        let w = MlpInference::new(16, 32, 4, 34);
        let pre: Vec<f64> = (0..w.d_hidden)
            .map(|i| {
                let mut acc = 0.0f64;
                for k in 0..w.d_in {
                    acc = w.w1.at(i, k).mul_add(w.x[k], acc);
                }
                acc + w.b1[i]
            })
            .collect();
        assert!(pre.iter().any(|&v| v < 0.0), "want negative activations");
        let config = SimConfig::builder().cores(2).build().unwrap();
        run_workload(&w, config).unwrap();
    }
}
