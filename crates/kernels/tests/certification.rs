//! Static certification of the shipped paper kernels: the scalar
//! matmul partitions output rows round-robin by `mhartid`, so the
//! analysis must prove its per-hart write footprints disjoint and
//! grant the certificate; the vector matmul and the `amoadd.d`
//! barrier kernels are out of the analysis's scope (vector memory,
//! atomics) and must be declined with a reason — never mis-certified.

use coyote_analysis::certify;
use coyote_kernels::workload::Workload;
use coyote_kernels::{MatmulScalar, MatmulVector};

#[test]
fn scalar_matmul_earns_a_certificate() {
    // The paper's Figure-3 shape: 16 harts over a 20x20 matrix, rows
    // handed out round-robin so each hart's slice of C (and A) is a
    // strided, provably private set.
    let harts = 16;
    let program = MatmulScalar::new(20, 7).program(harts).expect("assembles");
    let outcome = certify(&program, harts);
    assert!(
        outcome.granted,
        "round-robin row partitioning must certify: {:?}",
        outcome.reasons
    );
}

#[test]
fn scalar_matmul_certifies_when_harts_outnumber_rows() {
    // More harts than rows: the surplus harts exit straight away and
    // contribute empty footprints.
    let program = MatmulScalar::new(3, 7).program(8).expect("assembles");
    let outcome = certify(&program, 8);
    assert!(outcome.granted, "{:?}", outcome.reasons);
}

#[test]
fn vector_matmul_is_declined_not_miscertified() {
    // `vle64.v`/`vse64.v` footprints depend on `vsetvli`, which the
    // abstract interpreter does not model; the analysis must poison
    // and decline rather than guess.
    let harts = 4;
    let program = MatmulVector::new(12, 3).program(harts).expect("assembles");
    let outcome = certify(&program, harts);
    assert!(!outcome.granted);
    assert!(
        outcome.reasons.iter().any(|r| r.contains("vector")),
        "declination should name the vector poison: {:?}",
        outcome.reasons
    );
}
