//! Differential co-simulation oracle.
//!
//! Coyote's core architectural contract is that the *functional* result
//! of a program is independent of the *timing* configuration: caches,
//! scoreboards and the NoC may change **when** things happen but never
//! **what** happens. This crate enforces that contract at runtime.
//!
//! [`LockstepChecker`] owns a pure functional reference machine — one
//! [`Hart`] per core plus a private [`SparseMemory`], with no caches,
//! no scoreboard and no hierarchy — and replays every instruction the
//! timed simulation retires, in the exact global retirement order, then
//! diffs the architectural state (integer, FP and vector registers,
//! `pc`, the CSRs the workspace models, and every byte the instruction
//! wrote to memory). The first mismatch produces a structured
//! [`Divergence`] naming the core, cycle, PC, disassembled instruction
//! and the exact state delta.
//!
//! Because the reference machine consumes the simulation's own
//! cycle/instret counters and follows the simulation's retirement
//! interleaving, it stays in sync even through `csrr cycle` reads and
//! legitimately racy shared-memory programs — it checks that the timed
//! machine faithfully executed *its own* schedule, not that the
//! schedule itself is unique. What it deliberately cannot check:
//! cycle counts themselves, and whether a *different* legal
//! interleaving would have produced other values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use coyote_asm::Program;
use coyote_isa::{decode, Csr, FReg, VReg, XReg};
use coyote_iss::core::DecodedText;
use coyote_iss::exec::{execute, Ecall, MemAccess};
use coyote_iss::{CoreSnapshot, Hart, SparseMemory};

/// One architectural mismatch between the reference machine and the
/// timed simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// What diverged, e.g. `"x6 (t1)"`, `"pc"`, `"mem[0x81000040+8]"`.
    pub item: String,
    /// The reference machine's value.
    pub reference: String,
    /// The timed simulation's value.
    pub simulation: String,
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: reference {} != simulation {}",
            self.item, self.reference, self.simulation
        )
    }
}

/// A structured divergence report: the timed simulation's architectural
/// state disagreed with the functional reference at an instruction
/// retirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Core whose retirement diverged.
    pub core: usize,
    /// Simulation cycle of the retirement.
    pub cycle: u64,
    /// PC of the retiring instruction.
    pub pc: u64,
    /// Disassembly of the retiring instruction.
    pub inst: String,
    /// Every state mismatch found (capped; see [`Divergence::TRUNCATED`]).
    pub deltas: Vec<Delta>,
    /// Snapshot of every core at divergence time (filled in by the
    /// orchestrator, which owns the cores).
    pub context: Vec<CoreSnapshot>,
    /// The orchestrator's flight-recorder tail (rendered event lines,
    /// oldest first, at most [`TRAIL_EVENTS`]): what the machine was
    /// doing in the cycles leading up to the divergence. Filled in by
    /// the orchestrator, like `context`.
    pub trail: Vec<String>,
    /// RNG seed that regenerates the diverging program, when the run
    /// came from a property-test harness.
    pub replay_seed: Option<u64>,
}

/// Flight-recorder events the orchestrator attaches to a divergence
/// report's [`Divergence::trail`].
pub const TRAIL_EVENTS: usize = 16;

impl Divergence {
    /// Max deltas collected per report; further mismatches are dropped.
    pub const TRUNCATED: usize = 16;
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "co-simulation divergence: core {} at cycle {}, pc {:#x}: `{}`",
            self.core, self.cycle, self.pc, self.inst
        )?;
        for delta in &self.deltas {
            write!(f, "\n  {delta}")?;
        }
        if self.deltas.len() == Self::TRUNCATED {
            write!(f, "\n  (further deltas truncated)")?;
        }
        if let Some(seed) = self.replay_seed {
            write!(f, "\n  replay seed: {seed:#018x}")?;
        }
        if !self.context.is_empty() {
            write!(f, "\n  machine state at divergence:")?;
            for snap in &self.context {
                write!(f, "\n    {snap}")?;
            }
        }
        if !self.trail.is_empty() {
            write!(f, "\n  recent events:")?;
            for line in &self.trail {
                write!(f, "\n    {line}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for Divergence {}

/// Per-core reference state.
#[derive(Debug, Clone)]
struct RefCore {
    hart: Hart,
    instret: u64,
    halted: bool,
}

/// The functional reference machine, checked in lockstep against a
/// timed simulation.
#[derive(Debug, Clone)]
pub struct LockstepChecker {
    cores: Vec<RefCore>,
    mem: SparseMemory,
    text: DecodedText,
    replay_seed: Option<u64>,
    access_buf: Vec<MemAccess>,
}

impl LockstepChecker {
    /// Builds a reference machine for `cores` harts running `program`.
    #[must_use]
    pub fn new(program: &Program, cores: usize, vlen_bits: u64) -> LockstepChecker {
        let mut mem = SparseMemory::new();
        mem.load_program(program);
        LockstepChecker {
            cores: (0..cores)
                .map(|i| RefCore {
                    hart: Hart::new(i as u64, program.entry(), vlen_bits),
                    instret: 0,
                    halted: false,
                })
                .collect(),
            mem,
            text: DecodedText::from_program(program),
            replay_seed: None,
            access_buf: Vec::new(),
        }
    }

    /// Attaches a property-test replay seed to future divergence
    /// reports.
    pub fn set_replay_seed(&mut self, seed: u64) {
        self.replay_seed = Some(seed);
    }

    /// Re-synchronises the reference memory with the timed machine's
    /// functional memory.
    ///
    /// Workload harnesses populate input data directly into simulation
    /// memory after construction; the orchestrator calls this once
    /// before the first retirement so the reference machine sees the
    /// same initial image.
    pub fn sync_memory(&mut self, mem: &SparseMemory) {
        self.mem = mem.clone();
    }

    /// Instructions the reference machine has retired on `core`.
    #[must_use]
    pub fn instret(&self, core: usize) -> u64 {
        self.cores[core].instret
    }

    /// Invalidates predecoded text entries patched by a self-modifying
    /// store, mirroring the timed machine's invalidation point so both
    /// machines re-decode the patched words from their memories at the
    /// same retirement boundary.
    pub fn invalidate_text(&mut self, addr: u64, len: u64) {
        self.text.invalidate(addr, len);
    }

    /// Replays one retirement of `core` at `cycle` on the reference
    /// machine and diffs the result against the simulation's
    /// architectural state.
    ///
    /// Must be called once per retirement, in the simulation's global
    /// retirement order (the shared reference memory replays the same
    /// interleaving the timed machine produced). `sim_mem` is the timed
    /// simulation's functional memory *after* the retirement.
    ///
    /// # Errors
    ///
    /// Returns a [`Divergence`] describing the first mismatching
    /// retirement. `context` is left empty — the orchestrator owns the
    /// cores and fills it in.
    pub fn check_retirement(
        &mut self,
        core: usize,
        cycle: u64,
        sim_hart: &Hart,
        sim_mem: &SparseMemory,
    ) -> Result<(), Box<Divergence>> {
        let replay_seed = self.replay_seed;
        let reference = &mut self.cores[core];
        debug_assert!(!reference.halted, "retirement on a halted core {core}");
        let pc = reference.hart.pc;

        let divergence = |inst: String, deltas: Vec<Delta>| {
            Box::new(Divergence {
                core,
                cycle,
                pc,
                inst,
                deltas,
                context: Vec::new(),
                trail: Vec::new(),
                replay_seed,
            })
        };

        let inst = match self.text.get(pc) {
            Some(inst) => *inst,
            None => {
                let word = self.mem.read_u32(pc);
                match decode(word) {
                    Ok(inst) => inst,
                    Err(_) => {
                        return Err(divergence(
                            format!(".word {word:#010x}"),
                            vec![Delta {
                                item: "decode".into(),
                                reference: "undecodable".into(),
                                simulation: "retired an instruction".into(),
                            }],
                        ))
                    }
                }
            }
        };

        let mut accesses = std::mem::take(&mut self.access_buf);
        accesses.clear();
        let fx = match execute(
            &mut reference.hart,
            &mut self.mem,
            &inst,
            cycle,
            reference.instret,
            &mut accesses,
        ) {
            Ok(fx) => fx,
            Err(err) => {
                return Err(divergence(
                    inst.to_string(),
                    vec![Delta {
                        item: "execute".into(),
                        reference: format!("error: {err}"),
                        simulation: "retired".into(),
                    }],
                ))
            }
        };
        reference.instret += 1;
        if let Some(Ecall::Exit(_)) = fx.ecall {
            reference.halted = true;
        }

        let mut deltas = Vec::new();
        diff_state(&reference.hart, sim_hart, inst.is_vector(), &mut deltas);
        diff_memory(&self.mem, sim_mem, &accesses, &mut deltas);
        self.access_buf = accesses;

        if deltas.is_empty() {
            Ok(())
        } else {
            Err(divergence(inst.to_string(), deltas))
        }
    }
}

fn push_delta(deltas: &mut Vec<Delta>, item: String, reference: String, simulation: String) {
    if deltas.len() < Divergence::TRUNCATED {
        deltas.push(Delta {
            item,
            reference,
            simulation,
        });
    }
}

/// Diffs full architectural register state. The vector file is only
/// compared after vector instructions: it is by far the widest state
/// and only vector instructions can change it.
fn diff_state(reference: &Hart, sim: &Hart, inst_is_vector: bool, deltas: &mut Vec<Delta>) {
    if reference.pc != sim.pc {
        push_delta(
            deltas,
            "pc".into(),
            format!("{:#x}", reference.pc),
            format!("{:#x}", sim.pc),
        );
    }
    for i in 1..32 {
        let reg = XReg::new(i).expect("x1..x31");
        if reference.x(reg) != sim.x(reg) {
            push_delta(
                deltas,
                format!("x{i} ({reg})"),
                format!("{:#x}", reference.x(reg)),
                format!("{:#x}", sim.x(reg)),
            );
        }
    }
    for i in 0..32 {
        let reg = FReg::new(i).expect("f0..f31");
        if reference.f_bits(reg) != sim.f_bits(reg) {
            push_delta(
                deltas,
                format!("f{i} ({reg})"),
                format!("{:#x}", reference.f_bits(reg)),
                format!("{:#x}", sim.f_bits(reg)),
            );
        }
    }
    if reference.vl != sim.vl {
        push_delta(
            deltas,
            "vl".into(),
            reference.vl.to_string(),
            sim.vl.to_string(),
        );
    }
    if reference.vtype.to_bits() != sim.vtype.to_bits() {
        push_delta(
            deltas,
            "vtype".into(),
            format!("{:#x}", reference.vtype.to_bits()),
            format!("{:#x}", sim.vtype.to_bits()),
        );
    }
    let mscratch = |h: &Hart| h.read_csr(Csr::MSCRATCH, 0, 0);
    if mscratch(reference) != mscratch(sim) {
        push_delta(
            deltas,
            "mscratch".into(),
            format!("{:#x}", mscratch(reference)),
            format!("{:#x}", mscratch(sim)),
        );
    }
    if inst_is_vector {
        let dwords_per_reg = reference.vlen_bits() / 64;
        for r in 0..32 {
            let reg = VReg::new(r).expect("v0..v31");
            for d in 0..dwords_per_reg {
                let (a, b) = (reference.v_elem(reg, d, 8), sim.v_elem(reg, d, 8));
                if a != b {
                    push_delta(
                        deltas,
                        format!("v{r}[dword {d}]"),
                        format!("{a:#x}"),
                        format!("{b:#x}"),
                    );
                }
            }
        }
    }
}

/// Diffs the bytes the retiring instruction wrote.
fn diff_memory(
    reference: &SparseMemory,
    sim: &SparseMemory,
    accesses: &[MemAccess],
    deltas: &mut Vec<Delta>,
) {
    for access in accesses.iter().filter(|a| a.write) {
        let mut ref_buf = [0u8; 8];
        let mut sim_buf = [0u8; 8];
        let size = access.size as usize;
        reference.read_bytes(access.addr, &mut ref_buf[..size]);
        sim.read_bytes(access.addr, &mut sim_buf[..size]);
        if ref_buf != sim_buf {
            push_delta(
                deltas,
                format!("mem[{:#x}+{size}]", access.addr),
                format!("{:02x?}", &ref_buf[..size]),
                format!("{:02x?}", &sim_buf[..size]),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_asm::assemble;
    use coyote_iss::{CoreState, DEFAULT_VLEN_BITS};

    /// Steps an untimed `coyote_iss::Core` with instant fills while the
    /// oracle checks every retirement — a self-consistency test of the
    /// checker against the very semantics it reuses.
    #[test]
    fn clean_run_is_divergence_free() {
        let program = assemble(
            ".data
             buf: .zero 64
             .text
             _start:
                li t0, 5
                la t1, buf
                sd t0, 0(t1)
                ld t2, 0(t1)
                amoadd.d t3, t0, (t1)
                add t2, t2, t3
                li a0, 0
                li a7, 93
                ecall",
        )
        .unwrap();
        let mut mem = SparseMemory::new();
        mem.load_program(&program);
        let text = DecodedText::from_program(&program);
        let mut core =
            coyote_iss::Core::new(0, program.entry(), &coyote_iss::CoreConfig::default());
        let mut checker = LockstepChecker::new(&program, 1, DEFAULT_VLEN_BITS);
        let mut misses = Vec::new();
        for cycle in 0..200 {
            if matches!(core.state(), CoreState::Halted(_)) {
                assert_eq!(checker.instret(0), core.stats().retired);
                return;
            }
            if core.state() == CoreState::Active {
                let ev = core.step(&mut mem, &text, cycle, &mut misses).unwrap();
                if matches!(
                    ev,
                    coyote_iss::StepEvent::Retired { .. } | coyote_iss::StepEvent::Halted(_)
                ) {
                    checker
                        .check_retirement(0, cycle, core.hart(), &mem)
                        .unwrap();
                }
            }
            for miss in misses.drain(..) {
                core.complete_fill(miss.line_addr, miss.kind, cycle);
            }
        }
        panic!("did not halt");
    }

    #[test]
    fn corrupted_register_is_reported_with_delta() {
        let program = assemble(
            "_start:
                li t0, 7
                addi t1, t0, 1
                li a0, 0
                li a7, 93
                ecall",
        )
        .unwrap();
        let mut checker = LockstepChecker::new(&program, 1, DEFAULT_VLEN_BITS);
        checker.set_replay_seed(0xabcd);
        // A "simulation" hart that executed `li t0, 7` wrong.
        let mut sim = Hart::new(0, program.entry(), DEFAULT_VLEN_BITS);
        sim.pc = program.entry() + 4;
        sim.set_x(XReg::parse("t0").unwrap(), 9);
        let sim_mem = SparseMemory::new();
        let err = checker
            .check_retirement(0, 3, &sim, &sim_mem)
            .expect_err("must diverge");
        assert_eq!(err.core, 0);
        assert_eq!(err.cycle, 3);
        assert_eq!(err.pc, program.entry());
        assert_eq!(err.deltas.len(), 1);
        assert!(err.deltas[0].item.contains("t0"), "{}", err.deltas[0].item);
        let text = err.to_string();
        assert!(text.contains("0x7"), "{text}");
        assert!(text.contains("0x9"), "{text}");
        assert!(text.contains("replay seed"), "{text}");
    }
}
